#include "server/net/wire.h"

#include <cstring>

#include "storage/schema.h"

namespace mpfdb::server::net {

namespace {

// --- primitive writers ----------------------------------------------------

void PutU8(uint8_t v, std::vector<uint8_t>* out) { out->push_back(v); }

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutI32(int32_t v, std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(v), out);
}

void PutF64(double v, std::vector<uint8_t>* out) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits, out);
}

void PutString(const std::string& s, std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->insert(out->end(), s.begin(), s.end());
}

// Reserves the 5-byte header, returning the offset where the payload
// starts; FinishFrame back-patches the length once the payload is written.
size_t BeginFrame(FrameType type, std::vector<uint8_t>* out) {
  PutU32(0, out);
  PutU8(static_cast<uint8_t>(type), out);
  return out->size();
}

void FinishFrame(size_t payload_start, std::vector<uint8_t>* out) {
  uint32_t len = static_cast<uint32_t>(out->size() - payload_start);
  size_t header = payload_start - kFrameHeaderBytes;
  for (int i = 0; i < 4; ++i) {
    (*out)[header + static_cast<size_t>(i)] =
        static_cast<uint8_t>(len >> (8 * i));
  }
}

// --- primitive readers ----------------------------------------------------

// Bounds-checked cursor over one frame's payload.
struct Cursor {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;

  bool Need(size_t n) const { return size - pos >= n; }

  Status TakeU8(uint8_t* v) {
    if (!Need(1)) return Status::InvalidArgument("frame payload truncated");
    *v = data[pos++];
    return Status::Ok();
  }

  Status TakeU32(uint32_t* v) {
    if (!Need(4)) return Status::InvalidArgument("frame payload truncated");
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i) {
      r |= static_cast<uint32_t>(data[pos + static_cast<size_t>(i)])
           << (8 * i);
    }
    pos += 4;
    *v = r;
    return Status::Ok();
  }

  Status TakeU64(uint64_t* v) {
    if (!Need(8)) return Status::InvalidArgument("frame payload truncated");
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) {
      r |= static_cast<uint64_t>(data[pos + static_cast<size_t>(i)])
           << (8 * i);
    }
    pos += 8;
    *v = r;
    return Status::Ok();
  }

  Status TakeI32(int32_t* v) {
    uint32_t u;
    MPFDB_RETURN_IF_ERROR(TakeU32(&u));
    *v = static_cast<int32_t>(u);
    return Status::Ok();
  }

  Status TakeF64(double* v) {
    uint64_t bits;
    MPFDB_RETURN_IF_ERROR(TakeU64(&bits));
    std::memcpy(v, &bits, sizeof(*v));
    return Status::Ok();
  }

  Status TakeString(std::string* s) {
    uint32_t len;
    MPFDB_RETURN_IF_ERROR(TakeU32(&len));
    if (!Need(len)) return Status::InvalidArgument("frame string truncated");
    s->assign(reinterpret_cast<const char*>(data + pos), len);
    pos += len;
    return Status::Ok();
  }

  Status ExpectDone() const {
    if (pos != size) {
      return Status::InvalidArgument("frame payload has trailing bytes");
    }
    return Status::Ok();
  }
};

// Caps on repeated-element counts inside a payload, so a corrupt count
// can't drive a multi-gigabyte allocation before the byte-bounds check
// naturally fails.
constexpr uint32_t kMaxListElems = 1u << 20;

Status DecodeQuery(Cursor* c, QueryRequestFrame* out) {
  MPFDB_RETURN_IF_ERROR(c->TakeU64(&out->request_id));
  uint8_t flags;
  MPFDB_RETURN_IF_ERROR(c->TakeU8(&flags));
  out->cached = (flags & 1) != 0;
  out->approx = (flags & 2) != 0;
  MPFDB_RETURN_IF_ERROR(c->TakeU32(&out->deadline_ms));
  MPFDB_RETURN_IF_ERROR(c->TakeString(&out->view));
  MPFDB_RETURN_IF_ERROR(c->TakeString(&out->optimizer));
  uint32_t n_group;
  MPFDB_RETURN_IF_ERROR(c->TakeU32(&n_group));
  if (n_group > kMaxListElems) {
    return Status::InvalidArgument("query frame: group count implausible");
  }
  out->query.group_vars.clear();
  out->query.group_vars.reserve(n_group);
  for (uint32_t i = 0; i < n_group; ++i) {
    std::string var;
    MPFDB_RETURN_IF_ERROR(c->TakeString(&var));
    out->query.group_vars.push_back(std::move(var));
  }
  uint32_t n_sel;
  MPFDB_RETURN_IF_ERROR(c->TakeU32(&n_sel));
  if (n_sel > kMaxListElems) {
    return Status::InvalidArgument("query frame: selection count implausible");
  }
  out->query.selections.clear();
  out->query.selections.reserve(n_sel);
  for (uint32_t i = 0; i < n_sel; ++i) {
    QuerySelection sel;
    MPFDB_RETURN_IF_ERROR(c->TakeString(&sel.var));
    MPFDB_RETURN_IF_ERROR(c->TakeI32(&sel.value));
    out->query.selections.push_back(std::move(sel));
  }
  uint8_t has_having;
  MPFDB_RETURN_IF_ERROR(c->TakeU8(&has_having));
  if (has_having != 0) {
    uint8_t op;
    HavingClause having;
    MPFDB_RETURN_IF_ERROR(c->TakeU8(&op));
    if (op > static_cast<uint8_t>(CompareOp::kNe)) {
      return Status::InvalidArgument("query frame: bad compare op");
    }
    having.op = static_cast<CompareOp>(op);
    MPFDB_RETURN_IF_ERROR(c->TakeF64(&having.threshold));
    out->query.having = having;
  } else {
    out->query.having.reset();
  }
  if (out->approx) {
    MPFDB_RETURN_IF_ERROR(c->TakeF64(&out->eps));
    MPFDB_RETURN_IF_ERROR(c->TakeU32(&out->max_rounds));
    MPFDB_RETURN_IF_ERROR(c->TakeU64(&out->seed));
  } else {
    out->eps = 0.05;
    out->max_rounds = 64;
    out->seed = 0;
  }
  return c->ExpectDone();
}

// One serialized table: name, measure name, schema, then the row block.
// `exact_remaining` preserves the legacy framing rule for the single-table
// result: the row block must consume the rest of the payload exactly. Inner
// blocks of a multi-table (approx) result instead bounds-check against the
// bytes available, so a corrupt row count still can't drive an oversized
// allocation.
Status DecodeTableBlock(Cursor* c, bool exact_remaining, TablePtr* out) {
  std::string table_name, measure_name;
  MPFDB_RETURN_IF_ERROR(c->TakeString(&table_name));
  MPFDB_RETURN_IF_ERROR(c->TakeString(&measure_name));
  uint32_t arity;
  MPFDB_RETURN_IF_ERROR(c->TakeU32(&arity));
  if (arity > kMaxListElems) {
    return Status::InvalidArgument("result frame: arity implausible");
  }
  std::vector<std::string> vars;
  vars.reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    std::string var;
    MPFDB_RETURN_IF_ERROR(c->TakeString(&var));
    vars.push_back(std::move(var));
  }
  uint32_t n_rows;
  MPFDB_RETURN_IF_ERROR(c->TakeU32(&n_rows));
  // Check row-block bounds before allocating row storage.
  size_t row_bytes = static_cast<size_t>(arity) * 4 + 8;
  size_t block_bytes = static_cast<size_t>(n_rows) * row_bytes;
  if (exact_remaining ? c->size - c->pos != block_bytes
                      : !c->Need(block_bytes)) {
    return Status::InvalidArgument("result frame: row block size mismatch");
  }
  auto table = std::make_shared<Table>(std::move(table_name),
                                       Schema(vars, measure_name));
  table->Reserve(n_rows);
  std::vector<VarValue> row(arity);
  for (uint32_t r = 0; r < n_rows; ++r) {
    for (uint32_t i = 0; i < arity; ++i) {
      MPFDB_RETURN_IF_ERROR(c->TakeI32(&row[i]));
    }
    double measure;
    MPFDB_RETURN_IF_ERROR(c->TakeF64(&measure));
    table->AppendRow(row, measure);
  }
  *out = std::move(table);
  return Status::Ok();
}

Status DecodeResult(Cursor* c, ResultFrame* out) {
  MPFDB_RETURN_IF_ERROR(c->TakeU64(&out->request_id));
  MPFDB_RETURN_IF_ERROR(c->TakeU64(&out->snapshot_epoch));
  uint8_t flags;
  MPFDB_RETURN_IF_ERROR(c->TakeU8(&flags));
  out->plan_cache_hit = (flags & 1) != 0;
  out->epoch_inexact = (flags & 2) != 0;
  out->approximate = (flags & 4) != 0;
  out->deadline_degraded = (flags & 8) != 0;
  MPFDB_RETURN_IF_ERROR(DecodeTableBlock(c, !out->approximate, &out->table));
  if (out->approximate) {
    MPFDB_RETURN_IF_ERROR(c->TakeU64(&out->samples));
    MPFDB_RETURN_IF_ERROR(c->TakeF64(&out->bound_gap));
    MPFDB_RETURN_IF_ERROR(DecodeTableBlock(c, false, &out->lower));
    MPFDB_RETURN_IF_ERROR(DecodeTableBlock(c, false, &out->upper));
  } else {
    out->samples = 0;
    out->bound_gap = 0;
    out->lower.reset();
    out->upper.reset();
  }
  return c->ExpectDone();
}

Status DecodeError(Cursor* c, ErrorFrame* out) {
  MPFDB_RETURN_IF_ERROR(c->TakeU64(&out->request_id));
  uint8_t code;
  MPFDB_RETURN_IF_ERROR(c->TakeU8(&code));
  if (code > static_cast<uint8_t>(StatusCode::kResourceExhausted) ||
      code == static_cast<uint8_t>(StatusCode::kOk)) {
    return Status::InvalidArgument("error frame: bad status code");
  }
  out->code = static_cast<StatusCode>(code);
  uint8_t retryable;
  MPFDB_RETURN_IF_ERROR(c->TakeU8(&retryable));
  out->retryable = retryable != 0;
  MPFDB_RETURN_IF_ERROR(c->TakeU32(&out->retry_after_ms));
  MPFDB_RETURN_IF_ERROR(c->TakeString(&out->message));
  return c->ExpectDone();
}

Status DecodeMetricsRequest(Cursor* c, MetricsRequestFrame* out) {
  MPFDB_RETURN_IF_ERROR(c->TakeU64(&out->request_id));
  return c->ExpectDone();
}

Status DecodeMetricsReply(Cursor* c, MetricsReplyFrame* out) {
  MPFDB_RETURN_IF_ERROR(c->TakeU64(&out->request_id));
  MPFDB_RETURN_IF_ERROR(c->TakeString(&out->text));
  return c->ExpectDone();
}

Status DecodeUpdate(Cursor* c, UpdateRequestFrame* out) {
  MPFDB_RETURN_IF_ERROR(c->TakeU64(&out->request_id));
  uint32_t n_ops;
  MPFDB_RETURN_IF_ERROR(c->TakeU32(&n_ops));
  if (n_ops > kMaxListElems) {
    return Status::InvalidArgument("update frame: op count implausible");
  }
  out->ops.clear();
  out->ops.reserve(n_ops);
  for (uint32_t i = 0; i < n_ops; ++i) {
    UpdateOp op;
    MPFDB_RETURN_IF_ERROR(c->TakeString(&op.table));
    uint32_t arity;
    MPFDB_RETURN_IF_ERROR(c->TakeU32(&arity));
    if (arity > kMaxListElems) {
      return Status::InvalidArgument("update frame: arity implausible");
    }
    op.row_vars.reserve(arity);
    for (uint32_t j = 0; j < arity; ++j) {
      VarValue v;
      MPFDB_RETURN_IF_ERROR(c->TakeI32(&v));
      op.row_vars.push_back(v);
    }
    MPFDB_RETURN_IF_ERROR(c->TakeF64(&op.new_measure));
    out->ops.push_back(std::move(op));
  }
  return c->ExpectDone();
}

Status DecodeUpdateAck(Cursor* c, UpdateAckFrame* out) {
  MPFDB_RETURN_IF_ERROR(c->TakeU64(&out->request_id));
  MPFDB_RETURN_IF_ERROR(c->TakeU64(&out->epoch));
  return c->ExpectDone();
}

}  // namespace

void EncodeQuery(const QueryRequestFrame& frame, std::vector<uint8_t>* out) {
  size_t start = BeginFrame(FrameType::kQuery, out);
  PutU64(frame.request_id, out);
  PutU8(static_cast<uint8_t>((frame.cached ? 1 : 0) |
                             (frame.approx ? 2 : 0)),
        out);
  PutU32(frame.deadline_ms, out);
  PutString(frame.view, out);
  PutString(frame.optimizer, out);
  PutU32(static_cast<uint32_t>(frame.query.group_vars.size()), out);
  for (const auto& var : frame.query.group_vars) PutString(var, out);
  PutU32(static_cast<uint32_t>(frame.query.selections.size()), out);
  for (const auto& sel : frame.query.selections) {
    PutString(sel.var, out);
    PutI32(sel.value, out);
  }
  if (frame.query.having.has_value()) {
    PutU8(1, out);
    PutU8(static_cast<uint8_t>(frame.query.having->op), out);
    PutF64(frame.query.having->threshold, out);
  } else {
    PutU8(0, out);
  }
  if (frame.approx) {
    PutF64(frame.eps, out);
    PutU32(frame.max_rounds, out);
    PutU64(frame.seed, out);
  }
  FinishFrame(start, out);
}

namespace {

void PutTableBlock(const Table& table, std::vector<uint8_t>* out) {
  PutString(table.name(), out);
  PutString(table.schema().measure_name(), out);
  PutU32(static_cast<uint32_t>(table.schema().arity()), out);
  for (const auto& var : table.schema().variables()) PutString(var, out);
  PutU32(static_cast<uint32_t>(table.NumRows()), out);
  for (size_t r = 0; r < table.NumRows(); ++r) {
    RowView row = table.Row(r);
    for (size_t i = 0; i < row.arity; ++i) PutI32(row.var(i), out);
    PutF64(row.measure, out);
  }
}

}  // namespace

void EncodeResult(const ResultFrame& frame, std::vector<uint8_t>* out) {
  size_t start = BeginFrame(FrameType::kResult, out);
  PutU64(frame.request_id, out);
  PutU64(frame.snapshot_epoch, out);
  PutU8(static_cast<uint8_t>((frame.plan_cache_hit ? 1 : 0) |
                             (frame.epoch_inexact ? 2 : 0) |
                             (frame.approximate ? 4 : 0) |
                             (frame.deadline_degraded ? 8 : 0)),
        out);
  PutTableBlock(*frame.table, out);
  if (frame.approximate) {
    PutU64(frame.samples, out);
    PutF64(frame.bound_gap, out);
    PutTableBlock(*frame.lower, out);
    PutTableBlock(*frame.upper, out);
  }
  FinishFrame(start, out);
}

void EncodeError(const ErrorFrame& frame, std::vector<uint8_t>* out) {
  size_t start = BeginFrame(FrameType::kError, out);
  PutU64(frame.request_id, out);
  PutU8(static_cast<uint8_t>(frame.code), out);
  PutU8(frame.retryable ? 1 : 0, out);
  PutU32(frame.retry_after_ms, out);
  PutString(frame.message, out);
  FinishFrame(start, out);
}

void EncodeMetricsRequest(const MetricsRequestFrame& frame,
                          std::vector<uint8_t>* out) {
  size_t start = BeginFrame(FrameType::kMetrics, out);
  PutU64(frame.request_id, out);
  FinishFrame(start, out);
}

void EncodeMetricsReply(const MetricsReplyFrame& frame,
                        std::vector<uint8_t>* out) {
  size_t start = BeginFrame(FrameType::kMetricsReply, out);
  PutU64(frame.request_id, out);
  PutString(frame.text, out);
  FinishFrame(start, out);
}

void EncodeUpdate(const UpdateRequestFrame& frame, std::vector<uint8_t>* out) {
  size_t start = BeginFrame(FrameType::kUpdate, out);
  PutU64(frame.request_id, out);
  PutU32(static_cast<uint32_t>(frame.ops.size()), out);
  for (const UpdateOp& op : frame.ops) {
    PutString(op.table, out);
    PutU32(static_cast<uint32_t>(op.row_vars.size()), out);
    for (VarValue v : op.row_vars) PutI32(v, out);
    PutF64(op.new_measure, out);
  }
  FinishFrame(start, out);
}

void EncodeUpdateAck(const UpdateAckFrame& frame, std::vector<uint8_t>* out) {
  size_t start = BeginFrame(FrameType::kUpdateAck, out);
  PutU64(frame.request_id, out);
  PutU64(frame.epoch, out);
  FinishFrame(start, out);
}

void FrameReader::Append(const uint8_t* data, size_t n) {
  // Compact once the consumed prefix dominates, so a long-lived connection
  // doesn't grow its read buffer without bound.
  if (consumed_ > 4096 && consumed_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

StatusOr<bool> FrameReader::Next(Frame* out) {
  size_t available = buf_.size() - consumed_;
  if (available < kFrameHeaderBytes) return false;
  const uint8_t* head = buf_.data() + consumed_;
  uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<uint32_t>(head[i]) << (8 * i);
  }
  if (payload_len > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload length " +
                                   std::to_string(payload_len) +
                                   " exceeds protocol maximum");
  }
  if (available < kFrameHeaderBytes + payload_len) return false;
  uint8_t type = head[4];
  Cursor cursor{head + kFrameHeaderBytes, payload_len};
  Status decode_status;
  switch (type) {
    case static_cast<uint8_t>(FrameType::kQuery):
      out->type = FrameType::kQuery;
      decode_status = DecodeQuery(&cursor, &out->query);
      break;
    case static_cast<uint8_t>(FrameType::kResult):
      out->type = FrameType::kResult;
      decode_status = DecodeResult(&cursor, &out->result);
      break;
    case static_cast<uint8_t>(FrameType::kError):
      out->type = FrameType::kError;
      decode_status = DecodeError(&cursor, &out->error);
      break;
    case static_cast<uint8_t>(FrameType::kMetrics):
      out->type = FrameType::kMetrics;
      decode_status = DecodeMetricsRequest(&cursor, &out->metrics);
      break;
    case static_cast<uint8_t>(FrameType::kMetricsReply):
      out->type = FrameType::kMetricsReply;
      decode_status = DecodeMetricsReply(&cursor, &out->metrics_reply);
      break;
    case static_cast<uint8_t>(FrameType::kUpdate):
      out->type = FrameType::kUpdate;
      decode_status = DecodeUpdate(&cursor, &out->update);
      break;
    case static_cast<uint8_t>(FrameType::kUpdateAck):
      out->type = FrameType::kUpdateAck;
      decode_status = DecodeUpdateAck(&cursor, &out->update_ack);
      break;
    default:
      decode_status = Status::InvalidArgument(
          "unknown frame type " + std::to_string(static_cast<int>(type)));
  }
  if (!decode_status.ok()) return decode_status;
  consumed_ += kFrameHeaderBytes + payload_len;
  return true;
}

}  // namespace mpfdb::server::net
