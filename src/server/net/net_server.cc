#include "server/net/net_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "server/net/wire.h"
#include "util/fault_injector.h"

namespace mpfdb::server::net {

namespace {

using SteadyClock = std::chrono::steady_clock;
using SocketFault = FaultInjector::SocketFault;

constexpr size_t kReadChunk = 16384;

void StallBriefly() {
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
}

}  // namespace

// All mutable state of one connection. Owned by exactly one IO loop and
// touched only from that loop's thread; worker threads reach a connection
// exclusively by posting tasks to its loop.
struct Connection {
  int fd = -1;
  uint64_t id = 0;
  size_t loop_index = 0;
  std::shared_ptr<Session> session;
  FrameReader reader;
  std::vector<uint8_t> write_buf;
  size_t write_pos = 0;
  size_t inflight = 0;  // requests dispatched but not yet answered
  bool reads_paused = false;
  bool want_epollout = false;
  bool close_after_flush = false;
  bool closed = false;
};

struct NetServer::Impl {
  explicit Impl(MpfServer& server, NetServerOptions opts)
      : mpf(server), options(opts) {}

  // --- one epoll event loop ----------------------------------------------
  struct IoLoop {
    int epoll_fd = -1;
    int wake_fd = -1;  // eventfd; epoll data.ptr == nullptr marks it
    std::thread thread;
    std::map<uint64_t, std::unique_ptr<Connection>> conns;  // loop-thread only
    std::vector<uint64_t> dead;  // closed this iteration, reap at bottom
    bool stopping = false;       // loop-thread only, set via task

    std::mutex task_mu;
    std::vector<std::function<void()>> tasks;  // guarded by task_mu
  };

  // One parsed request waiting for a query worker.
  struct PendingRequest {
    size_t loop_index = 0;
    uint64_t conn_id = 0;
    std::shared_ptr<Session> session;
    QueryRequestFrame query;
    bool is_metrics = false;
    uint64_t metrics_request_id = 0;
    bool is_update = false;
    UpdateRequestFrame update;
    SteadyClock::time_point deadline{};
    bool has_deadline = false;
  };

  MpfServer& mpf;
  const NetServerOptions options;

  int listen_fd = -1;
  uint16_t bound_port = 0;
  std::atomic<bool> started{false};
  std::atomic<bool> stopped{false};
  std::atomic<bool> draining{false};

  // Acceptor.
  std::thread acceptor_thread;
  int acceptor_epoll_fd = -1;
  int acceptor_wake_fd = -1;
  std::atomic<bool> acceptor_stop{false};

  std::vector<std::unique_ptr<IoLoop>> loops;
  std::atomic<size_t> next_loop{0};
  std::atomic<uint64_t> next_conn_id{1};

  // Query worker pool + dispatch queue.
  std::vector<std::thread> workers;
  std::mutex queue_mu;
  std::condition_variable queue_cv;
  std::deque<PendingRequest> dispatch;  // guarded by queue_mu
  bool stop_workers = false;            // guarded by queue_mu

  // Requests dispatched to workers whose response has not yet been posted
  // back to an IO loop; drain waits for this to reach zero.
  std::atomic<uint64_t> outstanding{0};

  // Stats (atomics: incremented from acceptor, loops, and workers).
  std::atomic<uint64_t> st_accepted{0}, st_closed{0}, st_refused{0},
      st_accept_failures{0}, st_frames_read{0}, st_requests{0}, st_results{0},
      st_errors{0}, st_protocol_errors{0}, st_reads_paused{0}, st_kicks{0},
      st_io_faults{0}, st_drain_errors{0};
  std::atomic<size_t> open_connections{0};

  // --- lifecycle ----------------------------------------------------------
  Status Start();
  void Shutdown();

  void AcceptorLoop();
  void LoopRun(IoLoop* loop);
  void WorkerLoop();

  // --- IO-loop-thread helpers ---------------------------------------------
  void PostTask(IoLoop* loop, std::function<void()> task);
  void WakeLoop(IoLoop* loop);
  void UpdateEpoll(IoLoop* loop, Connection* c);
  void CloseConn(IoLoop* loop, Connection* c);
  void HandleReadable(IoLoop* loop, Connection* c);
  void DrainFrames(IoLoop* loop, Connection* c);
  void HandleFrame(IoLoop* loop, Connection* c, Frame&& frame);
  void QueueWrite(IoLoop* loop, Connection* c, const std::vector<uint8_t>& bytes);
  void FlushWrites(IoLoop* loop, Connection* c);
  void SendErrorNow(IoLoop* loop, Connection* c, const ErrorFrame& err);

  // --- worker helpers ------------------------------------------------------
  std::vector<uint8_t> RunRequest(const PendingRequest& req);
  void PostResponse(size_t loop_index, uint64_t conn_id,
                    std::vector<uint8_t> bytes);
  ErrorFrame TranslateStatus(uint64_t request_id, const Status& status);
};

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

NetServer::NetServer(MpfServer& server, NetServerOptions options)
    : server_(server), impl_(std::make_unique<Impl>(server, options)) {}

NetServer::~NetServer() { Shutdown(); }

Status NetServer::Start() { return impl_->Start(); }

uint16_t NetServer::port() const { return impl_->bound_port; }

void NetServer::Shutdown() { impl_->Shutdown(); }

NetServerStats NetServer::stats() const {
  const Impl& i = *impl_;
  NetServerStats s;
  s.connections_accepted = i.st_accepted.load();
  s.connections_closed = i.st_closed.load();
  s.connections_refused = i.st_refused.load();
  s.accept_failures = i.st_accept_failures.load();
  s.frames_read = i.st_frames_read.load();
  s.requests_received = i.st_requests.load();
  s.results_sent = i.st_results.load();
  s.errors_sent = i.st_errors.load();
  s.protocol_errors = i.st_protocol_errors.load();
  s.reads_paused = i.st_reads_paused.load();
  s.slow_reader_kicks = i.st_kicks.load();
  s.io_faults_injected = i.st_io_faults.load();
  s.drain_errors_sent = i.st_drain_errors.load();
  s.open_connections = i.open_connections.load();
  return s;
}

Status NetServer::Impl::Start() {
  if (started.exchange(true)) {
    return Status::FailedPrecondition("NetServer already started");
  }
  listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd);
    listen_fd = -1;
    return Status::Internal(std::string("bind(): ") + std::strerror(errno));
  }
  if (::listen(listen_fd, 128) < 0) {
    ::close(listen_fd);
    listen_fd = -1;
    return Status::Internal(std::string("listen(): ") + std::strerror(errno));
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  bound_port = ntohs(addr.sin_port);

  int n_loops = std::max(1, options.io_threads);
  for (int i = 0; i < n_loops; ++i) {
    auto loop = std::make_unique<IoLoop>();
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->epoll_fd < 0 || loop->wake_fd < 0) {
      return Status::Internal("epoll/eventfd creation failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = nullptr;  // the wake marker
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &ev);
    loops.push_back(std::move(loop));
  }
  for (auto& loop : loops) {
    loop->thread = std::thread([this, l = loop.get()] { LoopRun(l); });
  }

  int n_workers = options.query_threads > 0
                      ? options.query_threads
                      : static_cast<int>(mpf.options().max_concurrent) + 2;
  for (int i = 0; i < n_workers; ++i) {
    workers.emplace_back([this] { WorkerLoop(); });
  }

  acceptor_epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  acceptor_wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = acceptor_wake_fd;
  ::epoll_ctl(acceptor_epoll_fd, EPOLL_CTL_ADD, acceptor_wake_fd, &ev);
  ev.data.fd = listen_fd;
  ::epoll_ctl(acceptor_epoll_fd, EPOLL_CTL_ADD, listen_fd, &ev);
  acceptor_thread = std::thread([this] { AcceptorLoop(); });
  return Status::Ok();
}

void NetServer::Impl::Shutdown() {
  if (!started.load() || stopped.exchange(true)) return;
  auto deadline =
      SteadyClock::now() + std::chrono::milliseconds(options.drain_timeout_ms);

  // 1. Stop accepting new connections.
  draining.store(true);
  acceptor_stop.store(true);
  uint64_t one = 1;
  [[maybe_unused]] ssize_t w = ::write(acceptor_wake_fd, &one, sizeof(one));
  if (acceptor_thread.joinable()) acceptor_thread.join();
  ::close(acceptor_epoll_fd);
  ::close(acceptor_wake_fd);
  ::close(listen_fd);
  listen_fd = -1;

  // 2. Workers see `draining` and answer every queued request with a
  // definite retryable error; requests already inside Session::Query finish
  // normally. Wait (bounded) for all dispatched requests to be answered.
  queue_cv.notify_all();
  while (outstanding.load(std::memory_order_acquire) > 0 &&
         SteadyClock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // 3. Ask every loop to flush pending responses and close its
  // connections; new reads are already answered with drain errors.
  for (auto& loop : loops) {
    PostTask(loop.get(), [this, l = loop.get()] {
      for (auto& [id, conn] : l->conns) {
        Connection* c = conn.get();
        if (c->closed) continue;
        c->close_after_flush = true;
        FlushWrites(l, c);
        if (!c->closed && c->write_pos >= c->write_buf.size()) {
          CloseConn(l, c);
        }
      }
    });
  }
  while (open_connections.load(std::memory_order_acquire) > 0 &&
         SteadyClock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // 4. Stop the loops (force-closing anything the drain budget abandoned)
  // and the workers, then join everything.
  for (auto& loop : loops) {
    PostTask(loop.get(), [this, l = loop.get()] {
      l->stopping = true;
      for (auto& [id, conn] : l->conns) {
        if (!conn->closed) CloseConn(l, conn.get());
      }
    });
  }
  for (auto& loop : loops) {
    if (loop->thread.joinable()) loop->thread.join();
    ::close(loop->epoll_fd);
    ::close(loop->wake_fd);
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu);
    stop_workers = true;
  }
  queue_cv.notify_all();
  for (auto& worker : workers) {
    if (worker.joinable()) worker.join();
  }
}

// ---------------------------------------------------------------------------
// Acceptor
// ---------------------------------------------------------------------------

void NetServer::Impl::AcceptorLoop() {
  epoll_event events[8];
  while (!acceptor_stop.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(acceptor_epoll_fd, events, 8, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == acceptor_wake_fd) {
        uint64_t drain_count;
        while (::read(acceptor_wake_fd, &drain_count, sizeof(drain_count)) >
               0) {
        }
        continue;
      }
      // Accept everything pending.
      for (;;) {
        int cfd = ::accept4(listen_fd, nullptr, nullptr,
                            SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (cfd < 0) {
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          st_accept_failures.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        if (FaultInjector::MaybeSocketFault("net::Accept",
                                            /*is_accept=*/true) ==
            SocketFault::kAcceptFail) {
          // Simulated accept failure: the kernel already completed the
          // handshake, so the client observes an immediate clean close.
          st_io_faults.fetch_add(1, std::memory_order_relaxed);
          st_accept_failures.fetch_add(1, std::memory_order_relaxed);
          ::close(cfd);
          continue;
        }
        if (open_connections.load(std::memory_order_acquire) >=
                options.max_connections ||
            draining.load(std::memory_order_acquire)) {
          st_refused.fetch_add(1, std::memory_order_relaxed);
          ::close(cfd);
          continue;
        }
        int one = 1;
        ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        if (options.send_buffer_bytes > 0) {
          ::setsockopt(cfd, SOL_SOCKET, SO_SNDBUF, &options.send_buffer_bytes,
                       sizeof(options.send_buffer_bytes));
        }
        auto conn = std::make_unique<Connection>();
        conn->fd = cfd;
        conn->id = next_conn_id.fetch_add(1, std::memory_order_relaxed);
        conn->loop_index =
            next_loop.fetch_add(1, std::memory_order_relaxed) % loops.size();
        conn->session =
            mpf.CreateSession("conn-" + std::to_string(conn->id));
        st_accepted.fetch_add(1, std::memory_order_relaxed);
        open_connections.fetch_add(1, std::memory_order_acq_rel);
        IoLoop* loop = loops[conn->loop_index].get();
        PostTask(loop, [this, loop, raw = conn.release()]() mutable {
          std::unique_ptr<Connection> owned(raw);
          Connection* c = owned.get();
          if (loop->stopping) {
            ::close(c->fd);
            open_connections.fetch_sub(1, std::memory_order_acq_rel);
            st_closed.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          epoll_event ev{};
          ev.events = EPOLLIN;
          ev.data.ptr = c;
          loop->conns.emplace(c->id, std::move(owned));
          ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, c->fd, &ev);
        });
      }
    }
  }
}

// ---------------------------------------------------------------------------
// IO loops
// ---------------------------------------------------------------------------

void NetServer::Impl::PostTask(IoLoop* loop, std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(loop->task_mu);
    loop->tasks.push_back(std::move(task));
  }
  WakeLoop(loop);
}

void NetServer::Impl::WakeLoop(IoLoop* loop) {
  uint64_t one = 1;
  [[maybe_unused]] ssize_t w = ::write(loop->wake_fd, &one, sizeof(one));
}

void NetServer::Impl::LoopRun(IoLoop* loop) {
  epoll_event events[64];
  for (;;) {
    int n = ::epoll_wait(loop->epoll_fd, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      if (events[i].data.ptr == nullptr) {
        uint64_t drain_count;
        while (::read(loop->wake_fd, &drain_count, sizeof(drain_count)) > 0) {
        }
        continue;
      }
      auto* c = static_cast<Connection*>(events[i].data.ptr);
      if (c->closed) continue;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConn(loop, c);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) HandleReadable(loop, c);
      if (!c->closed && (events[i].events & EPOLLOUT) != 0) {
        FlushWrites(loop, c);
      }
    }
    // Tasks posted by the acceptor (registrations) and workers (responses).
    std::vector<std::function<void()>> tasks;
    {
      std::lock_guard<std::mutex> lock(loop->task_mu);
      tasks.swap(loop->tasks);
    }
    for (auto& task : tasks) task();
    // Reap connections closed during this iteration.
    for (uint64_t id : loop->dead) loop->conns.erase(id);
    loop->dead.clear();
    if (loop->stopping && loop->conns.empty()) break;
  }
}

void NetServer::Impl::UpdateEpoll(IoLoop* loop, Connection* c) {
  epoll_event ev{};
  ev.events = (c->reads_paused ? 0u : static_cast<uint32_t>(EPOLLIN)) |
              (c->want_epollout ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  ev.data.ptr = c;
  ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_MOD, c->fd, &ev);
}

void NetServer::Impl::CloseConn(IoLoop* loop, Connection* c) {
  if (c->closed) return;
  c->closed = true;
  ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, c->fd, nullptr);
  ::close(c->fd);
  st_closed.fetch_add(1, std::memory_order_relaxed);
  open_connections.fetch_sub(1, std::memory_order_acq_rel);
  loop->dead.push_back(c->id);
}

void NetServer::Impl::DrainFrames(IoLoop* loop, Connection* c) {
  while (!c->closed && !c->reads_paused) {
    Frame frame;
    auto next = c->reader.Next(&frame);
    if (!next.ok()) {
      // Framing is unrecoverable; a best-effort error frame, then close.
      st_protocol_errors.fetch_add(1, std::memory_order_relaxed);
      SendErrorNow(loop, c,
                   ErrorFrame{0, StatusCode::kInvalidArgument, false, 0,
                              next.status().message()});
      if (!c->closed) {
        c->close_after_flush = true;
        if (c->write_pos >= c->write_buf.size()) CloseConn(loop, c);
      }
      return;
    }
    if (!*next) return;
    st_frames_read.fetch_add(1, std::memory_order_relaxed);
    HandleFrame(loop, c, std::move(frame));
  }
}

void NetServer::Impl::HandleReadable(IoLoop* loop, Connection* c) {
  // Frames may be sitting whole in the reader from before a backpressure
  // pause; serve those before touching the socket.
  DrainFrames(loop, c);
  uint8_t buf[kReadChunk];
  while (!c->closed && !c->reads_paused) {
    size_t want = sizeof(buf);
    switch (FaultInjector::MaybeSocketFault("net::Read")) {
      case SocketFault::kNone:
        break;
      case SocketFault::kShort:
        st_io_faults.fetch_add(1, std::memory_order_relaxed);
        want = 1;
        break;
      case SocketFault::kEintr:
        // As if read() returned EINTR: loop and retry.
        st_io_faults.fetch_add(1, std::memory_order_relaxed);
        continue;
      case SocketFault::kStall:
        st_io_faults.fetch_add(1, std::memory_order_relaxed);
        StallBriefly();
        break;
      case SocketFault::kReset:
      case SocketFault::kAcceptFail:
        st_io_faults.fetch_add(1, std::memory_order_relaxed);
        CloseConn(loop, c);
        return;
    }
    ssize_t r = ::read(c->fd, buf, want);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      CloseConn(loop, c);
      return;
    }
    if (r == 0) {  // peer closed its end
      CloseConn(loop, c);
      return;
    }
    c->reader.Append(buf, static_cast<size_t>(r));
    DrainFrames(loop, c);
    if (static_cast<size_t>(r) < want) return;  // kernel buffer drained
  }
}

void NetServer::Impl::HandleFrame(IoLoop* loop, Connection* c, Frame&& frame) {
  if (frame.type != FrameType::kQuery && frame.type != FrameType::kMetrics &&
      frame.type != FrameType::kUpdate) {
    // Clients may only send requests.
    st_protocol_errors.fetch_add(1, std::memory_order_relaxed);
    SendErrorNow(loop, c,
                 ErrorFrame{0, StatusCode::kInvalidArgument, false, 0,
                            "unexpected frame type from client"});
    if (!c->closed) {
      c->close_after_flush = true;
      if (c->write_pos >= c->write_buf.size()) CloseConn(loop, c);
    }
    return;
  }
  st_requests.fetch_add(1, std::memory_order_relaxed);
  uint64_t request_id = frame.type == FrameType::kQuery
                            ? frame.query.request_id
                            : frame.type == FrameType::kUpdate
                                  ? frame.update.request_id
                                  : frame.metrics.request_id;
  if (draining.load(std::memory_order_acquire)) {
    // Drain promise: every request gets a definite, retryable answer.
    st_drain_errors.fetch_add(1, std::memory_order_relaxed);
    SendErrorNow(loop, c,
                 ErrorFrame{request_id, StatusCode::kCancelled, true,
                            options.drain_timeout_ms,
                            "server draining; retry against a live server"});
    return;
  }
  PendingRequest req;
  req.loop_index = c->loop_index;
  req.conn_id = c->id;
  req.session = c->session;
  if (frame.type == FrameType::kQuery) {
    req.query = std::move(frame.query);
    if (req.query.deadline_ms > 0) {
      req.has_deadline = true;
      req.deadline = SteadyClock::now() +
                     std::chrono::milliseconds(req.query.deadline_ms);
    }
  } else if (frame.type == FrameType::kUpdate) {
    req.is_update = true;
    req.update = std::move(frame.update);
  } else {
    req.is_metrics = true;
    req.metrics_request_id = frame.metrics.request_id;
  }
  ++c->inflight;
  if (c->inflight >= options.max_inflight_per_connection &&
      !c->reads_paused) {
    // Backpressure: this client has enough unanswered work in the building.
    c->reads_paused = true;
    st_reads_paused.fetch_add(1, std::memory_order_relaxed);
    UpdateEpoll(loop, c);
  }
  outstanding.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(queue_mu);
    dispatch.push_back(std::move(req));
  }
  queue_cv.notify_one();
}

void NetServer::Impl::SendErrorNow(IoLoop* loop, Connection* c,
                                   const ErrorFrame& err) {
  std::vector<uint8_t> bytes;
  EncodeError(err, &bytes);
  st_errors.fetch_add(1, std::memory_order_relaxed);
  QueueWrite(loop, c, bytes);
}

void NetServer::Impl::QueueWrite(IoLoop* loop, Connection* c,
                                 const std::vector<uint8_t>& bytes) {
  if (c->closed) return;
  // Compact the consumed prefix before growing.
  if (c->write_pos > 0 && c->write_pos == c->write_buf.size()) {
    c->write_buf.clear();
    c->write_pos = 0;
  } else if (c->write_pos > 65536 && c->write_pos * 2 > c->write_buf.size()) {
    c->write_buf.erase(c->write_buf.begin(),
                       c->write_buf.begin() +
                           static_cast<ptrdiff_t>(c->write_pos));
    c->write_pos = 0;
  }
  c->write_buf.insert(c->write_buf.end(), bytes.begin(), bytes.end());
  FlushWrites(loop, c);
  if (!c->closed &&
      c->write_buf.size() - c->write_pos > options.max_write_buffer_bytes) {
    // Slow-reader kick: the kernel took what it would and this much output
    // is still parked in user space — the client is not consuming its
    // responses, and holding them indefinitely would let one bad client
    // exhaust the server. A hard close is a definite outcome client-side.
    st_kicks.fetch_add(1, std::memory_order_relaxed);
    CloseConn(loop, c);
  }
}

void NetServer::Impl::FlushWrites(IoLoop* loop, Connection* c) {
  while (!c->closed && c->write_pos < c->write_buf.size()) {
    size_t remaining = c->write_buf.size() - c->write_pos;
    size_t chunk = remaining;
    switch (FaultInjector::MaybeSocketFault("net::Write")) {
      case SocketFault::kNone:
        break;
      case SocketFault::kShort:
        st_io_faults.fetch_add(1, std::memory_order_relaxed);
        chunk = 1;
        break;
      case SocketFault::kEintr:
        st_io_faults.fetch_add(1, std::memory_order_relaxed);
        continue;
      case SocketFault::kStall:
        st_io_faults.fetch_add(1, std::memory_order_relaxed);
        StallBriefly();
        break;
      case SocketFault::kReset:
      case SocketFault::kAcceptFail:
        st_io_faults.fetch_add(1, std::memory_order_relaxed);
        CloseConn(loop, c);
        return;
    }
    ssize_t w = ::send(c->fd, c->write_buf.data() + c->write_pos, chunk,
                       MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!c->want_epollout) {
          c->want_epollout = true;
          UpdateEpoll(loop, c);
        }
        return;
      }
      CloseConn(loop, c);
      return;
    }
    c->write_pos += static_cast<size_t>(w);
  }
  if (c->closed) return;
  // Fully flushed.
  c->write_buf.clear();
  c->write_pos = 0;
  if (c->want_epollout) {
    c->want_epollout = false;
    UpdateEpoll(loop, c);
  }
  if (c->close_after_flush) CloseConn(loop, c);
}

// ---------------------------------------------------------------------------
// Query workers
// ---------------------------------------------------------------------------

void NetServer::Impl::WorkerLoop() {
  for (;;) {
    PendingRequest req;
    {
      std::unique_lock<std::mutex> lock(queue_mu);
      queue_cv.wait(lock, [&] { return stop_workers || !dispatch.empty(); });
      if (dispatch.empty()) {
        if (stop_workers) return;
        continue;
      }
      req = std::move(dispatch.front());
      dispatch.pop_front();
    }
    std::vector<uint8_t> response = RunRequest(req);
    PostResponse(req.loop_index, req.conn_id, std::move(response));
    outstanding.fetch_sub(1, std::memory_order_acq_rel);
  }
}

ErrorFrame NetServer::Impl::TranslateStatus(uint64_t request_id,
                                            const Status& status) {
  ErrorFrame err;
  err.request_id = request_id;
  err.code = status.code();
  err.message = status.message();
  // Overload and shutdown rejections happen before any execution, so the
  // request is safe to resubmit verbatim; everything else (bad view name,
  // deadline blown mid-execution, internal faults) is the client's call.
  err.retryable = status.code() == StatusCode::kResourceExhausted ||
                  status.code() == StatusCode::kCancelled;
  if (err.retryable) {
    err.retry_after_ms = static_cast<uint32_t>(mpf.RetryAfterHintMs());
  }
  return err;
}

std::vector<uint8_t> NetServer::Impl::RunRequest(const PendingRequest& req) {
  std::vector<uint8_t> out;
  if (draining.load(std::memory_order_acquire)) {
    uint64_t id = req.is_metrics
                      ? req.metrics_request_id
                      : req.is_update ? req.update.request_id
                                      : req.query.request_id;
    st_drain_errors.fetch_add(1, std::memory_order_relaxed);
    st_errors.fetch_add(1, std::memory_order_relaxed);
    EncodeError(ErrorFrame{id, StatusCode::kCancelled, true,
                           options.drain_timeout_ms,
                           "server draining; retry against a live server"},
                &out);
    return out;
  }
  if (req.is_metrics) {
    EncodeMetricsReply(MetricsReplyFrame{req.metrics_request_id,
                                         mpf.MetricsText()},
                       &out);
    return out;
  }
  if (req.is_update) {
    std::vector<MeasureUpdateSpec> specs;
    specs.reserve(req.update.ops.size());
    for (const UpdateOp& op : req.update.ops) {
      specs.push_back({op.table, op.row_vars, op.new_measure});
    }
    uint64_t commit_epoch = 0;
    Status status = req.session->Update(specs, &commit_epoch);
    if (!status.ok()) {
      st_errors.fetch_add(1, std::memory_order_relaxed);
      EncodeError(TranslateStatus(req.update.request_id, status), &out);
      return out;
    }
    // The exact epoch of the commit that applied this batch: a snapshot at
    // or past it sees every update (differential replay harnesses key on
    // it).
    st_results.fetch_add(1, std::memory_order_relaxed);
    EncodeUpdateAck(UpdateAckFrame{req.update.request_id, commit_epoch},
                    &out);
    return out;
  }
  const QueryRequestFrame& q = req.query;
  QueryContext ctx;
  if (req.has_deadline) {
    if (SteadyClock::now() >= req.deadline) {
      st_errors.fetch_add(1, std::memory_order_relaxed);
      EncodeError(TranslateStatus(q.request_id,
                                  Status::DeadlineExceeded(
                                      "deadline expired before execution")),
                  &out);
      return out;
    }
    ctx.set_deadline(req.deadline);
  }
  if (q.cached) {
    Database& db = mpf.database();
    uint64_t pre = db.epoch();
    auto result = req.session->QueryCached(q.view, q.query, &ctx);
    uint64_t post = db.epoch();
    if (!result.ok()) {
      st_errors.fetch_add(1, std::memory_order_relaxed);
      EncodeError(TranslateStatus(q.request_id, result.status()), &out);
      return out;
    }
    ResultFrame frame;
    frame.request_id = q.request_id;
    // A cached answer raced an update iff the epoch moved around the call;
    // the differential harness skips replaying those.
    frame.snapshot_epoch = pre == post ? pre : post;
    frame.epoch_inexact = pre != post;
    frame.table = *result;
    st_results.fetch_add(1, std::memory_order_relaxed);
    EncodeResult(frame, &out);
    return out;
  }
  std::string optimizer = q.optimizer.empty() ? "cs+nonlinear" : q.optimizer;
  if (q.approx) {
    ApproxOptions approx;
    approx.eps = q.eps;
    approx.max_rounds = q.max_rounds;
    approx.seed = q.seed;
    auto result =
        req.session->QueryApprox(q.view, q.query, approx, optimizer, &ctx);
    if (!result.ok()) {
      st_errors.fetch_add(1, std::memory_order_relaxed);
      EncodeError(TranslateStatus(q.request_id, result.status()), &out);
      return out;
    }
    ResultFrame frame;
    frame.request_id = q.request_id;
    frame.snapshot_epoch = result->snapshot_epoch;
    frame.approximate = result->approximate;
    frame.deadline_degraded = result->deadline_hit;
    frame.table = result->estimate;
    if (result->approximate) {
      frame.samples = result->samples;
      frame.bound_gap = result->max_gap;
      frame.lower = result->lower;
      frame.upper = result->upper;
    }
    st_results.fetch_add(1, std::memory_order_relaxed);
    EncodeResult(frame, &out);
    return out;
  }
  auto result = req.session->Query(q.view, q.query, optimizer, &ctx);
  if (!result.ok()) {
    st_errors.fetch_add(1, std::memory_order_relaxed);
    EncodeError(TranslateStatus(q.request_id, result.status()), &out);
    return out;
  }
  ResultFrame frame;
  frame.request_id = q.request_id;
  frame.snapshot_epoch = result->snapshot_epoch;
  frame.plan_cache_hit = result->plan_cache_hit;
  frame.table = result->table;
  st_results.fetch_add(1, std::memory_order_relaxed);
  EncodeResult(frame, &out);
  return out;
}

void NetServer::Impl::PostResponse(size_t loop_index, uint64_t conn_id,
                                   std::vector<uint8_t> bytes) {
  IoLoop* loop = loops[loop_index].get();
  PostTask(loop, [this, loop, conn_id, b = std::move(bytes)] {
    auto it = loop->conns.find(conn_id);
    if (it == loop->conns.end()) return;  // client disconnected meanwhile
    Connection* c = it->second.get();
    if (c->closed) return;
    if (c->inflight > 0) --c->inflight;
    QueueWrite(loop, c, b);
    if (!c->closed && c->reads_paused &&
        c->inflight < options.max_inflight_per_connection &&
        !c->close_after_flush) {
      c->reads_paused = false;
      UpdateEpoll(loop, c);
      // Whole frames may already be buffered; serve them now rather than
      // waiting for the next socket readable edge.
      HandleReadable(loop, c);
    }
  });
}

}  // namespace mpfdb::server::net
