#ifndef MPFDB_SERVER_NET_NET_SERVER_H_
#define MPFDB_SERVER_NET_NET_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "server/server.h"
#include "util/status.h"

namespace mpfdb::server::net {

struct NetServerOptions {
  // Port to bind on 127.0.0.1; 0 picks an ephemeral port (see port()).
  uint16_t port = 0;
  // Epoll IO loops; accepted connections are assigned round-robin. Each
  // connection's state lives on exactly one loop thread.
  int io_threads = 1;
  // Threads running admitted queries (each blocks in admission like any
  // in-process caller). 0 = MpfServer max_concurrent + 2, so the admission
  // queue — not the worker pool — is what saturates first.
  int query_threads = 0;
  // Accepted connections beyond this are closed immediately.
  size_t max_connections = 1024;
  // Per-connection cap on requests parsed but not yet answered. At the cap
  // the loop stops reading that connection (EPOLLIN off) until responses
  // drain: backpressure propagates into the client's TCP window instead of
  // the server queueing without bound.
  size_t max_inflight_per_connection = 8;
  // Per-connection cap on buffered response bytes. A client that stops
  // reading its responses is disconnected at the cap (slow-reader kick)
  // rather than growing the write buffer unboundedly.
  size_t max_write_buffer_bytes = 4u << 20;
  // SO_SNDBUF for accepted sockets; 0 keeps the kernel default. Tests
  // shrink it so the slow-reader kick triggers with little data.
  int send_buffer_bytes = 0;
  // Graceful-drain budget: Shutdown force-closes whatever has not finished
  // (in-flight queries, response flushes) when this expires, so drain can
  // never hang on a stuck query or a dead client.
  uint32_t drain_timeout_ms = 10000;
};

struct NetServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t connections_refused = 0;  // over max_connections
  uint64_t accept_failures = 0;      // accept() errors, injected or real
  uint64_t frames_read = 0;
  uint64_t requests_received = 0;  // query + metrics frames
  uint64_t results_sent = 0;
  uint64_t errors_sent = 0;        // error frames (definite outcomes)
  uint64_t protocol_errors = 0;    // malformed frames -> connection closed
  uint64_t reads_paused = 0;       // backpressure engagements
  uint64_t slow_reader_kicks = 0;  // write-buffer-cap disconnects
  uint64_t io_faults_injected = 0;  // socket faults drawn from FaultInjector
  uint64_t drain_errors_sent = 0;  // requests answered retryable during drain
  size_t open_connections = 0;     // current
};

// The network front end: an epoll-based wire layer (see wire.h for the
// protocol) multiplexing many connections onto an MpfServer's admission
// control. One acceptor thread hands sockets to `io_threads` event loops;
// parsed query frames are executed by a small worker pool, each worker
// blocking in admission exactly like an in-process Session caller, so wire
// clients and library callers share one fairness and shedding policy.
//
// Overload discipline, in one place:
//  * admission queue full / estimated wait past the deadline -> error frame
//    with retryable=1 and a retry_after_ms backoff hint (from the server's
//    service-time EMA);
//  * too many unanswered requests on one connection -> stop reading it;
//  * client not reading responses -> disconnect at the write-buffer cap;
//  * Shutdown -> stop accepting, answer queued/new requests with a definite
//    retryable error, finish in-flight queries, flush, close. Bounded by
//    drain_timeout_ms, so it never hangs; nothing is silently dropped.
class NetServer {
 public:
  explicit NetServer(MpfServer& server, NetServerOptions options = {});
  ~NetServer();  // implies Shutdown()

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // Binds 127.0.0.1, starts the acceptor, IO loops, and query workers.
  Status Start();

  // The bound port (after Start), e.g. for clients of an ephemeral bind.
  uint16_t port() const;

  // Graceful drain; idempotent. Safe to call while clients are active.
  void Shutdown();

  NetServerStats stats() const;
  MpfServer& server() { return server_; }

 private:
  struct Impl;
  MpfServer& server_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mpfdb::server::net

#endif  // MPFDB_SERVER_NET_NET_SERVER_H_
