#ifndef MPFDB_WORKLOAD_BP_H_
#define MPFDB_WORKLOAD_BP_H_

#include <vector>

#include "graph/junction_tree.h"
#include "semiring/semiring.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "util/status.h"

namespace mpfdb::workload {

// Belief Propagation as a semijoin program (Algorithm 4 and Appendix A).
//
// Runs the forward pass (each table reduced by its join-tree children via
// product semijoin) and the backward pass (children updated by their parent
// via update semijoin) over the join tree of the given tables. On return,
// every table satisfies the workload correctness invariant of Definition 5:
// marginalizing table i onto any subset of its variables yields exactly the
// marginal of the full product join.
//
// Preconditions: the schema of the tables must be acyclic (checked; this is
// what makes the program sound — the paper's Figure 12 example shows how a
// cyclic schema double-counts), and the semiring must support division.
// Inputs are not modified; updated copies are returned in the same order.
StatusOr<std::vector<TablePtr>> BeliefPropagation(
    const std::vector<TablePtr>& tables, const Semiring& semiring);

// BP over a cyclic schema: first applies the Junction Tree algorithm
// (Algorithm 5) — triangulate, form cliques, product-join the tables
// assigned to each clique (cliques with no assigned table get an implicit
// unit-measure complete relation) — then runs BeliefPropagation over the
// clique tables. Returns the updated clique tables and the tree.
struct JunctionTreeBpResult {
  std::vector<TablePtr> clique_tables;
  graph::JunctionTree junction_tree;
};

StatusOr<JunctionTreeBpResult> JunctionTreeBp(
    const std::vector<TablePtr>& tables, const Semiring& semiring,
    const Catalog& catalog);

}  // namespace mpfdb::workload

#endif  // MPFDB_WORKLOAD_BP_H_
