#ifndef MPFDB_WORKLOAD_VECACHE_H_
#define MPFDB_WORKLOAD_VECACHE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exec/hash_table.h"
#include "plan/plan.h"
#include "semiring/semiring.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "util/query_context.h"
#include "util/status.h"

namespace mpfdb::workload {

// A workload of MPF queries over one view: each query is a single-variable
// basic or restricted-answer query with an occurrence probability (the MPF
// Workload Problem of Section 6).
struct WorkloadQuery {
  MpfQuerySpec spec;
  double probability = 1.0;
};

struct VeCacheOptions {
  // Elimination heuristic for the no-query-variable VE plan of Algorithm 3
  // line 1: "degree" (default) or "width".
  bool use_width_heuristic = false;
  // Optional resource governor: Build charges each materialized cache table
  // against its memory budget and polls cancel/deadline between elimination
  // steps. Cache construction does not spill — a budget breach fails with
  // kResourceExhausted. The charges are construction-scoped (released when
  // Build returns); the budget bounds the build's peak, not the lifetime of
  // the returned cache.
  QueryContext* context = nullptr;
  // Build a minimal-perfect-hash row index per base table so incremental
  // maintenance locates the updated row with one probe instead of a table
  // scan. Pure accelerator: results are identical with it off, and a failed
  // MPH construction (e.g. colliding row hashes) silently keeps the scan.
  bool mph_indexes = true;
  // Epoch stamped into the MPH indexes; Database passes its snapshot epoch
  // so a cache serving a stale epoch can never satisfy a lookup.
  uint64_t epoch = 0;
};

// The VE-cache materialized-view set (Algorithm 3). Build() runs a
// no-query-variable Variable Elimination pass over the view's base tables,
// materializing every pre-GroupBy join result; the cached tables are exactly
// the cliques of the triangulation induced by the elimination order
// (Theorem 10), so they form an acyclic schema. The backward update-semijoin
// pass then establishes the workload correctness invariant of Definition 5:
// any MPF query on a variable of cache t answered from t equals the query
// answered from the full view.
class VeCache {
 public:
  static StatusOr<VeCache> Build(const MpfViewDef& view, const Catalog& catalog,
                                 const VeCacheOptions& options = {});

  // Answers an MPF query from the cache. Group variables contained in a
  // single cached table (the single-variable workload queries of Section 6)
  // marginalize that table directly; variables spanning several caches are
  // answered by joining the calibrated caches along their tree paths while
  // dividing out each edge's separator marginal — the standard
  // out-of-clique inference on a calibrated junction tree, so no mass is
  // double-counted. Selections are absorbed with the restricted-domain
  // protocol before marginalizing.
  StatusOr<TablePtr> Answer(const MpfQuerySpec& query) const;

  // The restricted-domain protocol (Theorem 5): applies var = value to a
  // cache containing the variable and propagates update-semijoin reductions
  // along the cache tree, returning a new cache set satisfying the invariant
  // for the constrained view.
  StatusOr<VeCache> WithSelection(const std::string& var, VarValue value) const;

  const std::vector<TablePtr>& caches() const { return caches_; }
  // Dependency tree edges (i, j), i < j: GroupBy(cache i) participated in
  // the join that created cache j.
  const std::vector<std::pair<size_t, size_t>>& edges() const { return edges_; }
  const std::vector<std::string>& elimination_order() const { return order_; }

  // Total rows across all cached tables — the C(S) materialization size the
  // workload objective charges.
  int64_t TotalCacheRows() const;

  // Incremental maintenance (the paper's "option 1": keep materialized views
  // consistent as base relations are updated). Changes the measure of the
  // base-relation row identified by `row_vars` (all variable values, in that
  // table's schema order) to `new_measure`, updates the stored base table in
  // place, rescales the owning cache's affected rows by the semiring ratio
  // new/old, and re-propagates along the cache tree. Far cheaper than
  // rebuilding: one cache's matching rows plus one distribute pass.
  Status ApplyBaseMeasureUpdate(const std::string& table_name,
                                const std::vector<VarValue>& row_vars,
                                double new_measure);

  // Deep copy: clones every cached table AND every base-table copy, so
  // ApplyBaseMeasureUpdate on the clone never mutates state visible through
  // the original. This is the copy-on-write step of concurrent serving:
  // updates refresh a clone and atomically publish it while readers keep
  // answering from the old cache.
  VeCache CloneDeep() const;

 private:
  VeCache(Semiring semiring) : semiring_(semiring) {}

  // Re-propagates updates outward from cache `start` along the tree, then
  // refreshes the component totals.
  Status DistributeFrom(size_t start);
  // Builds the per-base-table MPH row locators (mph_enabled_ must be set).
  void BuildBaseRowIndexes();
  // Combines the calibrated caches of the minimal subtrees covering
  // `needed_vars` into one relation holding the joint's marginal over (at
  // least) those variables, including cross-component totals.
  StatusOr<TablePtr> CombineForVars(
      const std::vector<std::string>& needed_vars) const;
  // Labels caches with their connected component (over the message edges)
  // and records each component's scalar total. A var-disjoint component
  // never receives another's mass through messages, so Answer multiplies the
  // other components' totals in explicitly (the full joint is the cross
  // product of components).
  Status RefreshComponentTotals();

  Semiring semiring_;
  std::vector<TablePtr> caches_;
  std::vector<std::pair<size_t, size_t>> edges_;
  std::vector<std::string> order_;
  // Base tables of the view, in view order, and the cache that absorbed each.
  std::vector<TablePtr> base_tables_;
  std::vector<size_t> base_to_cache_;
  // Per-base-table minimal-perfect-hash row locators (keyed on the FNV hash
  // of the full row's variable values), built once at Build when
  // VeCacheOptions::mph_indexes is set. Measure updates never change row
  // variables, so the indexes stay valid across ApplyBaseMeasureUpdate.
  bool mph_enabled_ = false;
  uint64_t mph_epoch_ = 0;
  std::vector<exec::PerfectHashIndex> base_row_mph_;
  std::vector<uint8_t> base_row_mph_built_;
  // Component id per cache and scalar total per component id.
  std::vector<size_t> cache_component_;
  std::map<size_t, double> component_totals_;
};

}  // namespace mpfdb::workload

#endif  // MPFDB_WORKLOAD_VECACHE_H_
