#ifndef MPFDB_WORKLOAD_VECACHE_H_
#define MPFDB_WORKLOAD_VECACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/hash_table.h"
#include "plan/plan.h"
#include "semiring/semiring.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "util/query_context.h"
#include "util/status.h"

namespace mpfdb::workload {

// A workload of MPF queries over one view: each query is a single-variable
// basic or restricted-answer query with an occurrence probability (the MPF
// Workload Problem of Section 6).
struct WorkloadQuery {
  MpfQuerySpec spec;
  double probability = 1.0;
};

struct VeCacheOptions {
  // Elimination heuristic for the no-query-variable VE plan of Algorithm 3
  // line 1: "degree" (default) or "width".
  bool use_width_heuristic = false;
  // Optional resource governor: Build charges each materialized cache table
  // against its memory budget and polls cancel/deadline between elimination
  // steps. Cache construction does not spill — a budget breach fails with
  // kResourceExhausted. The charges are construction-scoped (released when
  // Build returns); the budget bounds the build's peak, not the lifetime of
  // the returned cache.
  QueryContext* context = nullptr;
  // Build a minimal-perfect-hash row index per base table so incremental
  // maintenance locates the updated row with one probe instead of a table
  // scan. Pure accelerator: results are identical with it off, and a failed
  // MPH construction (e.g. colliding row hashes) silently keeps the scan.
  bool mph_indexes = true;
  // Epoch stamped into the MPH indexes; Database passes its snapshot epoch
  // so a cache serving a stale epoch can never satisfy a lookup.
  uint64_t epoch = 0;
};

// --- Exact-replay delta plan -------------------------------------------
//
// Build() records, besides the cache tables themselves, the row-level
// dataflow that produced them: which factor row fed which joined row, which
// joined rows fold into which message row, and which separator group each
// row belongs to on every tree edge. A measure update then *replays* exactly
// the Build dataflow for the affected rows — same per-entry formulas, same
// fold orders — so the incrementally refreshed cache is bit-identical to a
// full rebuild against the updated base tables (all the fr:: operators'
// structure is measure-independent, and IEEE +/* are bitwise commutative,
// which covers the probe/build role swaps inside ProductJoin). Rows whose
// recomputed value is bitwise unchanged are pruned, so propagation dies out
// on untouched subtrees and per-update work scales with the changed rows.

// Compressed group->members adjacency (members stored back to back).
struct DeltaCsr {
  std::vector<uint32_t> offsets;  // size = num_groups + 1
  std::vector<uint32_t> members;

  size_t NumGroups() const { return offsets.empty() ? 0 : offsets.size() - 1; }
  const uint32_t* begin(size_t g) const { return members.data() + offsets[g]; }
  const uint32_t* end(size_t g) const { return members.data() + offsets[g + 1]; }
};

// One factor of a clique's join, in fold (clique) order.
struct DeltaFactorSlot {
  bool is_base = false;  // base table, else the message of clique `index`
  uint32_t index = 0;    // base_tables_ index or producing clique index
  std::vector<uint32_t> row_map;  // joined row -> factor row
  DeltaCsr rev;                   // factor row -> joined rows
};

// Per-clique replay maps: the clique's join fold and its outgoing message.
struct DeltaCliquePlan {
  // Single-factor cliques alias the factor table as `joined`; no fold.
  bool alias = false;
  std::vector<DeltaFactorSlot> slots;
  std::vector<uint32_t> msg_group_of;  // joined row -> message row
  DeltaCsr msg_members;                // message row -> joined rows (fold order)
  bool msg_consumed = false;           // message feeds a later clique
};

// Per-edge replay maps for the backward update semijoin
// final_i = PJ(cache0_i, DivisionJoin(Marg(final_j, sep), Marg(cache0_i, sep))).
// Groups are the separator assignments of t = cache0_i (== joined_i), in
// first-encounter order over t's rows.
struct DeltaEdgePlan {
  static constexpr uint32_t kNoGroup = 0xffffffffu;
  uint32_t t_clique = 0;  // i: the cache being refreshed
  uint32_t s_clique = 0;  // j: the neighbor whose marginal flows in
  std::vector<uint32_t> t_group_of;  // t row -> group
  std::vector<uint32_t> s_group_of;  // s row -> group (kNoGroup: sep not in t)
  DeltaCsr t_members;                // group -> t rows (t row order = gt fold)
  DeltaCsr s_members;                // group -> s rows (s row order = gs fold)
  std::vector<uint32_t> final_to_t;  // final_i row -> t row
  DeltaCsr group_final;              // group -> final_i rows
};

struct DeltaPlan {
  std::vector<DeltaCliquePlan> cliques;
  std::vector<DeltaEdgePlan> edges;    // parallel to VeCache::edges()
  std::vector<int32_t> out_edge;       // clique -> edge index, -1 for roots
  std::vector<uint8_t> base_absorbed;  // per base table: feeds some clique
  // Lowest cache index per component root (the cache whose scalar marginal
  // RefreshComponentTotals publishes as the component total).
  std::map<size_t, size_t> component_rep;
};

// One base-relation measure-update batch for WithMeasureDelta.
struct VeCacheDeltaOp {
  std::string table;
  // Replacement version of the base table (sharing its variable block). May
  // be null: the delta then synthesizes it via Table::WithMeasureUpdates.
  TablePtr new_table;
  std::vector<std::pair<size_t, double>> rows;  // (row index, new measure)
};

// The VE-cache materialized-view set (Algorithm 3). Build() runs a
// no-query-variable Variable Elimination pass over the view's base tables,
// materializing every pre-GroupBy join result; the cached tables are exactly
// the cliques of the triangulation induced by the elimination order
// (Theorem 10), so they form an acyclic schema. The backward update-semijoin
// pass then establishes the workload correctness invariant of Definition 5:
// any MPF query on a variable of cache t answered from t equals the query
// answered from the full view.
class VeCache {
 public:
  static StatusOr<VeCache> Build(const MpfViewDef& view, const Catalog& catalog,
                                 const VeCacheOptions& options = {});

  // Answers an MPF query from the cache. Group variables contained in a
  // single cached table (the single-variable workload queries of Section 6)
  // marginalize that table directly; variables spanning several caches are
  // answered by joining the calibrated caches along their tree paths while
  // dividing out each edge's separator marginal — the standard
  // out-of-clique inference on a calibrated junction tree, so no mass is
  // double-counted. Selections are absorbed with the restricted-domain
  // protocol before marginalizing.
  StatusOr<TablePtr> Answer(const MpfQuerySpec& query) const;

  // The restricted-domain protocol (Theorem 5): applies var = value to a
  // cache containing the variable and propagates update-semijoin reductions
  // along the cache tree, returning a new cache set satisfying the invariant
  // for the constrained view.
  StatusOr<VeCache> WithSelection(const std::string& var, VarValue value) const;

  const std::vector<TablePtr>& caches() const { return caches_; }
  // Dependency tree edges (i, j), i < j: GroupBy(cache i) participated in
  // the join that created cache j.
  const std::vector<std::pair<size_t, size_t>>& edges() const { return edges_; }
  const std::vector<std::string>& elimination_order() const { return order_; }

  // Total rows across all cached tables — the C(S) materialization size the
  // workload objective charges.
  int64_t TotalCacheRows() const;

  // Incremental maintenance (the paper's "option 1": keep materialized views
  // consistent as base relations are updated). Changes the measure of the
  // base-relation row identified by `row_vars` (all variable values, in that
  // table's schema order) to `new_measure` by replaying the Build dataflow
  // for the affected rows (WithMeasureDelta) and adopting the result. Far
  // cheaper than rebuilding — per-update work scales with the rows the
  // change actually reaches — and bit-identical to a rebuild.
  Status ApplyBaseMeasureUpdate(const std::string& table_name,
                                const std::vector<VarValue>& row_vars,
                                double new_measure);

  // Functional incremental maintenance: a new VeCache version with the given
  // base-measure batch applied, leaving this version untouched (readers keep
  // answering from it). New cache/message tables share every measure chunk
  // their rows did not change, and the replay walks only cliques on the path
  // from the changed factors, pruning rows whose recomputed value is bitwise
  // unchanged. Fails with kFailedPrecondition when exact replay cannot
  // proceed (no delta plan — e.g. a selection-restricted cache; an absorbing
  // zero in a product semiring; a base table no clique absorbed): the caller
  // falls back to a full Build against the updated catalog.
  StatusOr<VeCache> WithMeasureDelta(
      const std::vector<VeCacheDeltaOp>& ops) const;

  // True when this cache retains the Build artifacts WithMeasureDelta needs.
  bool SupportsDelta() const { return delta_plan_ != nullptr; }

  const std::vector<TablePtr>& base_tables() const { return base_tables_; }
  StatusOr<size_t> BaseIndexOf(const std::string& table_name) const;
  // Row of base table `base_index` whose variable values equal `row_vars`
  // (one MPH probe when the index built, else a scan). NotFound if absent.
  StatusOr<size_t> LocateBaseRow(size_t base_index,
                                 const std::vector<VarValue>& row_vars) const;

  // Copy for copy-on-write serving. Tables are immutable between versions
  // (updates produce new versions via WithMeasureDelta), so this is a cheap
  // structure-sharing copy, kept under its historical name.
  VeCache CloneDeep() const;

 private:
  VeCache(Semiring semiring) : semiring_(semiring) {}

  // Computes the delta-plan row maps from the retained Build artifacts
  // (joined_, msgs_, final caches). Called once at the end of Build.
  Status BuildDeltaPlan(const std::vector<std::vector<DeltaFactorSlot>>& slots);

  // Re-propagates updates outward from cache `start` along the tree, then
  // refreshes the component totals.
  Status DistributeFrom(size_t start);
  // Builds the per-base-table MPH row locators (mph_enabled_ must be set).
  void BuildBaseRowIndexes();
  // Combines the calibrated caches of the minimal subtrees covering
  // `needed_vars` into one relation holding the joint's marginal over (at
  // least) those variables, including cross-component totals.
  StatusOr<TablePtr> CombineForVars(
      const std::vector<std::string>& needed_vars) const;
  // Labels caches with their connected component (over the message edges)
  // and records each component's scalar total. A var-disjoint component
  // never receives another's mass through messages, so Answer multiplies the
  // other components' totals in explicitly (the full joint is the cross
  // product of components).
  Status RefreshComponentTotals();

  Semiring semiring_;
  std::vector<TablePtr> caches_;
  std::vector<std::pair<size_t, size_t>> edges_;
  std::vector<std::string> order_;
  // Base tables of the view, in view order, and the cache that absorbed each.
  std::vector<TablePtr> base_tables_;
  std::vector<size_t> base_to_cache_;
  // Per-base-table minimal-perfect-hash row locators (keyed on the FNV hash
  // of the full row's variable values), built once at Build when
  // VeCacheOptions::mph_indexes is set. Measure updates never change row
  // variables, so the indexes stay valid across ApplyBaseMeasureUpdate.
  bool mph_enabled_ = false;
  uint64_t mph_epoch_ = 0;
  std::vector<exec::PerfectHashIndex> base_row_mph_;
  std::vector<uint8_t> base_row_mph_built_;
  // Component id per cache and scalar total per component id.
  std::vector<size_t> cache_component_;
  std::map<size_t, double> component_totals_;
  // Retained Build artifacts for exact-replay maintenance: the pre-GroupBy
  // clique join (joined_[i]; == the pre-backward cache0_i values; aliases
  // the factor table for single-factor cliques) and the outgoing message
  // (msgs_[i]). Shared between versions; WithMeasureDelta replaces them with
  // chunk-sharing new versions. Empty (with a null delta_plan_) on caches
  // whose structure diverged from Build, e.g. WithSelection results.
  std::vector<TablePtr> joined_;
  std::vector<TablePtr> msgs_;
  std::shared_ptr<const DeltaPlan> delta_plan_;
};

}  // namespace mpfdb::workload

#endif  // MPFDB_WORKLOAD_VECACHE_H_
