#include "workload/vecache.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <set>
#include <unordered_map>

#include "exec/thread_pool.h"
#include "fr/algebra.h"

namespace mpfdb::workload {
namespace {

// Bitwise double equality: the change-pruning predicate. Conservative in the
// right direction (distinguishes -0.0 from 0.0 and NaN payloads), so a row
// is only ever pruned when a rebuild would reproduce its bits exactly.
bool BitsEq(double a, double b) {
  uint64_t x, y;
  std::memcpy(&x, &a, sizeof(x));
  std::memcpy(&y, &b, sizeof(y));
  return x == y;
}

std::vector<size_t> ColumnsOf(const Schema& schema,
                              const std::vector<std::string>& vars) {
  std::vector<size_t> cols;
  cols.reserve(vars.size());
  for (const auto& v : vars) cols.push_back(*schema.IndexOf(v));
  return cols;
}

// Packs the projection of `row` onto `cols` into `out` (a hash-map key).
void PackKey(const RowView& row, const std::vector<size_t>& cols,
             std::string* out) {
  out->resize(cols.size() * sizeof(VarValue));
  char* p = out->data();
  for (size_t c : cols) {
    std::memcpy(p, row.vars + c, sizeof(VarValue));
    p += sizeof(VarValue);
  }
}

// Full-tuple row index of `t`: projection key -> row. Rows of a functional
// relation are unique on their variable tuple, so the map is injective.
std::unordered_map<std::string, uint32_t> RowIndexByTuple(const Table& t) {
  std::unordered_map<std::string, uint32_t> index;
  index.reserve(t.NumRows() * 2);
  std::vector<size_t> all(t.schema().arity());
  for (size_t c = 0; c < all.size(); ++c) all[c] = c;
  std::string key;
  for (size_t i = 0; i < t.NumRows(); ++i) {
    PackKey(t.Row(i), all, &key);
    index.emplace(key, static_cast<uint32_t>(i));
  }
  return index;
}

// group_of (row -> group, kSkip entries dropped) -> group -> rows CSR with
// members in ascending row order (= the Marginalize fold order).
DeltaCsr MakeCsr(size_t num_groups, const std::vector<uint32_t>& group_of,
                 uint32_t skip = 0xffffffffu) {
  DeltaCsr csr;
  csr.offsets.assign(num_groups + 1, 0);
  for (uint32_t g : group_of) {
    if (g != skip) ++csr.offsets[g + 1];
  }
  for (size_t g = 1; g <= num_groups; ++g) csr.offsets[g] += csr.offsets[g - 1];
  csr.members.resize(csr.offsets[num_groups]);
  std::vector<uint32_t> cursor(csr.offsets.begin(), csr.offsets.end() - 1);
  for (uint32_t r = 0; r < group_of.size(); ++r) {
    if (group_of[r] != skip) csr.members[cursor[group_of[r]]++] = r;
  }
  return csr;
}

void SortUnique(std::vector<uint32_t>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

// A factor during the no-query-variable VE pass: the current table plus the
// cache it was reduced from (-1 for base relations) and, for base relations,
// the index of the base table it is (-1 otherwise).
struct CacheFactor {
  TablePtr table;
  int cache_origin;
  int base_index;
};

StatusOr<double> DomainProduct(const Catalog& catalog,
                               const std::vector<std::string>& vars) {
  double product = 1.0;
  for (const auto& v : vars) {
    MPFDB_ASSIGN_OR_RETURN(int64_t size, catalog.DomainSize(v));
    product *= static_cast<double>(size);
  }
  return product;
}

uint64_t RowVarsHash(const VarValue* vars, size_t n) {
  return exec::swiss::HashBytes(vars, n * sizeof(VarValue));
}

}  // namespace

StatusOr<VeCache> VeCache::Build(const MpfViewDef& view, const Catalog& catalog,
                                 const VeCacheOptions& options) {
  if (view.relations.empty()) {
    return Status::InvalidArgument("view has no relations");
  }
  if (!view.semiring.HasDivision()) {
    return Status::FailedPrecondition(
        "VE-cache requires a semiring with division (backward pass uses the "
        "update semijoin)");
  }
  VeCache cache(view.semiring);
  QueryContext* ctx = options.context;
  MemoryGuard memory(ctx);

  std::vector<CacheFactor> factors;
  std::vector<std::string> all_vars;
  for (const auto& rel : view.relations) {
    MPFDB_ASSIGN_OR_RETURN(TablePtr table, catalog.GetTable(rel));
    factors.push_back(
        CacheFactor{table, -1, static_cast<int>(cache.base_tables_.size())});
    cache.base_tables_.push_back(table);
    all_vars = varset::Union(all_vars, table->schema().variables());
  }
  cache.base_to_cache_.assign(cache.base_tables_.size(), 0);

  // Scoring candidates only reads the catalog and the current factor set, so
  // a context-supplied pool can fan it out; the argmin below stays serial,
  // keeping the chosen elimination order identical to the serial build.
  exec::ThreadPool* pool = ctx != nullptr ? ctx->thread_pool() : nullptr;

  // No-query-variable VE (Algorithm 3 line 1): every variable is eliminated.
  std::vector<std::string> to_eliminate = all_vars;
  // Factor composition of each clique (fold order), for the delta plan.
  std::vector<std::vector<DeltaFactorSlot>> clique_slots;
  while (!to_eliminate.empty()) {
    // Heuristic choice: degree (post-elimination domain product) or width
    // (pre-elimination domain product).
    std::vector<std::vector<size_t>> cliques(to_eliminate.size());
    std::vector<double> scores(to_eliminate.size(),
                               std::numeric_limits<double>::infinity());
    auto score_candidate = [&](size_t c) -> Status {
      std::vector<std::string> clique_vars;
      for (size_t f = 0; f < factors.size(); ++f) {
        if (factors[f].table->schema().HasVariable(to_eliminate[c])) {
          cliques[c].push_back(f);
          clique_vars = varset::Union(clique_vars,
                                      factors[f].table->schema().variables());
        }
      }
      if (cliques[c].empty()) return Status::Ok();
      std::vector<std::string> scored_vars =
          options.use_width_heuristic
              ? clique_vars
              : varset::Difference(clique_vars, {to_eliminate[c]});
      MPFDB_ASSIGN_OR_RETURN(scores[c], DomainProduct(catalog, scored_vars));
      return Status::Ok();
    };
    if (pool != nullptr && pool->num_threads() > 1 && to_eliminate.size() > 1) {
      MPFDB_RETURN_IF_ERROR(
          pool->ParallelFor(to_eliminate.size(), score_candidate));
    } else {
      for (size_t c = 0; c < to_eliminate.size(); ++c) {
        MPFDB_RETURN_IF_ERROR(score_candidate(c));
      }
    }
    size_t pick = 0;
    double best_score = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < to_eliminate.size(); ++c) {
      if (!cliques[c].empty() && scores[c] < best_score) {
        best_score = scores[c];
        pick = c;
      }
    }
    if (cliques[pick].empty()) {
      // Variable appears in no factor (empty base table edge case): drop it.
      to_eliminate.erase(to_eliminate.begin() + pick);
      continue;
    }
    const std::string var = to_eliminate[pick];
    cache.order_.push_back(var);

    // Join the clique; the join result is cached (it precedes a GroupBy).
    const std::vector<size_t>& clique = cliques[pick];
    TablePtr joined = factors[clique[0]].table;
    for (size_t k = 1; k < clique.size(); ++k) {
      MPFDB_ASSIGN_OR_RETURN(
          joined, fr::ProductJoin(*joined, *factors[clique[k]].table,
                                  view.semiring, "tmp"));
    }
    const size_t cache_index = cache.caches_.size();
    if (ctx != nullptr) {
      MPFDB_RETURN_IF_ERROR(ctx->Poll(joined->NumRows()));
      MPFDB_RETURN_IF_ERROR(memory.Charge(
          joined->NumRows() * (joined->schema().arity() * sizeof(VarValue) +
                               sizeof(double)),
          "VeCache::Build"));
    }
    // A fresh multi-factor join is uniquely owned: seal its measures so the
    // retained joined table, the cache clone below, and every later delta
    // version share chunks. Single-factor cliques alias the factor table
    // (possibly a live catalog table), which must not be resealed here.
    if (clique.size() > 1) joined->SealChunked();
    TablePtr cached(joined->Clone("cache" + std::to_string(cache_index)));
    cache.caches_.push_back(cached);
    cache.joined_.push_back(joined);
    // Record which earlier caches fed this one (Algorithm 3 line 4), which
    // base relations it absorbed, and the factor composition in fold order
    // (for exact-replay incremental maintenance).
    clique_slots.emplace_back();
    for (size_t f : clique) {
      if (factors[f].cache_origin >= 0) {
        cache.edges_.emplace_back(
            static_cast<size_t>(factors[f].cache_origin), cache_index);
      }
      if (factors[f].base_index >= 0) {
        cache.base_to_cache_[static_cast<size_t>(factors[f].base_index)] =
            cache_index;
      }
      DeltaFactorSlot slot;
      slot.is_base = factors[f].base_index >= 0;
      slot.index = slot.is_base ? static_cast<uint32_t>(factors[f].base_index)
                                : static_cast<uint32_t>(factors[f].cache_origin);
      clique_slots.back().push_back(std::move(slot));
    }

    // Reduce: GroupBy on everything but `var`.
    std::vector<std::string> keep =
        varset::Difference(joined->schema().variables(), {var});
    MPFDB_ASSIGN_OR_RETURN(
        TablePtr reduced,
        fr::Marginalize(*joined, keep, view.semiring,
                        "msg" + std::to_string(cache_index)));
    reduced->SealChunked();
    cache.msgs_.push_back(reduced);

    // Replace the clique by the reduced factor.
    std::vector<CacheFactor> next;
    for (size_t f = 0; f < factors.size(); ++f) {
      if (std::find(clique.begin(), clique.end(), f) == clique.end()) {
        next.push_back(factors[f]);
      }
    }
    next.push_back(CacheFactor{reduced, static_cast<int>(cache_index), -1});
    factors = std::move(next);
    to_eliminate.erase(to_eliminate.begin() + pick);
  }

  // Backward pass (Algorithm 3 lines 3-7): propagate later caches' reductions
  // into the caches that fed them.
  for (size_t e = cache.edges_.size(); e-- > 0;) {
    const auto& [i, j] = cache.edges_[e];
    if (ctx != nullptr) {
      MPFDB_RETURN_IF_ERROR(ctx->Poll(cache.caches_[i]->NumRows()));
    }
    MPFDB_ASSIGN_OR_RETURN(
        cache.caches_[i],
        fr::UpdateSemijoin(*cache.caches_[i], *cache.caches_[j], view.semiring,
                           cache.caches_[i]->name()));
  }
  MPFDB_RETURN_IF_ERROR(cache.RefreshComponentTotals());
  // Seal every cache table: non-root caches are fresh UpdateSemijoin
  // results, root caches are the (already chunk-sharing) clique clones.
  // From here on all tables are immutable; updates mint new versions.
  for (TablePtr& t : cache.caches_) t->SealChunked();
  MPFDB_RETURN_IF_ERROR(cache.BuildDeltaPlan(clique_slots));
  if (options.mph_indexes) {
    cache.mph_enabled_ = true;
    cache.mph_epoch_ = options.epoch;
    cache.BuildBaseRowIndexes();
  }
  return cache;
}

Status VeCache::BuildDeltaPlan(
    const std::vector<std::vector<DeltaFactorSlot>>& slots) {
  auto plan = std::make_shared<DeltaPlan>();
  const size_t num_cliques = caches_.size();
  plan->cliques.resize(num_cliques);
  plan->base_absorbed.assign(base_tables_.size(), 0);
  plan->out_edge.assign(num_cliques, -1);
  for (size_t e = 0; e < edges_.size(); ++e) {
    const size_t i = edges_[e].first;
    if (plan->out_edge[i] != -1) {
      // Each message is consumed exactly once, so a cache feeds at most one
      // later clique; replay depends on this.
      return Status::Internal("cache " + std::to_string(i) +
                              " feeds multiple cliques");
    }
    plan->out_edge[i] = static_cast<int32_t>(e);
  }

  for (size_t i = 0; i < num_cliques; ++i) {
    DeltaCliquePlan& cp = plan->cliques[i];
    cp.slots = slots[i];
    cp.alias = cp.slots.size() == 1;
    const Table& joined = *joined_[i];
    for (DeltaFactorSlot& slot : cp.slots) {
      if (slot.is_base) {
        plan->base_absorbed[slot.index] = 1;
      } else {
        plan->cliques[slot.index].msg_consumed = true;
      }
      if (cp.alias) continue;  // joined aliases the factor: identity map
      const Table& factor =
          slot.is_base ? *base_tables_[slot.index] : *msgs_[slot.index];
      auto index = RowIndexByTuple(factor);
      const std::vector<size_t> cols =
          ColumnsOf(joined.schema(), factor.schema().variables());
      slot.row_map.resize(joined.NumRows());
      std::string key;
      for (size_t r = 0; r < joined.NumRows(); ++r) {
        PackKey(joined.Row(r), cols, &key);
        auto it = index.find(key);
        if (it == index.end()) {
          return Status::Internal("joined row of clique " + std::to_string(i) +
                                  " has no source row in " + factor.name());
        }
        slot.row_map[r] = it->second;
      }
      slot.rev = MakeCsr(factor.NumRows(), slot.row_map);
    }
  }
  // Message fold maps, only for messages a later clique consumes.
  for (size_t i = 0; i < num_cliques; ++i) {
    DeltaCliquePlan& cp = plan->cliques[i];
    if (!cp.msg_consumed) continue;
    const Table& joined = *joined_[i];
    const Table& msg = *msgs_[i];
    auto index = RowIndexByTuple(msg);
    const std::vector<size_t> cols =
        ColumnsOf(joined.schema(), msg.schema().variables());
    cp.msg_group_of.resize(joined.NumRows());
    std::string key;
    for (size_t r = 0; r < joined.NumRows(); ++r) {
      PackKey(joined.Row(r), cols, &key);
      auto it = index.find(key);
      if (it == index.end()) {
        return Status::Internal("message row missing for clique " +
                                std::to_string(i));
      }
      cp.msg_group_of[r] = it->second;
    }
    cp.msg_members = MakeCsr(msg.NumRows(), cp.msg_group_of);
  }

  // Edge plans: separator groups of t = joined_i (first-encounter order),
  // aligned s rows, and the surviving final-row mapping.
  plan->edges.resize(edges_.size());
  for (size_t e = 0; e < edges_.size(); ++e) {
    const auto& [i, j] = edges_[e];
    DeltaEdgePlan& ep = plan->edges[e];
    ep.t_clique = static_cast<uint32_t>(i);
    ep.s_clique = static_cast<uint32_t>(j);
    const Table& t = *joined_[i];
    const Table& s = *caches_[j];
    const std::vector<std::string> sep = varset::Intersect(
        t.schema().variables(), s.schema().variables());
    const std::vector<size_t> t_cols = ColumnsOf(t.schema(), sep);
    const std::vector<size_t> s_cols = ColumnsOf(s.schema(), sep);
    std::unordered_map<std::string, uint32_t> group_ids;
    group_ids.reserve(t.NumRows() * 2);
    ep.t_group_of.resize(t.NumRows());
    std::string key;
    for (size_t r = 0; r < t.NumRows(); ++r) {
      PackKey(t.Row(r), t_cols, &key);
      ep.t_group_of[r] =
          group_ids.emplace(key, static_cast<uint32_t>(group_ids.size()))
              .first->second;
    }
    const size_t num_groups = group_ids.size();
    ep.t_members = MakeCsr(num_groups, ep.t_group_of);
    ep.s_group_of.resize(s.NumRows());
    for (size_t r = 0; r < s.NumRows(); ++r) {
      PackKey(s.Row(r), s_cols, &key);
      auto it = group_ids.find(key);
      ep.s_group_of[r] =
          it == group_ids.end() ? DeltaEdgePlan::kNoGroup : it->second;
    }
    ep.s_members = MakeCsr(num_groups, ep.s_group_of, DeltaEdgePlan::kNoGroup);
    // final_i rows are the t rows whose separator assignment s also has.
    const Table& fin = *caches_[i];
    auto t_index = RowIndexByTuple(t);
    const std::vector<size_t> f_cols =
        ColumnsOf(fin.schema(), t.schema().variables());
    ep.final_to_t.resize(fin.NumRows());
    std::vector<uint32_t> final_group_of(fin.NumRows());
    for (size_t r = 0; r < fin.NumRows(); ++r) {
      PackKey(fin.Row(r), f_cols, &key);
      auto it = t_index.find(key);
      if (it == t_index.end()) {
        return Status::Internal("final cache row of clique " +
                                std::to_string(i) + " not found in its join");
      }
      ep.final_to_t[r] = it->second;
      final_group_of[r] = ep.t_group_of[it->second];
    }
    ep.group_final = MakeCsr(num_groups, final_group_of);
  }

  for (size_t i = 0; i < num_cliques; ++i) {
    const size_t root = cache_component_[i];
    plan->component_rep.emplace(root, i);  // keeps the lowest i per root
  }
  delta_plan_ = std::move(plan);
  return Status::Ok();
}

void VeCache::BuildBaseRowIndexes() {
  base_row_mph_.assign(base_tables_.size(), exec::PerfectHashIndex());
  base_row_mph_built_.assign(base_tables_.size(), 0);
  std::vector<uint64_t> hashes;
  for (size_t b = 0; b < base_tables_.size(); ++b) {
    const Table& base = *base_tables_[b];
    hashes.resize(base.NumRows());
    for (size_t i = 0; i < base.NumRows(); ++i) {
      RowView row = base.Row(i);
      hashes[i] = RowVarsHash(row.vars, row.arity);
    }
    // Colliding row hashes make the key set non-distinct and the build
    // reports failure; the update path then keeps its linear scan.
    base_row_mph_built_[b] =
        exec::PerfectHashIndex::Build(hashes, mph_epoch_, &base_row_mph_[b])
            ? 1
            : 0;
  }
}

Status VeCache::RefreshComponentTotals() {
  const size_t n = caches_.size();
  cache_component_.resize(n);
  for (size_t i = 0; i < n; ++i) cache_component_[i] = i;
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (cache_component_[x] != x) {
      cache_component_[x] = cache_component_[cache_component_[x]];
      x = cache_component_[x];
    }
    return x;
  };
  for (const auto& [i, j] : edges_) {
    // A scalar message creates an edge between var-disjoint caches; such an
    // edge carries no marginal information, so it does not merge components
    // (an empty separator splits the tree into independent parts).
    if (!varset::Intersect(caches_[i]->schema().variables(),
                           caches_[j]->schema().variables())
             .empty()) {
      cache_component_[find(i)] = find(j);
    }
  }
  component_totals_.clear();
  for (size_t i = 0; i < n; ++i) {
    size_t root = find(i);
    if (component_totals_.count(root)) continue;
    // Every calibrated cache carries its component's total mass.
    MPFDB_ASSIGN_OR_RETURN(TablePtr scalar,
                           fr::Marginalize(*caches_[i], {}, semiring_, "total"));
    component_totals_[root] = scalar->NumRows() > 0
                                  ? scalar->measure(0)
                                  : semiring_.AddIdentity();
  }
  for (size_t i = 0; i < n; ++i) cache_component_[i] = find(i);
  return Status::Ok();
}

StatusOr<TablePtr> VeCache::Answer(const MpfQuerySpec& query) const {
  const VeCache* source = this;
  VeCache restricted(semiring_);
  if (!query.selections.empty()) {
    MPFDB_ASSIGN_OR_RETURN(restricted,
                           WithSelection(query.selections[0].var,
                                         query.selections[0].value));
    for (size_t s = 1; s < query.selections.size(); ++s) {
      MPFDB_ASSIGN_OR_RETURN(restricted,
                             restricted.WithSelection(query.selections[s].var,
                                                      query.selections[s].value));
    }
    source = &restricted;
  }
  MPFDB_ASSIGN_OR_RETURN(TablePtr combined,
                         source->CombineForVars(query.group_vars));
  MPFDB_ASSIGN_OR_RETURN(
      TablePtr answer,
      fr::Marginalize(*combined, query.group_vars, semiring_, "answer"));
  if (query.having.has_value()) {
    return fr::FilterMeasure(*answer, *query.having, "answer");
  }
  return answer;
}

StatusOr<TablePtr> VeCache::CombineForVars(
    const std::vector<std::string>& needed_vars) const {
  // Pick, for each needed variable, the smallest cache containing it.
  std::vector<size_t> anchors;
  for (const auto& var : needed_vars) {
    size_t best = caches_.size();
    for (size_t i = 0; i < caches_.size(); ++i) {
      if (!caches_[i]->schema().HasVariable(var)) continue;
      if (best == caches_.size() ||
          caches_[i]->NumRows() < caches_[best]->NumRows()) {
        best = i;
      }
    }
    if (best == caches_.size()) {
      return Status::NotFound("no cached table contains variable '" + var +
                              "'");
    }
    if (std::find(anchors.begin(), anchors.end(), best) == anchors.end()) {
      anchors.push_back(best);
    }
  }
  // Adjacency of the cache tree.
  std::vector<std::vector<size_t>> adjacency(caches_.size());
  for (const auto& [i, j] : edges_) {
    adjacency[i].push_back(j);
    adjacency[j].push_back(i);
  }

  // One combined relation per component that holds anchors: join the minimal
  // subtree spanning the component's anchors, dividing out each tree edge's
  // separator marginal (valid because the tree is calibrated: a separator's
  // marginal is identical on both sides).
  std::vector<bool> anchor_done(caches_.size(), false);
  TablePtr result;
  std::set<size_t> covered_components;
  for (size_t a : anchors) {
    if (anchor_done[a]) continue;
    // Anchors in the same component as `a`.
    std::vector<size_t> same_component;
    for (size_t b : anchors) {
      if (cache_component_[b] == cache_component_[a]) {
        same_component.push_back(b);
        anchor_done[b] = true;
      }
    }
    covered_components.insert(cache_component_[a]);
    // BFS from `a`; keep parent pointers to extract paths.
    std::vector<int> parent(caches_.size(), -1);
    parent[a] = static_cast<int>(a);
    std::vector<size_t> queue = {a};
    for (size_t qi = 0; qi < queue.size(); ++qi) {
      for (size_t nbr : adjacency[queue[qi]]) {
        if (parent[nbr] == -1) {
          parent[nbr] = static_cast<int>(queue[qi]);
          queue.push_back(nbr);
        }
      }
    }
    // The Steiner subtree: union of path nodes from each anchor to `a`.
    std::set<size_t> subtree = {a};
    for (size_t b : same_component) {
      for (size_t node = b; node != a;
           node = static_cast<size_t>(parent[node])) {
        subtree.insert(node);
      }
    }
    // Combine the subtree in BFS order: each node beyond the first joins as
    // (table ÷ its separator marginal with its subtree parent).
    TablePtr component_result = caches_[a];
    for (size_t node : queue) {
      if (node == a || subtree.count(node) == 0) continue;
      size_t up = static_cast<size_t>(parent[node]);
      std::vector<std::string> separator =
          varset::Intersect(caches_[node]->schema().variables(),
                            caches_[up]->schema().variables());
      TablePtr attachment = caches_[node];
      if (!separator.empty()) {
        MPFDB_ASSIGN_OR_RETURN(
            TablePtr sep_marginal,
            fr::Marginalize(*caches_[node], separator, semiring_, "sep"));
        MPFDB_ASSIGN_OR_RETURN(attachment,
                               fr::DivisionJoin(*caches_[node], *sep_marginal,
                                                semiring_, "att"));
      }
      MPFDB_ASSIGN_OR_RETURN(component_result,
                             fr::ProductJoin(*component_result, *attachment,
                                             semiring_, "combined"));
    }
    if (result == nullptr) {
      result = component_result;
    } else {
      // Var-disjoint components: cross product.
      MPFDB_ASSIGN_OR_RETURN(result, fr::ProductJoin(*result, *component_result,
                                                     semiring_, "combined"));
    }
  }
  if (result == nullptr) {
    return Status::InvalidArgument("no variables requested");
  }
  // Totals of components not represented at all.
  double factor = semiring_.MultiplyIdentity();
  for (const auto& [root, total] : component_totals_) {
    if (covered_components.count(root) == 0) {
      factor = semiring_.Multiply(factor, total);
    }
  }
  if (factor != semiring_.MultiplyIdentity()) {
    TablePtr scaled(result->Clone(result->name()));
    for (size_t r = 0; r < scaled->NumRows(); ++r) {
      scaled->set_measure(r, semiring_.Multiply(scaled->measure(r), factor));
    }
    result = scaled;
  }
  return result;
}

StatusOr<VeCache> VeCache::WithSelection(const std::string& var,
                                         VarValue value) const {
  // Locate a cache containing the variable.
  size_t start = caches_.size();
  for (size_t i = 0; i < caches_.size(); ++i) {
    if (caches_[i]->schema().HasVariable(var)) {
      start = i;
      break;
    }
  }
  if (start == caches_.size()) {
    return Status::NotFound("no cached table contains variable '" + var + "'");
  }
  VeCache updated(semiring_);
  updated.edges_ = edges_;
  updated.order_ = order_;
  updated.base_tables_ = base_tables_;
  updated.base_to_cache_ = base_to_cache_;
  updated.mph_enabled_ = mph_enabled_;
  updated.mph_epoch_ = mph_epoch_;
  updated.base_row_mph_ = base_row_mph_;
  updated.base_row_mph_built_ = base_row_mph_built_;
  // Cached tables are immutable (Select and the distribute pass below mint
  // new tables), so the restricted cache shares them rather than cloning.
  // The restriction changes cache structure, so it retains no delta plan:
  // measure updates on a restricted cache report FailedPrecondition.
  updated.caches_ = caches_;
  // Apply the selection (protocol step 1), then propagate (step 2).
  MPFDB_ASSIGN_OR_RETURN(
      updated.caches_[start],
      fr::Select(*updated.caches_[start], var, value,
                 updated.caches_[start]->name()));
  MPFDB_RETURN_IF_ERROR(updated.DistributeFrom(start));
  return updated;
}

Status VeCache::DistributeFrom(size_t start) {
  // BFS outward over the cache tree, reducing each table with respect to its
  // already-updated neighbor (a BP semijoin program over the acyclic cache
  // schema — Theorems 5 and 10).
  std::vector<std::vector<size_t>> adjacency(caches_.size());
  for (const auto& [i, j] : edges_) {
    adjacency[i].push_back(j);
    adjacency[j].push_back(i);
  }
  std::vector<bool> visited(caches_.size(), false);
  visited[start] = true;
  std::vector<size_t> queue = {start};
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    size_t u = queue[qi];
    for (size_t w : adjacency[u]) {
      if (visited[w]) continue;
      visited[w] = true;
      if (!varset::Intersect(caches_[w]->schema().variables(),
                             caches_[u]->schema().variables())
               .empty()) {
        MPFDB_ASSIGN_OR_RETURN(
            caches_[w], fr::UpdateSemijoin(*caches_[w], *caches_[u], semiring_,
                                           caches_[w]->name()));
      }
      queue.push_back(w);
    }
  }
  return RefreshComponentTotals();
}

StatusOr<size_t> VeCache::BaseIndexOf(const std::string& table_name) const {
  for (size_t b = 0; b < base_tables_.size(); ++b) {
    if (base_tables_[b]->name() == table_name) return b;
  }
  return Status::NotFound("'" + table_name + "' is not a base table of this "
                          "cache's view");
}

StatusOr<size_t> VeCache::LocateBaseRow(
    size_t base_index, const std::vector<VarValue>& row_vars) const {
  const Table& base = *base_tables_[base_index];
  if (row_vars.size() != base.schema().arity()) {
    return Status::InvalidArgument(
        "row must provide all " + std::to_string(base.schema().arity()) +
        " variable values of " + base.name());
  }
  // Fast path: one MPH probe plus a verifying row compare. A miss (stale
  // epoch, failed build, or absent row) falls through to the linear scan,
  // which remains the semantic ground truth.
  if (mph_enabled_ && base_index < base_row_mph_built_.size() &&
      base_row_mph_built_[base_index] != 0) {
    const uint64_t h = RowVarsHash(row_vars.data(), row_vars.size());
    const size_t pos = base_row_mph_[base_index].Lookup(h, mph_epoch_);
    if (pos != exec::PerfectHashIndex::kNotFound) {
      RowView row = base.Row(pos);
      if (std::equal(row.vars, row.vars + row.arity, row_vars.begin())) {
        return pos;
      }
    }
  }
  for (size_t i = 0; i < base.NumRows(); ++i) {
    RowView row = base.Row(i);
    if (std::equal(row.vars, row.vars + row.arity, row_vars.begin())) {
      return i;
    }
  }
  return Status::NotFound("no row of " + base.name() +
                          " matches the given variable values");
}

Status VeCache::ApplyBaseMeasureUpdate(const std::string& table_name,
                                       const std::vector<VarValue>& row_vars,
                                       double new_measure) {
  MPFDB_ASSIGN_OR_RETURN(size_t base_index, BaseIndexOf(table_name));
  MPFDB_ASSIGN_OR_RETURN(size_t row_index,
                         LocateBaseRow(base_index, row_vars));
  if (base_tables_[base_index]->measure(row_index) == new_measure) {
    return Status::Ok();
  }
  VeCacheDeltaOp op;
  op.table = table_name;
  op.rows.emplace_back(row_index, new_measure);
  MPFDB_ASSIGN_OR_RETURN(VeCache next, WithMeasureDelta({op}));
  *this = std::move(next);
  return Status::Ok();
}

StatusOr<VeCache> VeCache::WithMeasureDelta(
    const std::vector<VeCacheDeltaOp>& ops) const {
  if (delta_plan_ == nullptr) {
    return Status::FailedPrecondition(
        "cache retains no delta plan; rebuild required");
  }
  const DeltaPlan& plan = *delta_plan_;
  const size_t num_cliques = caches_.size();

  // Stage the base-table changes: validate, drop bitwise no-ops, last write
  // wins per row, and adopt (or mint) the new base-table versions.
  std::vector<std::vector<std::pair<size_t, double>>> base_changed(
      base_tables_.size());
  std::vector<TablePtr> new_bases = base_tables_;
  for (const auto& op : ops) {
    MPFDB_ASSIGN_OR_RETURN(size_t b, BaseIndexOf(op.table));
    if (!plan.base_absorbed[b]) {
      return Status::FailedPrecondition("base table '" + op.table +
                                        "' feeds no clique; rebuild required");
    }
    const Table& base = *base_tables_[b];
    for (const auto& [row, value] : op.rows) {
      if (row >= base.NumRows()) {
        return Status::InvalidArgument("row " + std::to_string(row) +
                                       " out of range for " + op.table);
      }
      const double old_value = base.measure(row);
      if (BitsEq(old_value, value)) continue;
      // A zero old measure under a product semiring is absorbing: the
      // downstream products carry no trace of the row. Exact replay could
      // still recompute them, but the established contract is to reject and
      // let the caller rebuild.
      if ((semiring_.kind() == SemiringKind::kSumProduct ||
           semiring_.kind() == SemiringKind::kMaxProduct) &&
          old_value == 0.0) {
        return Status::FailedPrecondition(
            "cannot incrementally rescale from measure 0.000000; rebuild the "
            "cache");
      }
      base_changed[b].emplace_back(row, value);
    }
    if (op.new_table != nullptr) new_bases[b] = op.new_table;
  }
  for (size_t b = 0; b < base_changed.size(); ++b) {
    auto& changed = base_changed[b];
    if (changed.empty()) continue;
    // Stable last-write-wins dedupe, then ascending row order.
    std::stable_sort(changed.begin(), changed.end(),
                     [](const auto& x, const auto& y) {
                       return x.first < y.first;
                     });
    auto out = changed.begin();
    for (auto it = changed.begin(); it != changed.end(); ++it) {
      auto next = it + 1;
      if (next == changed.end() || next->first != it->first) *out++ = *it;
    }
    changed.erase(out, changed.end());
    if (new_bases[b] == base_tables_[b]) {
      new_bases[b] =
          base_tables_[b]->WithMeasureUpdates(changed, base_tables_[b]->name());
    }
  }

  // Forward replay, cliques in creation order: recompute affected joined
  // rows with the Build fold (left-associated product over the factor rows),
  // then refold the messages whose groups contain a changed row. Bitwise-
  // unchanged results are pruned, so untouched subtrees see no work.
  std::vector<std::vector<std::pair<size_t, double>>> changed_joined(
      num_cliques);
  std::vector<std::vector<std::pair<size_t, double>>> changed_msg(num_cliques);
  std::vector<TablePtr> new_joined = joined_;
  std::vector<TablePtr> new_msgs = msgs_;
  for (size_t i = 0; i < num_cliques; ++i) {
    const DeltaCliquePlan& cp = plan.cliques[i];
    auto changes_of = [&](const DeltaFactorSlot& slot)
        -> const std::vector<std::pair<size_t, double>>& {
      return slot.is_base ? base_changed[slot.index] : changed_msg[slot.index];
    };
    bool touched = false;
    for (const DeltaFactorSlot& slot : cp.slots) {
      if (!changes_of(slot).empty()) touched = true;
    }
    if (!touched) continue;
    if (cp.alias) {
      // joined *is* the factor table: adopt its new version and changes.
      const DeltaFactorSlot& slot = cp.slots[0];
      changed_joined[i] = changes_of(slot);
      new_joined[i] =
          slot.is_base ? new_bases[slot.index] : new_msgs[slot.index];
    } else {
      std::vector<uint32_t> affected;
      for (const DeltaFactorSlot& slot : cp.slots) {
        for (const auto& [fr, value] : changes_of(slot)) {
          affected.insert(affected.end(), slot.rev.begin(fr),
                          slot.rev.end(fr));
        }
      }
      SortUnique(&affected);
      for (uint32_t r : affected) {
        double value = 0.0;
        bool first = true;
        for (const DeltaFactorSlot& slot : cp.slots) {
          const Table& factor =
              slot.is_base ? *new_bases[slot.index] : *new_msgs[slot.index];
          const double fv = factor.measure(slot.row_map[r]);
          value = first ? fv : semiring_.Multiply(value, fv);
          first = false;
        }
        if (!BitsEq(value, joined_[i]->measure(r))) {
          changed_joined[i].emplace_back(r, value);
        }
      }
      if (!changed_joined[i].empty()) {
        new_joined[i] = joined_[i]->WithMeasureUpdates(changed_joined[i],
                                                       joined_[i]->name());
      }
    }
    if (changed_joined[i].empty() || !cp.msg_consumed) continue;
    std::vector<uint32_t> groups;
    groups.reserve(changed_joined[i].size());
    for (const auto& [r, value] : changed_joined[i]) {
      groups.push_back(cp.msg_group_of[r]);
    }
    SortUnique(&groups);
    for (uint32_t g : groups) {
      double acc = 0.0;
      bool first = true;
      for (const uint32_t* m = cp.msg_members.begin(g);
           m != cp.msg_members.end(g); ++m) {
        const double v = new_joined[i]->measure(*m);
        acc = first ? v : semiring_.Add(acc, v);
        first = false;
      }
      if (!BitsEq(acc, msgs_[i]->measure(g))) {
        changed_msg[i].emplace_back(g, acc);
      }
    }
    if (!changed_msg[i].empty()) {
      new_msgs[i] =
          msgs_[i]->WithMeasureUpdates(changed_msg[i], msgs_[i]->name());
    }
  }

  // Backward replay. Roots first: their final cache equals their join.
  std::vector<std::vector<std::pair<size_t, double>>> changed_final(
      num_cliques);
  std::vector<TablePtr> new_final = caches_;
  for (size_t i = 0; i < num_cliques; ++i) {
    if (plan.out_edge[i] < 0 && !changed_joined[i].empty()) {
      changed_final[i] = changed_joined[i];
      new_final[i] = caches_[i]->WithMeasureUpdates(changed_final[i],
                                                    caches_[i]->name());
    }
  }
  // Then edges in reverse creation order (as in Build): when edge (i, j) is
  // processed, final_j is already settled — j's own outgoing edge, if any,
  // was created later and therefore already replayed.
  for (size_t e = edges_.size(); e-- > 0;) {
    const DeltaEdgePlan& ep = plan.edges[e];
    const size_t i = ep.t_clique;
    const size_t j = ep.s_clique;
    std::vector<uint32_t> groups;
    for (const auto& [r, value] : changed_joined[i]) {
      groups.push_back(ep.t_group_of[r]);
    }
    for (const auto& [r, value] : changed_final[j]) {
      const uint32_t g = ep.s_group_of[r];
      if (g != DeltaEdgePlan::kNoGroup) groups.push_back(g);
    }
    SortUnique(&groups);
    if (groups.empty()) continue;
    const Table& t_new = *new_joined[i];
    const Table& s_new = *new_final[j];
    for (uint32_t g : groups) {
      if (ep.group_final.begin(g) == ep.group_final.end(g)) continue;
      double gt = 0.0;
      bool first = true;
      for (const uint32_t* m = ep.t_members.begin(g); m != ep.t_members.end(g);
           ++m) {
        const double v = t_new.measure(*m);
        gt = first ? v : semiring_.Add(gt, v);
        first = false;
      }
      // An absorbing separator marginal (zero divisor in a product semiring,
      // or a non-finite one) would spread infinities/NaNs through the
      // division; fall back to the full rebuild instead.
      if (((semiring_.kind() == SemiringKind::kSumProduct ||
            semiring_.kind() == SemiringKind::kMaxProduct) &&
           gt == 0.0) ||
          !std::isfinite(gt)) {
        return Status::FailedPrecondition(
            "absorbing separator marginal on cache edge; rebuild the cache");
      }
      double gs = 0.0;
      first = true;
      for (const uint32_t* m = ep.s_members.begin(g); m != ep.s_members.end(g);
           ++m) {
        const double v = s_new.measure(*m);
        gs = first ? v : semiring_.Add(gs, v);
        first = false;
      }
      const double ratio = semiring_.Divide(gs, gt);
      for (const uint32_t* fr = ep.group_final.begin(g);
           fr != ep.group_final.end(g); ++fr) {
        const double value =
            semiring_.Multiply(t_new.measure(ep.final_to_t[*fr]), ratio);
        if (!BitsEq(value, caches_[i]->measure(*fr))) {
          changed_final[i].emplace_back(*fr, value);
        }
      }
    }
    if (!changed_final[i].empty()) {
      new_final[i] = caches_[i]->WithMeasureUpdates(changed_final[i],
                                                    caches_[i]->name());
    }
  }

  // Component totals. A single-component cache never reads its total (every
  // answer covers the component), so skip the refold entirely; otherwise
  // refold exactly the components whose representative cache changed, with
  // the same Marginalize call Build uses.
  std::map<size_t, double> new_totals = component_totals_;
  if (component_totals_.size() > 1) {
    for (const auto& [root, rep] : plan.component_rep) {
      if (changed_final[rep].empty()) continue;
      MPFDB_ASSIGN_OR_RETURN(
          TablePtr scalar,
          fr::Marginalize(*new_final[rep], {}, semiring_, "total"));
      new_totals[root] = scalar->NumRows() > 0 ? scalar->measure(0)
                                               : semiring_.AddIdentity();
    }
  }

  VeCache next = *this;
  next.base_tables_ = std::move(new_bases);
  next.caches_ = std::move(new_final);
  next.joined_ = std::move(new_joined);
  next.msgs_ = std::move(new_msgs);
  next.component_totals_ = std::move(new_totals);
  return next;
}

VeCache VeCache::CloneDeep() const {
  // Tables are immutable between versions (updates mint new versions via
  // WithMeasureDelta), so a structure-sharing copy has the same isolation
  // the old deep clone provided, at pointer-copy cost.
  return *this;
}

int64_t VeCache::TotalCacheRows() const {
  int64_t total = 0;
  for (const TablePtr& t : caches_) {
    total += static_cast<int64_t>(t->NumRows());
  }
  return total;
}

}  // namespace mpfdb::workload
