#include "workload/vecache.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <set>

#include "exec/thread_pool.h"
#include "fr/algebra.h"

namespace mpfdb::workload {
namespace {

// A factor during the no-query-variable VE pass: the current table plus the
// cache it was reduced from (-1 for base relations) and, for base relations,
// the index of the base table it is (-1 otherwise).
struct CacheFactor {
  TablePtr table;
  int cache_origin;
  int base_index;
};

StatusOr<double> DomainProduct(const Catalog& catalog,
                               const std::vector<std::string>& vars) {
  double product = 1.0;
  for (const auto& v : vars) {
    MPFDB_ASSIGN_OR_RETURN(int64_t size, catalog.DomainSize(v));
    product *= static_cast<double>(size);
  }
  return product;
}

uint64_t RowVarsHash(const VarValue* vars, size_t n) {
  return exec::swiss::HashBytes(vars, n * sizeof(VarValue));
}

}  // namespace

StatusOr<VeCache> VeCache::Build(const MpfViewDef& view, const Catalog& catalog,
                                 const VeCacheOptions& options) {
  if (view.relations.empty()) {
    return Status::InvalidArgument("view has no relations");
  }
  if (!view.semiring.HasDivision()) {
    return Status::FailedPrecondition(
        "VE-cache requires a semiring with division (backward pass uses the "
        "update semijoin)");
  }
  VeCache cache(view.semiring);
  QueryContext* ctx = options.context;
  MemoryGuard memory(ctx);

  std::vector<CacheFactor> factors;
  std::vector<std::string> all_vars;
  for (const auto& rel : view.relations) {
    MPFDB_ASSIGN_OR_RETURN(TablePtr table, catalog.GetTable(rel));
    factors.push_back(
        CacheFactor{table, -1, static_cast<int>(cache.base_tables_.size())});
    cache.base_tables_.push_back(table);
    all_vars = varset::Union(all_vars, table->schema().variables());
  }
  cache.base_to_cache_.assign(cache.base_tables_.size(), 0);

  // Scoring candidates only reads the catalog and the current factor set, so
  // a context-supplied pool can fan it out; the argmin below stays serial,
  // keeping the chosen elimination order identical to the serial build.
  exec::ThreadPool* pool = ctx != nullptr ? ctx->thread_pool() : nullptr;

  // No-query-variable VE (Algorithm 3 line 1): every variable is eliminated.
  std::vector<std::string> to_eliminate = all_vars;
  while (!to_eliminate.empty()) {
    // Heuristic choice: degree (post-elimination domain product) or width
    // (pre-elimination domain product).
    std::vector<std::vector<size_t>> cliques(to_eliminate.size());
    std::vector<double> scores(to_eliminate.size(),
                               std::numeric_limits<double>::infinity());
    auto score_candidate = [&](size_t c) -> Status {
      std::vector<std::string> clique_vars;
      for (size_t f = 0; f < factors.size(); ++f) {
        if (factors[f].table->schema().HasVariable(to_eliminate[c])) {
          cliques[c].push_back(f);
          clique_vars = varset::Union(clique_vars,
                                      factors[f].table->schema().variables());
        }
      }
      if (cliques[c].empty()) return Status::Ok();
      std::vector<std::string> scored_vars =
          options.use_width_heuristic
              ? clique_vars
              : varset::Difference(clique_vars, {to_eliminate[c]});
      MPFDB_ASSIGN_OR_RETURN(scores[c], DomainProduct(catalog, scored_vars));
      return Status::Ok();
    };
    if (pool != nullptr && pool->num_threads() > 1 && to_eliminate.size() > 1) {
      MPFDB_RETURN_IF_ERROR(
          pool->ParallelFor(to_eliminate.size(), score_candidate));
    } else {
      for (size_t c = 0; c < to_eliminate.size(); ++c) {
        MPFDB_RETURN_IF_ERROR(score_candidate(c));
      }
    }
    size_t pick = 0;
    double best_score = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < to_eliminate.size(); ++c) {
      if (!cliques[c].empty() && scores[c] < best_score) {
        best_score = scores[c];
        pick = c;
      }
    }
    if (cliques[pick].empty()) {
      // Variable appears in no factor (empty base table edge case): drop it.
      to_eliminate.erase(to_eliminate.begin() + pick);
      continue;
    }
    const std::string var = to_eliminate[pick];
    cache.order_.push_back(var);

    // Join the clique; the join result is cached (it precedes a GroupBy).
    const std::vector<size_t>& clique = cliques[pick];
    TablePtr joined = factors[clique[0]].table;
    for (size_t k = 1; k < clique.size(); ++k) {
      MPFDB_ASSIGN_OR_RETURN(
          joined, fr::ProductJoin(*joined, *factors[clique[k]].table,
                                  view.semiring, "tmp"));
    }
    const size_t cache_index = cache.caches_.size();
    if (ctx != nullptr) {
      MPFDB_RETURN_IF_ERROR(ctx->Poll(joined->NumRows()));
      MPFDB_RETURN_IF_ERROR(memory.Charge(
          joined->NumRows() * (joined->schema().arity() * sizeof(VarValue) +
                               sizeof(double)),
          "VeCache::Build"));
    }
    TablePtr cached(joined->Clone("cache" + std::to_string(cache_index)));
    cache.caches_.push_back(cached);
    // Record which earlier caches fed this one (Algorithm 3 line 4) and
    // which base relations it absorbed (for incremental maintenance).
    for (size_t f : clique) {
      if (factors[f].cache_origin >= 0) {
        cache.edges_.emplace_back(
            static_cast<size_t>(factors[f].cache_origin), cache_index);
      }
      if (factors[f].base_index >= 0) {
        cache.base_to_cache_[static_cast<size_t>(factors[f].base_index)] =
            cache_index;
      }
    }

    // Reduce: GroupBy on everything but `var`.
    std::vector<std::string> keep =
        varset::Difference(joined->schema().variables(), {var});
    MPFDB_ASSIGN_OR_RETURN(
        TablePtr reduced,
        fr::Marginalize(*joined, keep, view.semiring,
                        "msg" + std::to_string(cache_index)));

    // Replace the clique by the reduced factor.
    std::vector<CacheFactor> next;
    for (size_t f = 0; f < factors.size(); ++f) {
      if (std::find(clique.begin(), clique.end(), f) == clique.end()) {
        next.push_back(factors[f]);
      }
    }
    next.push_back(CacheFactor{reduced, static_cast<int>(cache_index), -1});
    factors = std::move(next);
    to_eliminate.erase(to_eliminate.begin() + pick);
  }

  // Backward pass (Algorithm 3 lines 3-7): propagate later caches' reductions
  // into the caches that fed them.
  for (size_t e = cache.edges_.size(); e-- > 0;) {
    const auto& [i, j] = cache.edges_[e];
    if (ctx != nullptr) {
      MPFDB_RETURN_IF_ERROR(ctx->Poll(cache.caches_[i]->NumRows()));
    }
    MPFDB_ASSIGN_OR_RETURN(
        cache.caches_[i],
        fr::UpdateSemijoin(*cache.caches_[i], *cache.caches_[j], view.semiring,
                           cache.caches_[i]->name()));
  }
  MPFDB_RETURN_IF_ERROR(cache.RefreshComponentTotals());
  if (options.mph_indexes) {
    cache.mph_enabled_ = true;
    cache.mph_epoch_ = options.epoch;
    cache.BuildBaseRowIndexes();
  }
  return cache;
}

void VeCache::BuildBaseRowIndexes() {
  base_row_mph_.assign(base_tables_.size(), exec::PerfectHashIndex());
  base_row_mph_built_.assign(base_tables_.size(), 0);
  std::vector<uint64_t> hashes;
  for (size_t b = 0; b < base_tables_.size(); ++b) {
    const Table& base = *base_tables_[b];
    hashes.resize(base.NumRows());
    for (size_t i = 0; i < base.NumRows(); ++i) {
      RowView row = base.Row(i);
      hashes[i] = RowVarsHash(row.vars, row.arity);
    }
    // Colliding row hashes make the key set non-distinct and the build
    // reports failure; the update path then keeps its linear scan.
    base_row_mph_built_[b] =
        exec::PerfectHashIndex::Build(hashes, mph_epoch_, &base_row_mph_[b])
            ? 1
            : 0;
  }
}

Status VeCache::RefreshComponentTotals() {
  const size_t n = caches_.size();
  cache_component_.resize(n);
  for (size_t i = 0; i < n; ++i) cache_component_[i] = i;
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (cache_component_[x] != x) {
      cache_component_[x] = cache_component_[cache_component_[x]];
      x = cache_component_[x];
    }
    return x;
  };
  for (const auto& [i, j] : edges_) {
    // A scalar message creates an edge between var-disjoint caches; such an
    // edge carries no marginal information, so it does not merge components
    // (an empty separator splits the tree into independent parts).
    if (!varset::Intersect(caches_[i]->schema().variables(),
                           caches_[j]->schema().variables())
             .empty()) {
      cache_component_[find(i)] = find(j);
    }
  }
  component_totals_.clear();
  for (size_t i = 0; i < n; ++i) {
    size_t root = find(i);
    if (component_totals_.count(root)) continue;
    // Every calibrated cache carries its component's total mass.
    MPFDB_ASSIGN_OR_RETURN(TablePtr scalar,
                           fr::Marginalize(*caches_[i], {}, semiring_, "total"));
    component_totals_[root] = scalar->NumRows() > 0
                                  ? scalar->measure(0)
                                  : semiring_.AddIdentity();
  }
  for (size_t i = 0; i < n; ++i) cache_component_[i] = find(i);
  return Status::Ok();
}

StatusOr<TablePtr> VeCache::Answer(const MpfQuerySpec& query) const {
  const VeCache* source = this;
  VeCache restricted(semiring_);
  if (!query.selections.empty()) {
    MPFDB_ASSIGN_OR_RETURN(restricted,
                           WithSelection(query.selections[0].var,
                                         query.selections[0].value));
    for (size_t s = 1; s < query.selections.size(); ++s) {
      MPFDB_ASSIGN_OR_RETURN(restricted,
                             restricted.WithSelection(query.selections[s].var,
                                                      query.selections[s].value));
    }
    source = &restricted;
  }
  MPFDB_ASSIGN_OR_RETURN(TablePtr combined,
                         source->CombineForVars(query.group_vars));
  MPFDB_ASSIGN_OR_RETURN(
      TablePtr answer,
      fr::Marginalize(*combined, query.group_vars, semiring_, "answer"));
  if (query.having.has_value()) {
    return fr::FilterMeasure(*answer, *query.having, "answer");
  }
  return answer;
}

StatusOr<TablePtr> VeCache::CombineForVars(
    const std::vector<std::string>& needed_vars) const {
  // Pick, for each needed variable, the smallest cache containing it.
  std::vector<size_t> anchors;
  for (const auto& var : needed_vars) {
    size_t best = caches_.size();
    for (size_t i = 0; i < caches_.size(); ++i) {
      if (!caches_[i]->schema().HasVariable(var)) continue;
      if (best == caches_.size() ||
          caches_[i]->NumRows() < caches_[best]->NumRows()) {
        best = i;
      }
    }
    if (best == caches_.size()) {
      return Status::NotFound("no cached table contains variable '" + var +
                              "'");
    }
    if (std::find(anchors.begin(), anchors.end(), best) == anchors.end()) {
      anchors.push_back(best);
    }
  }
  // Adjacency of the cache tree.
  std::vector<std::vector<size_t>> adjacency(caches_.size());
  for (const auto& [i, j] : edges_) {
    adjacency[i].push_back(j);
    adjacency[j].push_back(i);
  }

  // One combined relation per component that holds anchors: join the minimal
  // subtree spanning the component's anchors, dividing out each tree edge's
  // separator marginal (valid because the tree is calibrated: a separator's
  // marginal is identical on both sides).
  std::vector<bool> anchor_done(caches_.size(), false);
  TablePtr result;
  std::set<size_t> covered_components;
  for (size_t a : anchors) {
    if (anchor_done[a]) continue;
    // Anchors in the same component as `a`.
    std::vector<size_t> same_component;
    for (size_t b : anchors) {
      if (cache_component_[b] == cache_component_[a]) {
        same_component.push_back(b);
        anchor_done[b] = true;
      }
    }
    covered_components.insert(cache_component_[a]);
    // BFS from `a`; keep parent pointers to extract paths.
    std::vector<int> parent(caches_.size(), -1);
    parent[a] = static_cast<int>(a);
    std::vector<size_t> queue = {a};
    for (size_t qi = 0; qi < queue.size(); ++qi) {
      for (size_t nbr : adjacency[queue[qi]]) {
        if (parent[nbr] == -1) {
          parent[nbr] = static_cast<int>(queue[qi]);
          queue.push_back(nbr);
        }
      }
    }
    // The Steiner subtree: union of path nodes from each anchor to `a`.
    std::set<size_t> subtree = {a};
    for (size_t b : same_component) {
      for (size_t node = b; node != a;
           node = static_cast<size_t>(parent[node])) {
        subtree.insert(node);
      }
    }
    // Combine the subtree in BFS order: each node beyond the first joins as
    // (table ÷ its separator marginal with its subtree parent).
    TablePtr component_result = caches_[a];
    for (size_t node : queue) {
      if (node == a || subtree.count(node) == 0) continue;
      size_t up = static_cast<size_t>(parent[node]);
      std::vector<std::string> separator =
          varset::Intersect(caches_[node]->schema().variables(),
                            caches_[up]->schema().variables());
      TablePtr attachment = caches_[node];
      if (!separator.empty()) {
        MPFDB_ASSIGN_OR_RETURN(
            TablePtr sep_marginal,
            fr::Marginalize(*caches_[node], separator, semiring_, "sep"));
        MPFDB_ASSIGN_OR_RETURN(attachment,
                               fr::DivisionJoin(*caches_[node], *sep_marginal,
                                                semiring_, "att"));
      }
      MPFDB_ASSIGN_OR_RETURN(component_result,
                             fr::ProductJoin(*component_result, *attachment,
                                             semiring_, "combined"));
    }
    if (result == nullptr) {
      result = component_result;
    } else {
      // Var-disjoint components: cross product.
      MPFDB_ASSIGN_OR_RETURN(result, fr::ProductJoin(*result, *component_result,
                                                     semiring_, "combined"));
    }
  }
  if (result == nullptr) {
    return Status::InvalidArgument("no variables requested");
  }
  // Totals of components not represented at all.
  double factor = semiring_.MultiplyIdentity();
  for (const auto& [root, total] : component_totals_) {
    if (covered_components.count(root) == 0) {
      factor = semiring_.Multiply(factor, total);
    }
  }
  if (factor != semiring_.MultiplyIdentity()) {
    TablePtr scaled(result->Clone(result->name()));
    for (size_t r = 0; r < scaled->NumRows(); ++r) {
      scaled->set_measure(r, semiring_.Multiply(scaled->measure(r), factor));
    }
    result = scaled;
  }
  return result;
}

StatusOr<VeCache> VeCache::WithSelection(const std::string& var,
                                         VarValue value) const {
  // Locate a cache containing the variable.
  size_t start = caches_.size();
  for (size_t i = 0; i < caches_.size(); ++i) {
    if (caches_[i]->schema().HasVariable(var)) {
      start = i;
      break;
    }
  }
  if (start == caches_.size()) {
    return Status::NotFound("no cached table contains variable '" + var + "'");
  }
  VeCache updated(semiring_);
  updated.edges_ = edges_;
  updated.order_ = order_;
  updated.base_tables_ = base_tables_;
  updated.base_to_cache_ = base_to_cache_;
  updated.mph_enabled_ = mph_enabled_;
  updated.mph_epoch_ = mph_epoch_;
  updated.base_row_mph_ = base_row_mph_;
  updated.base_row_mph_built_ = base_row_mph_built_;
  updated.caches_.reserve(caches_.size());
  for (const TablePtr& t : caches_) {
    updated.caches_.push_back(TablePtr(t->Clone(t->name())));
  }
  // Apply the selection (protocol step 1), then propagate (step 2).
  MPFDB_ASSIGN_OR_RETURN(
      updated.caches_[start],
      fr::Select(*updated.caches_[start], var, value,
                 updated.caches_[start]->name()));
  MPFDB_RETURN_IF_ERROR(updated.DistributeFrom(start));
  return updated;
}

Status VeCache::DistributeFrom(size_t start) {
  // BFS outward over the cache tree, reducing each table with respect to its
  // already-updated neighbor (a BP semijoin program over the acyclic cache
  // schema — Theorems 5 and 10).
  std::vector<std::vector<size_t>> adjacency(caches_.size());
  for (const auto& [i, j] : edges_) {
    adjacency[i].push_back(j);
    adjacency[j].push_back(i);
  }
  std::vector<bool> visited(caches_.size(), false);
  visited[start] = true;
  std::vector<size_t> queue = {start};
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    size_t u = queue[qi];
    for (size_t w : adjacency[u]) {
      if (visited[w]) continue;
      visited[w] = true;
      if (!varset::Intersect(caches_[w]->schema().variables(),
                             caches_[u]->schema().variables())
               .empty()) {
        MPFDB_ASSIGN_OR_RETURN(
            caches_[w], fr::UpdateSemijoin(*caches_[w], *caches_[u], semiring_,
                                           caches_[w]->name()));
      }
      queue.push_back(w);
    }
  }
  return RefreshComponentTotals();
}

Status VeCache::ApplyBaseMeasureUpdate(const std::string& table_name,
                                       const std::vector<VarValue>& row_vars,
                                       double new_measure) {
  // Locate the base table and the cache that absorbed it.
  size_t base_index = base_tables_.size();
  for (size_t b = 0; b < base_tables_.size(); ++b) {
    if (base_tables_[b]->name() == table_name) {
      base_index = b;
      break;
    }
  }
  if (base_index == base_tables_.size()) {
    return Status::NotFound("'" + table_name + "' is not a base table of this "
                            "cache's view");
  }
  Table& base = *base_tables_[base_index];
  if (row_vars.size() != base.schema().arity()) {
    return Status::InvalidArgument(
        "row must provide all " + std::to_string(base.schema().arity()) +
        " variable values of " + table_name);
  }
  size_t row_index = base.NumRows();
  // Fast path: one MPH probe plus a verifying row compare. A miss (stale
  // epoch, failed build, or absent row) falls through to the linear scan,
  // which remains the semantic ground truth.
  if (mph_enabled_ && base_index < base_row_mph_built_.size() &&
      base_row_mph_built_[base_index] != 0) {
    const uint64_t h = RowVarsHash(row_vars.data(), row_vars.size());
    const size_t pos = base_row_mph_[base_index].Lookup(h, mph_epoch_);
    if (pos != exec::PerfectHashIndex::kNotFound) {
      RowView row = base.Row(pos);
      if (std::equal(row.vars, row.vars + row.arity, row_vars.begin())) {
        row_index = pos;
      }
    }
  }
  if (row_index == base.NumRows()) {
    for (size_t i = 0; i < base.NumRows(); ++i) {
      RowView row = base.Row(i);
      if (std::equal(row.vars, row.vars + row.arity, row_vars.begin())) {
        row_index = i;
        break;
      }
    }
  }
  if (row_index == base.NumRows()) {
    return Status::NotFound("no row of " + table_name +
                            " matches the given variable values");
  }
  const double old_measure = base.measure(row_index);
  if (old_measure == new_measure) return Status::Ok();
  // A zero old measure has no multiplicative inverse in the sum-product
  // semiring: the cache rows carry no trace of the row to rescale.
  if (!semiring_.HasDivision() ||
      ((semiring_.kind() == SemiringKind::kSumProduct ||
        semiring_.kind() == SemiringKind::kMaxProduct) &&
       old_measure == 0.0)) {
    return Status::FailedPrecondition(
        "cannot incrementally rescale from measure " +
        std::to_string(old_measure) + "; rebuild the cache");
  }
  base.set_measure(row_index, new_measure);

  // Rescale the owning cache's rows whose variables extend the base row.
  const size_t cache_index = base_to_cache_[base_index];
  Table& cache = *caches_[cache_index];
  std::vector<size_t> var_map;  // base column -> cache column
  for (const auto& var : base.schema().variables()) {
    auto idx = cache.schema().IndexOf(var);
    if (!idx) {
      return Status::Internal("cache " + cache.name() +
                              " lost variable '" + var + "'");
    }
    var_map.push_back(*idx);
  }
  const double ratio = semiring_.Divide(new_measure, old_measure);
  for (size_t i = 0; i < cache.NumRows(); ++i) {
    RowView row = cache.Row(i);
    bool match = true;
    for (size_t c = 0; c < var_map.size(); ++c) {
      if (row.var(var_map[c]) != row_vars[c]) {
        match = false;
        break;
      }
    }
    if (match) {
      cache.set_measure(i, semiring_.Multiply(row.measure, ratio));
    }
  }
  // Re-calibrate the rest of the tree.
  return DistributeFrom(cache_index);
}

VeCache VeCache::CloneDeep() const {
  VeCache copy(semiring_);
  copy.edges_ = edges_;
  copy.order_ = order_;
  copy.base_to_cache_ = base_to_cache_;
  copy.cache_component_ = cache_component_;
  copy.component_totals_ = component_totals_;
  // Row variables never change under measure updates, so the clone shares
  // copies of the MPH locators rather than rebuilding them.
  copy.mph_enabled_ = mph_enabled_;
  copy.mph_epoch_ = mph_epoch_;
  copy.base_row_mph_ = base_row_mph_;
  copy.base_row_mph_built_ = base_row_mph_built_;
  copy.caches_.reserve(caches_.size());
  for (const TablePtr& t : caches_) {
    copy.caches_.push_back(TablePtr(t->Clone(t->name())));
  }
  copy.base_tables_.reserve(base_tables_.size());
  for (const TablePtr& t : base_tables_) {
    copy.base_tables_.push_back(TablePtr(t->Clone(t->name())));
  }
  return copy;
}

int64_t VeCache::TotalCacheRows() const {
  int64_t total = 0;
  for (const TablePtr& t : caches_) {
    total += static_cast<int64_t>(t->NumRows());
  }
  return total;
}

}  // namespace mpfdb::workload
