#include "workload/bp.h"

#include <algorithm>
#include <functional>
#include <map>

#include "fr/algebra.h"
#include "storage/catalog.h"

namespace mpfdb::workload {
namespace {

// DFS postorder of the join tree rooted at node 0; fills parent[].
void Postorder(const graph::JoinTree& tree, std::vector<size_t>* order,
               std::vector<int>* parent) {
  const size_t n = tree.node_vars.size();
  parent->assign(n, -1);
  order->clear();
  if (n == 0) return;
  std::vector<std::vector<size_t>> adj(n);
  for (const auto& [a, b] : tree.edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  std::vector<size_t> stack = {0};
  std::vector<size_t> preorder;
  std::vector<bool> seen(n, false);
  seen[0] = true;
  (*parent)[0] = 0;
  while (!stack.empty()) {
    size_t v = stack.back();
    stack.pop_back();
    preorder.push_back(v);
    for (size_t nbr : adj[v]) {
      if (!seen[nbr]) {
        seen[nbr] = true;
        (*parent)[nbr] = static_cast<int>(v);
        stack.push_back(nbr);
      }
    }
  }
  // Reverse preorder is a valid postorder for message passing (children
  // before parents is not strictly guaranteed by reversing a DFS preorder,
  // but every child does appear after its parent in preorder, so the
  // reverse puts children first).
  *order = std::vector<size_t>(preorder.rbegin(), preorder.rend());
}

// Runs the two BP passes over `tables` along the edges of `tree` (whose
// node i corresponds to tables[i]). Message separators are computed from the
// actual table schemas; edges whose tables share no variables carry no
// message.
StatusOr<std::vector<TablePtr>> BpOnTree(const std::vector<TablePtr>& tables,
                                         const graph::JoinTree& tree,
                                         const Semiring& semiring) {
  std::vector<TablePtr> updated;
  updated.reserve(tables.size());
  for (const TablePtr& t : tables) {
    updated.push_back(TablePtr(t->Clone(t->name())));
  }
  std::vector<size_t> order;
  std::vector<int> parent;
  Postorder(tree, &order, &parent);

  auto tables_share_vars = [&](size_t a, size_t b) {
    return !varset::Intersect(updated[a]->schema().variables(),
                              updated[b]->schema().variables())
                .empty();
  };

  // Forward (collect) pass: parents absorb their children, children first.
  for (size_t v : order) {
    size_t p = static_cast<size_t>(parent[v]);
    if (p == v) continue;  // root
    if (!tables_share_vars(p, v)) continue;
    MPFDB_ASSIGN_OR_RETURN(
        updated[p], fr::ProductSemijoin(*updated[p], *updated[v], semiring,
                                        updated[p]->name()));
  }
  // Backward (distribute) pass: parents update their children, parents first.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    size_t v = *it;
    size_t p = static_cast<size_t>(parent[v]);
    if (p == v) continue;
    if (!tables_share_vars(p, v)) continue;
    MPFDB_ASSIGN_OR_RETURN(
        updated[v], fr::UpdateSemijoin(*updated[v], *updated[p], semiring,
                                       updated[v]->name()));
  }

  // Messages only flow where variables are shared, so a var-disjoint
  // component never absorbs another component's total mass — but the full
  // joint is the cross product of components, and Definition 5's invariant
  // is about the full joint. Scale every table by the product of the *other*
  // components' scalar totals.
  const size_t n = updated.size();
  std::vector<size_t> component(n);
  for (size_t i = 0; i < n; ++i) component[i] = i;
  // Union-find over edges that actually carry messages.
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (component[x] != x) {
      component[x] = component[component[x]];
      x = component[x];
    }
    return x;
  };
  for (const auto& [a, b] : tree.edges) {
    if (tables_share_vars(a, b)) component[find(a)] = find(b);
  }
  std::map<size_t, double> totals;  // component root -> scalar total
  for (size_t i = 0; i < n; ++i) {
    size_t root = find(i);
    if (totals.count(root)) continue;
    // Every table in a calibrated component carries the component's total.
    MPFDB_ASSIGN_OR_RETURN(
        TablePtr scalar, fr::Marginalize(*updated[i], {}, semiring, "total"));
    totals[root] = scalar->NumRows() > 0 ? scalar->measure(0)
                                         : semiring.AddIdentity();
  }
  if (totals.size() > 1) {
    for (size_t i = 0; i < n; ++i) {
      double factor = semiring.MultiplyIdentity();
      for (const auto& [root, total] : totals) {
        if (root != find(i)) factor = semiring.Multiply(factor, total);
      }
      for (size_t r = 0; r < updated[i]->NumRows(); ++r) {
        updated[i]->set_measure(
            r, semiring.Multiply(updated[i]->measure(r), factor));
      }
    }
  }
  return updated;
}

}  // namespace

StatusOr<std::vector<TablePtr>> BeliefPropagation(
    const std::vector<TablePtr>& tables, const Semiring& semiring) {
  if (tables.empty()) return Status::InvalidArgument("no tables");
  if (!semiring.HasDivision()) {
    return Status::FailedPrecondition(
        "Belief Propagation requires a semiring with division (the update "
        "semijoin divides out previously propagated values)");
  }
  std::vector<std::vector<std::string>> relation_vars;
  for (const TablePtr& t : tables) {
    relation_vars.push_back(t->schema().variables());
  }
  if (!graph::IsAcyclicSchema(relation_vars)) {
    return Status::FailedPrecondition(
        "Belief Propagation requires an acyclic schema; apply the Junction "
        "Tree algorithm first (JunctionTreeBp)");
  }

  // Message passing follows the join tree's edges only — reducing
  // non-adjacent tables that share variables would double-count (the running
  // intersection property makes tree edges sufficient).
  graph::JoinTree tree = graph::MaxSpanningJoinTree(relation_vars);
  if (!SatisfiesRunningIntersection(tree)) {
    return Status::Internal("acyclic schema without RIP join tree");
  }
  return BpOnTree(tables, tree, semiring);
}

StatusOr<JunctionTreeBpResult> JunctionTreeBp(
    const std::vector<TablePtr>& tables, const Semiring& semiring,
    const Catalog& catalog) {
  if (tables.empty()) return Status::InvalidArgument("no tables");
  std::vector<std::vector<std::string>> relation_vars;
  for (const TablePtr& t : tables) {
    relation_vars.push_back(t->schema().variables());
  }
  JunctionTreeBpResult result;
  MPFDB_ASSIGN_OR_RETURN(result.junction_tree,
                         graph::BuildJunctionTree(relation_vars));
  const graph::JoinTree& tree = result.junction_tree.tree;

  // Materialize one table per clique: the product join of all assigned
  // relations, or a unit-measure complete relation when nothing is assigned
  // (needed to carry messages through connector cliques).
  const size_t num_cliques = tree.node_vars.size();
  std::vector<TablePtr> clique_tables(num_cliques);
  for (size_t r = 0; r < tables.size(); ++r) {
    size_t c = result.junction_tree.assignment[r];
    if (clique_tables[c] == nullptr) {
      clique_tables[c] = TablePtr(
          tables[r]->Clone("clique" + std::to_string(c)));
    } else {
      MPFDB_ASSIGN_OR_RETURN(
          clique_tables[c],
          fr::ProductJoin(*clique_tables[c], *tables[r], semiring,
                          "clique" + std::to_string(c)));
    }
  }
  for (size_t c = 0; c < num_cliques; ++c) {
    if (clique_tables[c] != nullptr) continue;
    // Unit potential over the clique's variables.
    const std::vector<std::string>& vars = tree.node_vars[c];
    double domain_product = 1.0;
    for (const auto& v : vars) {
      MPFDB_ASSIGN_OR_RETURN(int64_t size, catalog.DomainSize(v));
      domain_product *= static_cast<double>(size);
    }
    if (domain_product > 1e7) {
      return Status::FailedPrecondition(
          "unit clique potential over " + std::to_string(vars.size()) +
          " variables would need " + std::to_string(domain_product) +
          " rows; choose a better elimination order");
    }
    auto unit = std::make_shared<Table>("clique" + std::to_string(c),
                                        Schema(vars, "f"));
    std::vector<VarValue> row(vars.size(), 0);
    std::vector<int64_t> domains;
    for (const auto& v : vars) domains.push_back(*catalog.DomainSize(v));
    while (true) {
      unit->AppendRow(row, semiring.MultiplyIdentity());
      size_t pos = 0;
      while (pos < row.size()) {
        if (++row[pos] < domains[pos]) break;
        row[pos] = 0;
        ++pos;
      }
      if (row.empty() || pos == row.size()) break;
    }
    clique_tables[c] = std::move(unit);
  }
  if (!semiring.HasDivision()) {
    return Status::FailedPrecondition(
        "Belief Propagation requires a semiring with division");
  }
  // A clique table built from assigned relations may span fewer variables
  // than its clique label; if an incident separator variable is missing,
  // messages over that variable cannot pass through. Unit-extend each table
  // to cover all separators of its incident tree edges (the HUGIN
  // construction): adding an unconstrained column with identity measure
  // leaves the factorized joint unchanged.
  std::vector<std::vector<std::string>> needed(num_cliques);
  for (size_t c = 0; c < num_cliques; ++c) {
    needed[c] = clique_tables[c]->schema().variables();
  }
  for (const auto& [a, b] : tree.edges) {
    std::vector<std::string> separator =
        varset::Intersect(tree.node_vars[a], tree.node_vars[b]);
    needed[a] = varset::Union(needed[a], separator);
    needed[b] = varset::Union(needed[b], separator);
  }
  for (size_t c = 0; c < num_cliques; ++c) {
    std::vector<std::string> missing = varset::Difference(
        needed[c], clique_tables[c]->schema().variables());
    if (missing.empty()) continue;
    double extension = 1.0;
    std::vector<int64_t> domains;
    for (const auto& v : missing) {
      MPFDB_ASSIGN_OR_RETURN(int64_t size, catalog.DomainSize(v));
      domains.push_back(size);
      extension *= static_cast<double>(size);
    }
    if (extension * static_cast<double>(clique_tables[c]->NumRows()) > 5e6) {
      return Status::FailedPrecondition(
          "separator extension of clique " + std::to_string(c) +
          " is too large; choose a better elimination order");
    }
    auto unit = std::make_shared<Table>("sep_ext", Schema(missing, "f"));
    std::vector<VarValue> row(missing.size(), 0);
    while (true) {
      unit->AppendRow(row, semiring.MultiplyIdentity());
      size_t pos = 0;
      while (pos < row.size()) {
        if (++row[pos] < domains[pos]) break;
        row[pos] = 0;
        ++pos;
      }
      if (pos == row.size()) break;
    }
    MPFDB_ASSIGN_OR_RETURN(
        clique_tables[c],
        fr::ProductJoin(*clique_tables[c], *unit, semiring,
                        clique_tables[c]->name()));
  }
  MPFDB_ASSIGN_OR_RETURN(result.clique_tables,
                         BpOnTree(clique_tables, tree, semiring));
  return result;
}

}  // namespace mpfdb::workload
