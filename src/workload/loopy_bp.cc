#include "workload/loopy_bp.h"

#include <algorithm>
#include <cmath>

#include "storage/schema.h"

namespace mpfdb::workload {
namespace {

// Normalizes a message to sum 1; all-zero messages become uniform so a
// transiently zero message cannot poison the whole iteration.
void Normalize(std::vector<double>& message) {
  double total = 0;
  for (double x : message) total += x;
  if (total <= 0) {
    std::fill(message.begin(), message.end(),
              1.0 / static_cast<double>(message.size()));
    return;
  }
  for (double& x : message) x /= total;
}

}  // namespace

StatusOr<LoopyBpResult> LoopyBeliefPropagation(
    const std::vector<TablePtr>& tables, const Catalog& catalog,
    const LoopyBpOptions& options) {
  if (tables.empty()) return Status::InvalidArgument("no tables");
  if (options.damping < 0 || options.damping >= 1) {
    return Status::InvalidArgument("damping must be in [0, 1)");
  }

  // Collect the variables and their domains.
  std::vector<std::string> vars;
  std::map<std::string, int64_t> domain;
  for (const TablePtr& t : tables) {
    for (const auto& v : t->schema().variables()) {
      if (!domain.count(v)) {
        MPFDB_ASSIGN_OR_RETURN(int64_t size, catalog.DomainSize(v));
        domain[v] = size;
        vars.push_back(v);
      }
    }
  }

  // Message storage: per (factor index, variable), both directions.
  using Key = std::pair<size_t, std::string>;
  std::map<Key, std::vector<double>> to_var;    // factor -> variable
  std::map<Key, std::vector<double>> to_factor;  // variable -> factor
  for (size_t f = 0; f < tables.size(); ++f) {
    for (const auto& v : tables[f]->schema().variables()) {
      to_var[{f, v}].assign(static_cast<size_t>(domain[v]),
                            1.0 / static_cast<double>(domain[v]));
      to_factor[{f, v}].assign(static_cast<size_t>(domain[v]), 1.0);
    }
  }

  LoopyBpResult result;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Variable -> factor messages: product of the other factors' messages.
    for (auto& [key, message] : to_factor) {
      const auto& [factor, var] = key;
      std::fill(message.begin(), message.end(), 1.0);
      for (size_t other = 0; other < tables.size(); ++other) {
        if (other == factor) continue;
        auto it = to_var.find({other, var});
        if (it == to_var.end()) continue;
        for (size_t x = 0; x < message.size(); ++x) {
          message[x] *= it->second[x];
        }
      }
      Normalize(message);
    }

    // Factor -> variable messages: marginalize the factor times the incoming
    // messages of its other variables.
    double max_change = 0;
    for (auto& [key, message] : to_var) {
      const auto& [factor, var] = key;
      const Table& table = *tables[factor];
      const Schema& schema = table.schema();
      size_t var_index = *schema.IndexOf(var);
      std::vector<double> update(message.size(), 0.0);
      for (size_t r = 0; r < table.NumRows(); ++r) {
        RowView row = table.Row(r);
        double value = row.measure;
        for (size_t c = 0; c < schema.arity(); ++c) {
          if (c == var_index) continue;
          value *= to_factor[{factor, schema.variables()[c]}]
                            [static_cast<size_t>(row.var(c))];
        }
        update[static_cast<size_t>(row.var(var_index))] += value;
      }
      Normalize(update);
      for (size_t x = 0; x < message.size(); ++x) {
        double blended = (1.0 - options.damping) * update[x] +
                         options.damping * message[x];
        max_change = std::max(max_change, std::fabs(blended - message[x]));
        message[x] = blended;
      }
    }
    result.iterations = iter + 1;
    if (max_change < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  // Beliefs: product of all incoming factor messages per variable.
  for (const auto& v : vars) {
    std::vector<double> belief(static_cast<size_t>(domain[v]), 1.0);
    for (size_t f = 0; f < tables.size(); ++f) {
      auto it = to_var.find({f, v});
      if (it == to_var.end()) continue;
      for (size_t x = 0; x < belief.size(); ++x) belief[x] *= it->second[x];
    }
    Normalize(belief);
    auto marginal = std::make_shared<Table>("lbp_" + v, Schema({v}, "p"));
    for (size_t x = 0; x < belief.size(); ++x) {
      marginal->AppendRow({static_cast<VarValue>(x)}, belief[x]);
    }
    result.marginals[v] = std::move(marginal);
  }
  return result;
}

}  // namespace mpfdb::workload
