#ifndef MPFDB_WORKLOAD_GENERATORS_H_
#define MPFDB_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "plan/plan.h"
#include "storage/catalog.h"
#include "util/rng.h"
#include "util/status.h"

namespace mpfdb::workload {

// Parameters of the supply-chain decision-support schema of Figure 1, at the
// Table 1 cardinalities when scale = 1. Scale shrinks (or grows) every
// domain and cardinality proportionally; ctdeals_density controls what
// fraction of the contractor x transporter cross product holds a deal
// (1.0 at Table 1's 500K rows, the knob swept by the Figure 7 experiment).
struct SupplyChainParams {
  double scale = 1.0;
  double ctdeals_density = 1.0;
  // Extra multiplier on location's cardinality only. Scaling the whole
  // schema down shrinks ctdeals quadratically (both its domains shrink), so
  // experiments that need ctdeals to stay dominant relative to location —
  // the regime of Table 1, where ctdeals is 500K vs location's 1M — shrink
  // location with this knob instead.
  double location_factor = 1.0;
  uint64_t seed = 12345;

  // Derived domain sizes.
  int64_t num_parts() const { return Scaled(100000); }
  int64_t num_suppliers() const { return Scaled(10000); }
  int64_t num_warehouses() const { return Scaled(5000); }
  int64_t num_contractors() const { return Scaled(1000); }
  int64_t num_transporters() const { return Scaled(500); }

  // Derived table cardinalities.
  int64_t contracts_rows() const { return Scaled(100000); }
  int64_t warehouses_rows() const { return num_warehouses(); }
  int64_t transporters_rows() const { return num_transporters(); }
  int64_t location_rows() const {
    int64_t v = static_cast<int64_t>(static_cast<double>(Scaled(1000000)) *
                                     location_factor);
    return v < 1 ? 1 : v;
  }
  int64_t ctdeals_rows() const {
    return static_cast<int64_t>(ctdeals_density *
                               static_cast<double>(num_contractors()) *
                               static_cast<double>(num_transporters()));
  }

 private:
  int64_t Scaled(int64_t base) const {
    int64_t v = static_cast<int64_t>(static_cast<double>(base) * scale);
    return v < 1 ? 1 : v;
  }
};

// The generated schema: five functional relations registered in the catalog
// (contracts, warehouses, transporters, location, ctdeals; measure attributes
// price, w_overhead, t_overhead, quantity, ct_discount respectively) plus the
// `invest` MPF view over their product join. Variables: pid, sid, wid, cid,
// tid. Primary keys are declared per Figure 1's entity structure.
struct SupplyChainSchema {
  MpfViewDef view;
  SupplyChainParams params;
};

// Generates the schema into `catalog` (which must not already contain the
// tables). Table name collisions can be avoided with `prefix`.
StatusOr<SupplyChainSchema> GenerateSupplyChain(const SupplyChainParams& params,
                                                Catalog& catalog,
                                                const std::string& prefix = "");

// Adds the `stdeals(sid, tid; st_discount)` relation of the appendix, which
// makes the schema cyclic (Figures 12-15). Returns the extended view.
StatusOr<MpfViewDef> AddStdeals(const SupplyChainSchema& schema,
                                Catalog& catalog, double density,
                                const std::string& prefix = "");

// --- Synthetic schemas of Section 7.3 ---------------------------------------

enum class SyntheticKind {
  // Figure 6: a chain of tables t_i(v_{i-1}, v_i) that all additionally share
  // one common variable c.
  kStar,
  // The same chain with the common variable removed.
  kLinear,
  // Several common variables, each shared by three consecutive chain tables.
  kMultistar,
};

std::string SyntheticKindName(SyntheticKind kind);

struct SyntheticParams {
  SyntheticKind kind = SyntheticKind::kLinear;
  int num_tables = 5;
  int64_t domain_size = 10;  // every variable, as in the paper
  uint64_t seed = 777;
};

struct SyntheticSchema {
  MpfViewDef view;
  // The chain variables v0..vN ("the linear section").
  std::vector<std::string> linear_vars;
  // The common variable(s): one for kStar, several for kMultistar, none for
  // kLinear.
  std::vector<std::string> common_vars;
};

// Generates complete functional relations (every row of the domain cross
// product present, uniform random measures) into `catalog`.
StatusOr<SyntheticSchema> GenerateSynthetic(const SyntheticParams& params,
                                            Catalog& catalog,
                                            const std::string& prefix = "");

// --- Cyclic workloads (FAQ / worst-case-optimal join targets) ---------------
//
// The schemas below have join hypergraphs with a nontrivial cyclic core, the
// regime where pairwise independence estimates misprice intermediates and
// the FAQ planner's multiway join pays off. All of them are MPF encodings:
// each relation is a functional relation (rows carry a measure), and the
// query marginalizes the product under the view's semiring.

// A length-k cycle of pair relations e0(x0, x1), e1(x1, x2), ...,
// e{k-1}(x{k-1}, x0); k = 3 is the triangle query. `density` is the fraction
// of each pair domain populated (sampled without replacement).
// `hub_fraction` skews that fraction of each relation's rows onto a single
// hub value (half pinned on each side). Hubs are the canonical worst case
// for pairwise joins — the intermediate blows up quadratically in the hub
// degree while the cycle output stays near-linear — i.e. the regime where a
// worst-case-optimal multiway join beats any pairwise plan.
struct CycleParams {
  int num_vars = 3;
  int64_t domain_size = 50;
  double density = 0.2;
  double hub_fraction = 0.0;
  uint64_t seed = 4242;
};

struct CycleSchema {
  MpfViewDef view;
  // The cycle variables x0..x{k-1}.
  std::vector<std::string> vars;
};

StatusOr<CycleSchema> GenerateCycle(const CycleParams& params, Catalog& catalog,
                                    const std::string& prefix = "");

// A rows x cols grid graphical model: one variable per cell (named
// "g<r>_<c>" — deliberately multi-character, exercising EXPLAIN's quoting of
// ambiguous names) and one complete pairwise potential per grid edge
// (horizontal and vertical neighbors). Every interior face of the grid is a
// 4-cycle, so GYO reduction leaves the whole grid as the cyclic core.
struct GridParams {
  int rows = 3;
  int cols = 3;
  int64_t domain_size = 4;
  uint64_t seed = 9001;
};

struct GridSchema {
  MpfViewDef view;
  // Cell variables in row-major order.
  std::vector<std::string> vars;
};

StatusOr<GridSchema> GenerateGrid(const GridParams& params, Catalog& catalog,
                                  const std::string& prefix = "");

// Matrix-chain multiplication as an MPF query (Section 2's motivating
// example): matrix i becomes the complete relation m<i>(d<i>, d<i+1>) whose
// measure holds the entry, and marginalizing everything but {d0, dN} under
// sum-product computes the chain product. dims[i] x dims[i+1] is matrix i's
// shape, so dims needs num_matrices + 1 entries.
struct MatrixChainParams {
  std::vector<int64_t> dims = {8, 4, 6, 8};
  uint64_t seed = 31337;
};

struct MatrixChainSchema {
  MpfViewDef view;
  // Dimension variables d0..dN.
  std::vector<std::string> vars;
};

StatusOr<MatrixChainSchema> GenerateMatrixChain(const MatrixChainParams& params,
                                                Catalog& catalog,
                                                const std::string& prefix = "");

// Bounded-length graph reachability under the bool-or-and semiring: one
// random edge set is instantiated `path_len` times as hop<i>(n<i>, n<i+1>)
// with measure 1.0, so marginalizing the inner variables answers "is there a
// walk of exactly path_len edges from n0 to n<path_len>".
struct ReachabilityParams {
  int num_nodes = 64;
  double edge_density = 0.1;
  int path_len = 3;
  uint64_t seed = 2718;
};

struct ReachabilitySchema {
  MpfViewDef view;
  // Hop variables n0..n{path_len}.
  std::vector<std::string> vars;
};

StatusOr<ReachabilitySchema> GenerateReachability(
    const ReachabilityParams& params, Catalog& catalog,
    const std::string& prefix = "");

}  // namespace mpfdb::workload

#endif  // MPFDB_WORKLOAD_GENERATORS_H_
