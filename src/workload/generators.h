#ifndef MPFDB_WORKLOAD_GENERATORS_H_
#define MPFDB_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "plan/plan.h"
#include "storage/catalog.h"
#include "util/rng.h"
#include "util/status.h"

namespace mpfdb::workload {

// Parameters of the supply-chain decision-support schema of Figure 1, at the
// Table 1 cardinalities when scale = 1. Scale shrinks (or grows) every
// domain and cardinality proportionally; ctdeals_density controls what
// fraction of the contractor x transporter cross product holds a deal
// (1.0 at Table 1's 500K rows, the knob swept by the Figure 7 experiment).
struct SupplyChainParams {
  double scale = 1.0;
  double ctdeals_density = 1.0;
  // Extra multiplier on location's cardinality only. Scaling the whole
  // schema down shrinks ctdeals quadratically (both its domains shrink), so
  // experiments that need ctdeals to stay dominant relative to location —
  // the regime of Table 1, where ctdeals is 500K vs location's 1M — shrink
  // location with this knob instead.
  double location_factor = 1.0;
  uint64_t seed = 12345;

  // Derived domain sizes.
  int64_t num_parts() const { return Scaled(100000); }
  int64_t num_suppliers() const { return Scaled(10000); }
  int64_t num_warehouses() const { return Scaled(5000); }
  int64_t num_contractors() const { return Scaled(1000); }
  int64_t num_transporters() const { return Scaled(500); }

  // Derived table cardinalities.
  int64_t contracts_rows() const { return Scaled(100000); }
  int64_t warehouses_rows() const { return num_warehouses(); }
  int64_t transporters_rows() const { return num_transporters(); }
  int64_t location_rows() const {
    int64_t v = static_cast<int64_t>(static_cast<double>(Scaled(1000000)) *
                                     location_factor);
    return v < 1 ? 1 : v;
  }
  int64_t ctdeals_rows() const {
    return static_cast<int64_t>(ctdeals_density *
                               static_cast<double>(num_contractors()) *
                               static_cast<double>(num_transporters()));
  }

 private:
  int64_t Scaled(int64_t base) const {
    int64_t v = static_cast<int64_t>(static_cast<double>(base) * scale);
    return v < 1 ? 1 : v;
  }
};

// The generated schema: five functional relations registered in the catalog
// (contracts, warehouses, transporters, location, ctdeals; measure attributes
// price, w_overhead, t_overhead, quantity, ct_discount respectively) plus the
// `invest` MPF view over their product join. Variables: pid, sid, wid, cid,
// tid. Primary keys are declared per Figure 1's entity structure.
struct SupplyChainSchema {
  MpfViewDef view;
  SupplyChainParams params;
};

// Generates the schema into `catalog` (which must not already contain the
// tables). Table name collisions can be avoided with `prefix`.
StatusOr<SupplyChainSchema> GenerateSupplyChain(const SupplyChainParams& params,
                                                Catalog& catalog,
                                                const std::string& prefix = "");

// Adds the `stdeals(sid, tid; st_discount)` relation of the appendix, which
// makes the schema cyclic (Figures 12-15). Returns the extended view.
StatusOr<MpfViewDef> AddStdeals(const SupplyChainSchema& schema,
                                Catalog& catalog, double density,
                                const std::string& prefix = "");

// --- Synthetic schemas of Section 7.3 ---------------------------------------

enum class SyntheticKind {
  // Figure 6: a chain of tables t_i(v_{i-1}, v_i) that all additionally share
  // one common variable c.
  kStar,
  // The same chain with the common variable removed.
  kLinear,
  // Several common variables, each shared by three consecutive chain tables.
  kMultistar,
};

std::string SyntheticKindName(SyntheticKind kind);

struct SyntheticParams {
  SyntheticKind kind = SyntheticKind::kLinear;
  int num_tables = 5;
  int64_t domain_size = 10;  // every variable, as in the paper
  uint64_t seed = 777;
};

struct SyntheticSchema {
  MpfViewDef view;
  // The chain variables v0..vN ("the linear section").
  std::vector<std::string> linear_vars;
  // The common variable(s): one for kStar, several for kMultistar, none for
  // kLinear.
  std::vector<std::string> common_vars;
};

// Generates complete functional relations (every row of the domain cross
// product present, uniform random measures) into `catalog`.
StatusOr<SyntheticSchema> GenerateSynthetic(const SyntheticParams& params,
                                            Catalog& catalog,
                                            const std::string& prefix = "");

}  // namespace mpfdb::workload

#endif  // MPFDB_WORKLOAD_GENERATORS_H_
