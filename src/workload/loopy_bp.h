#ifndef MPFDB_WORKLOAD_LOOPY_BP_H_
#define MPFDB_WORKLOAD_LOOPY_BP_H_

#include <map>
#include <string>
#include <vector>

#include "semiring/semiring.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "util/status.h"

namespace mpfdb::workload {

// Approximate marginal inference by loopy belief propagation on the factor
// graph of the schema (factors = functional relations, variables = their
// attributes). The paper's Section 4.1 contrasts exact inference — which
// this repo scales with VE/CS+/junction trees — with approximate procedures
// that suffice when only relative likelihood matters; this is the standard
// such procedure. Exact on acyclic schemas; on cyclic schemas it iterates
// to a fixed point that is generally a good approximation.
//
// Sum-product semiring only (messages are normalized each round, which is
// what makes the iteration numerically stable).
struct LoopyBpOptions {
  int max_iterations = 50;
  // Convergence threshold: max absolute change of any (normalized) message
  // entry between rounds.
  double tolerance = 1e-9;
  // Damping factor in [0, 1): new = (1-d)*update + d*old. Helps oscillating
  // cycles converge.
  double damping = 0.0;
};

struct LoopyBpResult {
  // Normalized single-variable marginal estimates, keyed by variable name.
  std::map<std::string, TablePtr> marginals;
  bool converged = false;
  int iterations = 0;
};

StatusOr<LoopyBpResult> LoopyBeliefPropagation(
    const std::vector<TablePtr>& tables, const Catalog& catalog,
    const LoopyBpOptions& options = {});

}  // namespace mpfdb::workload

#endif  // MPFDB_WORKLOAD_LOOPY_BP_H_
