#include "workload/generators.h"

#include <unordered_set>

namespace mpfdb::workload {
namespace {

// Samples `count` distinct (a, b) pairs from [0, a_domain) x [0, b_domain)
// and appends rows with measures drawn from [measure_lo, measure_hi).
// When `count` covers a large fraction of the cross product, enumerates and
// thins instead of rejection-sampling.
void FillPairTable(Table& table, int64_t a_domain, int64_t b_domain,
                   int64_t count, double measure_lo, double measure_hi,
                   Rng& rng) {
  const double cross = static_cast<double>(a_domain) * static_cast<double>(b_domain);
  count = std::min<int64_t>(count, static_cast<int64_t>(cross));
  table.Reserve(static_cast<size_t>(count));
  if (static_cast<double>(count) > 0.5 * cross) {
    // Dense: Bernoulli-thin the full cross product to hit `count` expected
    // rows, then top up/trim deterministically.
    double p = static_cast<double>(count) / cross;
    std::vector<std::pair<VarValue, VarValue>> kept;
    for (int64_t a = 0; a < a_domain; ++a) {
      for (int64_t b = 0; b < b_domain; ++b) {
        if (rng.Bernoulli(p)) {
          kept.emplace_back(static_cast<VarValue>(a), static_cast<VarValue>(b));
        }
      }
    }
    for (const auto& [a, b] : kept) {
      table.AppendRow({a, b}, rng.UniformDouble(measure_lo, measure_hi));
    }
    return;
  }
  std::unordered_set<uint64_t> seen;
  seen.reserve(static_cast<size_t>(count) * 2);
  while (static_cast<int64_t>(table.NumRows()) < count) {
    int64_t a = rng.UniformInt(0, a_domain - 1);
    int64_t b = rng.UniformInt(0, b_domain - 1);
    uint64_t key = (static_cast<uint64_t>(a) << 32) | static_cast<uint64_t>(b);
    if (!seen.insert(key).second) continue;
    table.AppendRow({static_cast<VarValue>(a), static_cast<VarValue>(b)},
                    rng.UniformDouble(measure_lo, measure_hi));
  }
}

}  // namespace

StatusOr<SupplyChainSchema> GenerateSupplyChain(const SupplyChainParams& params,
                                                Catalog& catalog,
                                                const std::string& prefix) {
  Rng rng(params.seed);
  const std::string pid = prefix + "pid";
  const std::string sid = prefix + "sid";
  const std::string wid = prefix + "wid";
  const std::string cid = prefix + "cid";
  const std::string tid = prefix + "tid";
  MPFDB_RETURN_IF_ERROR(catalog.RegisterVariable(pid, params.num_parts()));
  MPFDB_RETURN_IF_ERROR(catalog.RegisterVariable(sid, params.num_suppliers()));
  MPFDB_RETURN_IF_ERROR(catalog.RegisterVariable(wid, params.num_warehouses()));
  MPFDB_RETURN_IF_ERROR(catalog.RegisterVariable(cid, params.num_contractors()));
  MPFDB_RETURN_IF_ERROR(catalog.RegisterVariable(tid, params.num_transporters()));

  // contracts(pid, sid; price): terms for a part's purchase from a supplier.
  auto contracts =
      std::make_shared<Table>(prefix + "contracts", Schema({pid, sid}, "price"));
  FillPairTable(*contracts, params.num_parts(), params.num_suppliers(),
                params.contracts_rows(), 1.0, 100.0, rng);
  MPFDB_RETURN_IF_ERROR(contracts->SetKeyVars({pid, sid}));
  MPFDB_RETURN_IF_ERROR(catalog.RegisterTable(contracts));

  // warehouses(wid, cid; w_overhead): each warehouse is operated by exactly
  // one contractor, so wid is the key.
  auto warehouses =
      std::make_shared<Table>(prefix + "warehouses", Schema({wid, cid}, "w_overhead"));
  warehouses->Reserve(static_cast<size_t>(params.warehouses_rows()));
  for (int64_t w = 0; w < params.warehouses_rows(); ++w) {
    VarValue c = static_cast<VarValue>(rng.UniformInt(0, params.num_contractors() - 1));
    warehouses->AppendRow({static_cast<VarValue>(w), c},
                          rng.UniformDouble(1.0, 2.0));
  }
  MPFDB_RETURN_IF_ERROR(warehouses->SetKeyVars({wid}));
  MPFDB_RETURN_IF_ERROR(catalog.RegisterTable(warehouses));

  // transporters(tid; t_overhead).
  auto transporters =
      std::make_shared<Table>(prefix + "transporters", Schema({tid}, "t_overhead"));
  transporters->Reserve(static_cast<size_t>(params.transporters_rows()));
  for (int64_t t = 0; t < params.transporters_rows(); ++t) {
    transporters->AppendRow({static_cast<VarValue>(t)},
                            rng.UniformDouble(1.0, 1.5));
  }
  MPFDB_RETURN_IF_ERROR(transporters->SetKeyVars({tid}));
  MPFDB_RETURN_IF_ERROR(catalog.RegisterTable(transporters));

  // location(pid, wid; quantity): quantity of each part sent to a warehouse.
  auto location =
      std::make_shared<Table>(prefix + "location", Schema({pid, wid}, "quantity"));
  FillPairTable(*location, params.num_parts(), params.num_warehouses(),
                params.location_rows(), 1.0, 50.0, rng);
  MPFDB_RETURN_IF_ERROR(location->SetKeyVars({pid, wid}));
  MPFDB_RETURN_IF_ERROR(catalog.RegisterTable(location));

  // ctdeals(cid, tid; ct_discount): contractor-transporter deals; density is
  // the Figure 7 knob.
  auto ctdeals =
      std::make_shared<Table>(prefix + "ctdeals", Schema({cid, tid}, "ct_discount"));
  FillPairTable(*ctdeals, params.num_contractors(), params.num_transporters(),
                params.ctdeals_rows(), 0.5, 1.0, rng);
  MPFDB_RETURN_IF_ERROR(ctdeals->SetKeyVars({cid, tid}));
  MPFDB_RETURN_IF_ERROR(catalog.RegisterTable(ctdeals));

  SupplyChainSchema schema;
  schema.view.name = prefix + "invest";
  schema.view.relations = {prefix + "contracts", prefix + "warehouses",
                           prefix + "transporters", prefix + "location",
                           prefix + "ctdeals"};
  schema.view.semiring = Semiring::SumProduct();
  schema.params = params;
  return schema;
}

StatusOr<MpfViewDef> AddStdeals(const SupplyChainSchema& schema,
                                Catalog& catalog, double density,
                                const std::string& prefix) {
  Rng rng(schema.params.seed + 1);
  const std::string sid = prefix + "sid";
  const std::string tid = prefix + "tid";
  auto stdeals =
      std::make_shared<Table>(prefix + "stdeals", Schema({sid, tid}, "st_discount"));
  int64_t rows = static_cast<int64_t>(
      density * static_cast<double>(schema.params.num_suppliers()) *
      static_cast<double>(schema.params.num_transporters()));
  FillPairTable(*stdeals, schema.params.num_suppliers(),
                schema.params.num_transporters(), rows, 0.5, 1.0, rng);
  MPFDB_RETURN_IF_ERROR(stdeals->SetKeyVars({sid, tid}));
  MPFDB_RETURN_IF_ERROR(catalog.RegisterTable(stdeals));

  MpfViewDef view = schema.view;
  view.name += "_st";
  view.relations.push_back(prefix + "stdeals");
  return view;
}

std::string SyntheticKindName(SyntheticKind kind) {
  switch (kind) {
    case SyntheticKind::kStar:
      return "star";
    case SyntheticKind::kLinear:
      return "linear";
    case SyntheticKind::kMultistar:
      return "multistar";
  }
  return "unknown";
}

StatusOr<SyntheticSchema> GenerateSynthetic(const SyntheticParams& params,
                                            Catalog& catalog,
                                            const std::string& prefix) {
  if (params.num_tables < 1) {
    return Status::InvalidArgument("num_tables must be >= 1");
  }
  Rng rng(params.seed);
  SyntheticSchema schema;
  schema.view.name = prefix + SyntheticKindName(params.kind);
  schema.view.semiring = Semiring::SumProduct();

  // Chain variables v0..vN.
  for (int i = 0; i <= params.num_tables; ++i) {
    std::string var = prefix + "v" + std::to_string(i);
    MPFDB_RETURN_IF_ERROR(catalog.RegisterVariable(var, params.domain_size));
    schema.linear_vars.push_back(var);
  }
  // Common variables.
  if (params.kind == SyntheticKind::kStar) {
    std::string var = prefix + "c";
    MPFDB_RETURN_IF_ERROR(catalog.RegisterVariable(var, params.domain_size));
    schema.common_vars.push_back(var);
  } else if (params.kind == SyntheticKind::kMultistar) {
    // One common variable per group of three consecutive tables (stride 2 so
    // adjacent groups overlap in one table, keeping the view connected
    // through the common variables as well).
    for (int start = 0; start < params.num_tables; start += 2) {
      std::string var = prefix + "c" + std::to_string(start / 2);
      MPFDB_RETURN_IF_ERROR(catalog.RegisterVariable(var, params.domain_size));
      schema.common_vars.push_back(var);
    }
  }

  for (int i = 0; i < params.num_tables; ++i) {
    std::vector<std::string> vars = {schema.linear_vars[i],
                                     schema.linear_vars[i + 1]};
    if (params.kind == SyntheticKind::kStar) {
      vars.push_back(schema.common_vars[0]);
    } else if (params.kind == SyntheticKind::kMultistar) {
      for (size_t g = 0; g < schema.common_vars.size(); ++g) {
        int start = static_cast<int>(g) * 2;
        if (i >= start && i < start + 3) {
          vars.push_back(schema.common_vars[g]);
        }
      }
    }
    auto table = std::make_shared<Table>(
        prefix + "t" + std::to_string(i), Schema(vars, "f"));
    // Complete functional relation: every combination of the domains.
    int64_t total = 1;
    for (size_t k = 0; k < vars.size(); ++k) total *= params.domain_size;
    table->Reserve(static_cast<size_t>(total));
    std::vector<VarValue> row(vars.size(), 0);
    while (true) {
      table->AppendRow(row, rng.UniformDouble(0.5, 1.5));
      // Odometer increment.
      size_t pos = 0;
      while (pos < row.size()) {
        if (++row[pos] < params.domain_size) break;
        row[pos] = 0;
        ++pos;
      }
      if (pos == row.size()) break;
    }
    MPFDB_RETURN_IF_ERROR(catalog.RegisterTable(table));
    schema.view.relations.push_back(table->name());
  }
  return schema;
}

StatusOr<CycleSchema> GenerateCycle(const CycleParams& params, Catalog& catalog,
                                    const std::string& prefix) {
  if (params.num_vars < 3) {
    return Status::InvalidArgument("a cycle needs num_vars >= 3");
  }
  if (params.density <= 0.0 || params.density > 1.0) {
    return Status::InvalidArgument("density must be in (0, 1]");
  }
  Rng rng(params.seed);
  CycleSchema schema;
  schema.view.name = prefix + "cycle" + std::to_string(params.num_vars);
  schema.view.semiring = Semiring::SumProduct();

  for (int i = 0; i < params.num_vars; ++i) {
    std::string var = prefix + "x" + std::to_string(i);
    MPFDB_RETURN_IF_ERROR(catalog.RegisterVariable(var, params.domain_size));
    schema.vars.push_back(var);
  }

  if (params.hub_fraction < 0.0 || params.hub_fraction > 1.0) {
    return Status::InvalidArgument("hub_fraction must be in [0, 1]");
  }
  int64_t per_edge = static_cast<int64_t>(
      params.density * static_cast<double>(params.domain_size) *
      static_cast<double>(params.domain_size));
  if (per_edge < 1) per_edge = 1;
  const int64_t hub_rows =
      static_cast<int64_t>(params.hub_fraction * static_cast<double>(per_edge));
  for (int i = 0; i < params.num_vars; ++i) {
    const std::string& a = schema.vars[static_cast<size_t>(i)];
    const std::string& b =
        schema.vars[static_cast<size_t>((i + 1) % params.num_vars)];
    auto table = std::make_shared<Table>(prefix + "e" + std::to_string(i),
                                         Schema({a, b}, "w"));
    if (hub_rows > 0) {
      // Skewed fill: pin hub rows to value 0 (half on each side, distinct
      // tuples only), then top up to per_edge with uniform pairs.
      std::unordered_set<uint64_t> seen;
      seen.reserve(static_cast<size_t>(per_edge) * 2);
      auto add = [&](VarValue va, VarValue vb) {
        uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(va)) << 32) |
                       static_cast<uint32_t>(vb);
        if (!seen.insert(key).second) return;
        table->AppendRow({va, vb}, rng.UniformDouble(0.5, 1.5));
      };
      for (int64_t k = 0; k < hub_rows / 2; ++k) {
        add(0, static_cast<VarValue>(
                   rng.UniformInt(0, params.domain_size - 1)));
      }
      for (int64_t k = hub_rows / 2; k < hub_rows; ++k) {
        add(static_cast<VarValue>(rng.UniformInt(0, params.domain_size - 1)),
            0);
      }
      while (static_cast<int64_t>(table->NumRows()) < per_edge) {
        add(static_cast<VarValue>(rng.UniformInt(0, params.domain_size - 1)),
            static_cast<VarValue>(rng.UniformInt(0, params.domain_size - 1)));
      }
    } else {
      FillPairTable(*table, params.domain_size, params.domain_size, per_edge,
                    0.5, 1.5, rng);
    }
    MPFDB_RETURN_IF_ERROR(table->SetKeyVars({a, b}));
    MPFDB_RETURN_IF_ERROR(catalog.RegisterTable(table));
    schema.view.relations.push_back(table->name());
  }
  return schema;
}

StatusOr<GridSchema> GenerateGrid(const GridParams& params, Catalog& catalog,
                                  const std::string& prefix) {
  if (params.rows < 2 || params.cols < 2) {
    return Status::InvalidArgument("grid needs rows >= 2 and cols >= 2");
  }
  Rng rng(params.seed);
  GridSchema schema;
  schema.view.name = prefix + "grid";
  schema.view.semiring = Semiring::SumProduct();

  for (int r = 0; r < params.rows; ++r) {
    for (int c = 0; c < params.cols; ++c) {
      std::string var =
          prefix + "g" + std::to_string(r) + "_" + std::to_string(c);
      MPFDB_RETURN_IF_ERROR(catalog.RegisterVariable(var, params.domain_size));
      schema.vars.push_back(var);
    }
  }
  auto cell = [&](int r, int c) -> const std::string& {
    return schema.vars[static_cast<size_t>(r) * params.cols + c];
  };
  auto add_potential = [&](const std::string& a,
                           const std::string& b) -> Status {
    auto table = std::make_shared<Table>(prefix + "p_" + a + "_" + b,
                                         Schema({a, b}, "phi"));
    table->Reserve(
        static_cast<size_t>(params.domain_size * params.domain_size));
    for (int64_t va = 0; va < params.domain_size; ++va) {
      for (int64_t vb = 0; vb < params.domain_size; ++vb) {
        table->AppendRow(
            {static_cast<VarValue>(va), static_cast<VarValue>(vb)},
            rng.UniformDouble(0.5, 1.5));
      }
    }
    MPFDB_RETURN_IF_ERROR(table->SetKeyVars({a, b}));
    MPFDB_RETURN_IF_ERROR(catalog.RegisterTable(table));
    schema.view.relations.push_back(table->name());
    return Status::Ok();
  };
  for (int r = 0; r < params.rows; ++r) {
    for (int c = 0; c < params.cols; ++c) {
      if (c + 1 < params.cols) {
        MPFDB_RETURN_IF_ERROR(add_potential(cell(r, c), cell(r, c + 1)));
      }
      if (r + 1 < params.rows) {
        MPFDB_RETURN_IF_ERROR(add_potential(cell(r, c), cell(r + 1, c)));
      }
    }
  }
  return schema;
}

StatusOr<MatrixChainSchema> GenerateMatrixChain(const MatrixChainParams& params,
                                                Catalog& catalog,
                                                const std::string& prefix) {
  if (params.dims.size() < 2) {
    return Status::InvalidArgument("matrix chain needs at least 2 dims");
  }
  Rng rng(params.seed);
  MatrixChainSchema schema;
  schema.view.name = prefix + "matchain";
  schema.view.semiring = Semiring::SumProduct();

  for (size_t i = 0; i < params.dims.size(); ++i) {
    if (params.dims[i] < 1) {
      return Status::InvalidArgument("matrix dims must be >= 1");
    }
    std::string var = prefix + "d" + std::to_string(i);
    MPFDB_RETURN_IF_ERROR(catalog.RegisterVariable(var, params.dims[i]));
    schema.vars.push_back(var);
  }
  for (size_t i = 0; i + 1 < params.dims.size(); ++i) {
    auto table = std::make_shared<Table>(
        prefix + "m" + std::to_string(i),
        Schema({schema.vars[i], schema.vars[i + 1]}, "val"));
    table->Reserve(static_cast<size_t>(params.dims[i] * params.dims[i + 1]));
    for (int64_t r = 0; r < params.dims[i]; ++r) {
      for (int64_t c = 0; c < params.dims[i + 1]; ++c) {
        table->AppendRow({static_cast<VarValue>(r), static_cast<VarValue>(c)},
                         rng.UniformDouble(-1.0, 1.0));
      }
    }
    MPFDB_RETURN_IF_ERROR(
        table->SetKeyVars({schema.vars[i], schema.vars[i + 1]}));
    MPFDB_RETURN_IF_ERROR(catalog.RegisterTable(table));
    schema.view.relations.push_back(table->name());
  }
  return schema;
}

StatusOr<ReachabilitySchema> GenerateReachability(
    const ReachabilityParams& params, Catalog& catalog,
    const std::string& prefix) {
  if (params.num_nodes < 2 || params.path_len < 1) {
    return Status::InvalidArgument(
        "reachability needs num_nodes >= 2 and path_len >= 1");
  }
  Rng rng(params.seed);
  ReachabilitySchema schema;
  schema.view.name = prefix + "reach";
  schema.view.semiring = Semiring::BoolOrAnd();

  for (int i = 0; i <= params.path_len; ++i) {
    std::string var = prefix + "n" + std::to_string(i);
    MPFDB_RETURN_IF_ERROR(catalog.RegisterVariable(var, params.num_nodes));
    schema.vars.push_back(var);
  }
  // One edge set, instantiated per hop so every hop table has identical
  // adjacency (a walk in a fixed graph).
  std::vector<std::pair<VarValue, VarValue>> edges;
  for (int64_t u = 0; u < params.num_nodes; ++u) {
    for (int64_t v = 0; v < params.num_nodes; ++v) {
      if (rng.Bernoulli(params.edge_density)) {
        edges.emplace_back(static_cast<VarValue>(u), static_cast<VarValue>(v));
      }
    }
  }
  if (edges.empty()) edges.emplace_back(0, 0);  // keep the view non-empty
  for (int i = 0; i < params.path_len; ++i) {
    auto table = std::make_shared<Table>(
        prefix + "hop" + std::to_string(i),
        Schema({schema.vars[static_cast<size_t>(i)],
                schema.vars[static_cast<size_t>(i) + 1]},
               "present"));
    table->Reserve(edges.size());
    for (const auto& [u, v] : edges) {
      table->AppendRow({u, v}, 1.0);
    }
    MPFDB_RETURN_IF_ERROR(
        table->SetKeyVars({schema.vars[static_cast<size_t>(i)],
                           schema.vars[static_cast<size_t>(i) + 1]}));
    MPFDB_RETURN_IF_ERROR(catalog.RegisterTable(table));
    schema.view.relations.push_back(table->name());
  }
  return schema;
}

}  // namespace mpfdb::workload
