#include "workload/generators.h"

#include <unordered_set>

namespace mpfdb::workload {
namespace {

// Samples `count` distinct (a, b) pairs from [0, a_domain) x [0, b_domain)
// and appends rows with measures drawn from [measure_lo, measure_hi).
// When `count` covers a large fraction of the cross product, enumerates and
// thins instead of rejection-sampling.
void FillPairTable(Table& table, int64_t a_domain, int64_t b_domain,
                   int64_t count, double measure_lo, double measure_hi,
                   Rng& rng) {
  const double cross = static_cast<double>(a_domain) * static_cast<double>(b_domain);
  count = std::min<int64_t>(count, static_cast<int64_t>(cross));
  table.Reserve(static_cast<size_t>(count));
  if (static_cast<double>(count) > 0.5 * cross) {
    // Dense: Bernoulli-thin the full cross product to hit `count` expected
    // rows, then top up/trim deterministically.
    double p = static_cast<double>(count) / cross;
    std::vector<std::pair<VarValue, VarValue>> kept;
    for (int64_t a = 0; a < a_domain; ++a) {
      for (int64_t b = 0; b < b_domain; ++b) {
        if (rng.Bernoulli(p)) {
          kept.emplace_back(static_cast<VarValue>(a), static_cast<VarValue>(b));
        }
      }
    }
    for (const auto& [a, b] : kept) {
      table.AppendRow({a, b}, rng.UniformDouble(measure_lo, measure_hi));
    }
    return;
  }
  std::unordered_set<uint64_t> seen;
  seen.reserve(static_cast<size_t>(count) * 2);
  while (static_cast<int64_t>(table.NumRows()) < count) {
    int64_t a = rng.UniformInt(0, a_domain - 1);
    int64_t b = rng.UniformInt(0, b_domain - 1);
    uint64_t key = (static_cast<uint64_t>(a) << 32) | static_cast<uint64_t>(b);
    if (!seen.insert(key).second) continue;
    table.AppendRow({static_cast<VarValue>(a), static_cast<VarValue>(b)},
                    rng.UniformDouble(measure_lo, measure_hi));
  }
}

}  // namespace

StatusOr<SupplyChainSchema> GenerateSupplyChain(const SupplyChainParams& params,
                                                Catalog& catalog,
                                                const std::string& prefix) {
  Rng rng(params.seed);
  const std::string pid = prefix + "pid";
  const std::string sid = prefix + "sid";
  const std::string wid = prefix + "wid";
  const std::string cid = prefix + "cid";
  const std::string tid = prefix + "tid";
  MPFDB_RETURN_IF_ERROR(catalog.RegisterVariable(pid, params.num_parts()));
  MPFDB_RETURN_IF_ERROR(catalog.RegisterVariable(sid, params.num_suppliers()));
  MPFDB_RETURN_IF_ERROR(catalog.RegisterVariable(wid, params.num_warehouses()));
  MPFDB_RETURN_IF_ERROR(catalog.RegisterVariable(cid, params.num_contractors()));
  MPFDB_RETURN_IF_ERROR(catalog.RegisterVariable(tid, params.num_transporters()));

  // contracts(pid, sid; price): terms for a part's purchase from a supplier.
  auto contracts =
      std::make_shared<Table>(prefix + "contracts", Schema({pid, sid}, "price"));
  FillPairTable(*contracts, params.num_parts(), params.num_suppliers(),
                params.contracts_rows(), 1.0, 100.0, rng);
  MPFDB_RETURN_IF_ERROR(contracts->SetKeyVars({pid, sid}));
  MPFDB_RETURN_IF_ERROR(catalog.RegisterTable(contracts));

  // warehouses(wid, cid; w_overhead): each warehouse is operated by exactly
  // one contractor, so wid is the key.
  auto warehouses =
      std::make_shared<Table>(prefix + "warehouses", Schema({wid, cid}, "w_overhead"));
  warehouses->Reserve(static_cast<size_t>(params.warehouses_rows()));
  for (int64_t w = 0; w < params.warehouses_rows(); ++w) {
    VarValue c = static_cast<VarValue>(rng.UniformInt(0, params.num_contractors() - 1));
    warehouses->AppendRow({static_cast<VarValue>(w), c},
                          rng.UniformDouble(1.0, 2.0));
  }
  MPFDB_RETURN_IF_ERROR(warehouses->SetKeyVars({wid}));
  MPFDB_RETURN_IF_ERROR(catalog.RegisterTable(warehouses));

  // transporters(tid; t_overhead).
  auto transporters =
      std::make_shared<Table>(prefix + "transporters", Schema({tid}, "t_overhead"));
  transporters->Reserve(static_cast<size_t>(params.transporters_rows()));
  for (int64_t t = 0; t < params.transporters_rows(); ++t) {
    transporters->AppendRow({static_cast<VarValue>(t)},
                            rng.UniformDouble(1.0, 1.5));
  }
  MPFDB_RETURN_IF_ERROR(transporters->SetKeyVars({tid}));
  MPFDB_RETURN_IF_ERROR(catalog.RegisterTable(transporters));

  // location(pid, wid; quantity): quantity of each part sent to a warehouse.
  auto location =
      std::make_shared<Table>(prefix + "location", Schema({pid, wid}, "quantity"));
  FillPairTable(*location, params.num_parts(), params.num_warehouses(),
                params.location_rows(), 1.0, 50.0, rng);
  MPFDB_RETURN_IF_ERROR(location->SetKeyVars({pid, wid}));
  MPFDB_RETURN_IF_ERROR(catalog.RegisterTable(location));

  // ctdeals(cid, tid; ct_discount): contractor-transporter deals; density is
  // the Figure 7 knob.
  auto ctdeals =
      std::make_shared<Table>(prefix + "ctdeals", Schema({cid, tid}, "ct_discount"));
  FillPairTable(*ctdeals, params.num_contractors(), params.num_transporters(),
                params.ctdeals_rows(), 0.5, 1.0, rng);
  MPFDB_RETURN_IF_ERROR(ctdeals->SetKeyVars({cid, tid}));
  MPFDB_RETURN_IF_ERROR(catalog.RegisterTable(ctdeals));

  SupplyChainSchema schema;
  schema.view.name = prefix + "invest";
  schema.view.relations = {prefix + "contracts", prefix + "warehouses",
                           prefix + "transporters", prefix + "location",
                           prefix + "ctdeals"};
  schema.view.semiring = Semiring::SumProduct();
  schema.params = params;
  return schema;
}

StatusOr<MpfViewDef> AddStdeals(const SupplyChainSchema& schema,
                                Catalog& catalog, double density,
                                const std::string& prefix) {
  Rng rng(schema.params.seed + 1);
  const std::string sid = prefix + "sid";
  const std::string tid = prefix + "tid";
  auto stdeals =
      std::make_shared<Table>(prefix + "stdeals", Schema({sid, tid}, "st_discount"));
  int64_t rows = static_cast<int64_t>(
      density * static_cast<double>(schema.params.num_suppliers()) *
      static_cast<double>(schema.params.num_transporters()));
  FillPairTable(*stdeals, schema.params.num_suppliers(),
                schema.params.num_transporters(), rows, 0.5, 1.0, rng);
  MPFDB_RETURN_IF_ERROR(stdeals->SetKeyVars({sid, tid}));
  MPFDB_RETURN_IF_ERROR(catalog.RegisterTable(stdeals));

  MpfViewDef view = schema.view;
  view.name += "_st";
  view.relations.push_back(prefix + "stdeals");
  return view;
}

std::string SyntheticKindName(SyntheticKind kind) {
  switch (kind) {
    case SyntheticKind::kStar:
      return "star";
    case SyntheticKind::kLinear:
      return "linear";
    case SyntheticKind::kMultistar:
      return "multistar";
  }
  return "unknown";
}

StatusOr<SyntheticSchema> GenerateSynthetic(const SyntheticParams& params,
                                            Catalog& catalog,
                                            const std::string& prefix) {
  if (params.num_tables < 1) {
    return Status::InvalidArgument("num_tables must be >= 1");
  }
  Rng rng(params.seed);
  SyntheticSchema schema;
  schema.view.name = prefix + SyntheticKindName(params.kind);
  schema.view.semiring = Semiring::SumProduct();

  // Chain variables v0..vN.
  for (int i = 0; i <= params.num_tables; ++i) {
    std::string var = prefix + "v" + std::to_string(i);
    MPFDB_RETURN_IF_ERROR(catalog.RegisterVariable(var, params.domain_size));
    schema.linear_vars.push_back(var);
  }
  // Common variables.
  if (params.kind == SyntheticKind::kStar) {
    std::string var = prefix + "c";
    MPFDB_RETURN_IF_ERROR(catalog.RegisterVariable(var, params.domain_size));
    schema.common_vars.push_back(var);
  } else if (params.kind == SyntheticKind::kMultistar) {
    // One common variable per group of three consecutive tables (stride 2 so
    // adjacent groups overlap in one table, keeping the view connected
    // through the common variables as well).
    for (int start = 0; start < params.num_tables; start += 2) {
      std::string var = prefix + "c" + std::to_string(start / 2);
      MPFDB_RETURN_IF_ERROR(catalog.RegisterVariable(var, params.domain_size));
      schema.common_vars.push_back(var);
    }
  }

  for (int i = 0; i < params.num_tables; ++i) {
    std::vector<std::string> vars = {schema.linear_vars[i],
                                     schema.linear_vars[i + 1]};
    if (params.kind == SyntheticKind::kStar) {
      vars.push_back(schema.common_vars[0]);
    } else if (params.kind == SyntheticKind::kMultistar) {
      for (size_t g = 0; g < schema.common_vars.size(); ++g) {
        int start = static_cast<int>(g) * 2;
        if (i >= start && i < start + 3) {
          vars.push_back(schema.common_vars[g]);
        }
      }
    }
    auto table = std::make_shared<Table>(
        prefix + "t" + std::to_string(i), Schema(vars, "f"));
    // Complete functional relation: every combination of the domains.
    int64_t total = 1;
    for (size_t k = 0; k < vars.size(); ++k) total *= params.domain_size;
    table->Reserve(static_cast<size_t>(total));
    std::vector<VarValue> row(vars.size(), 0);
    while (true) {
      table->AppendRow(row, rng.UniformDouble(0.5, 1.5));
      // Odometer increment.
      size_t pos = 0;
      while (pos < row.size()) {
        if (++row[pos] < params.domain_size) break;
        row[pos] = 0;
        ++pos;
      }
      if (pos == row.size()) break;
    }
    MPFDB_RETURN_IF_ERROR(catalog.RegisterTable(table));
    schema.view.relations.push_back(table->name());
  }
  return schema;
}

}  // namespace mpfdb::workload
