#include "plan/physical.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "storage/schema.h"

namespace mpfdb {

namespace {

// Data sorted by the `have` sequence is also sorted by `needed` exactly when
// `needed` is a prefix of `have` (an empty `needed` is trivially satisfied).
bool IsOrderPrefix(const std::vector<std::string>& needed,
                   const std::vector<std::string>& have) {
  if (needed.size() > have.size()) return false;
  for (size_t i = 0; i < needed.size(); ++i) {
    if (needed[i] != have[i]) return false;
  }
  return true;
}

// Longest prefix of `order` whose variables all survive a projection to
// `kept`. Projection drops columns, not rows, so sortedness by the
// surviving prefix is preserved.
std::vector<std::string> TruncateOrder(const std::vector<std::string>& order,
                                       const std::vector<std::string>& kept) {
  std::vector<std::string> out;
  for (const auto& var : order) {
    if (!varset::Contains(kept, var)) break;
    out.push_back(var);
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::unique_ptr<PhysicalPlanNode> MakeNode(PlanNodeKind kind,
                                           const PlanNode* logical) {
  auto node = std::make_unique<PhysicalPlanNode>();
  node->kind = kind;
  node->logical = logical;
  return node;
}

}  // namespace

const char* JoinAlgorithmName(JoinAlgorithm algorithm) {
  switch (algorithm) {
    case JoinAlgorithm::kAuto:
      return "auto";
    case JoinAlgorithm::kHash:
      return "hash";
    case JoinAlgorithm::kSortMerge:
      return "sort_merge";
    case JoinAlgorithm::kNestedLoop:
      return "nested_loop";
    case JoinAlgorithm::kLeapfrog:
      return "leapfrog";
  }
  return "?";
}

const char* AggAlgorithmName(AggAlgorithm algorithm) {
  switch (algorithm) {
    case AggAlgorithm::kAuto:
      return "auto";
    case AggAlgorithm::kHash:
      return "hash";
    case AggAlgorithm::kSort:
      return "sort";
  }
  return "?";
}

std::unique_ptr<PhysicalPlanNode> PhysicalPlanNode::Clone() const {
  auto copy = std::make_unique<PhysicalPlanNode>();
  copy->kind = kind;
  copy->logical = logical;
  if (left != nullptr) copy->left = left->Clone();
  if (right != nullptr) copy->right = right->Clone();
  copy->children.reserve(children.size());
  for (const auto& child : children) copy->children.push_back(child->Clone());
  copy->join = join;
  copy->agg = agg;
  copy->index_fused = index_fused;
  copy->output_order = output_order;
  copy->skip_sort_left = skip_sort_left;
  copy->skip_sort_right = skip_sort_right;
  copy->skip_sort_input = skip_sort_input;
  copy->node_cost = node_cost;
  copy->total_cost = total_cost;
  return copy;
}

// A candidate is one fully-formed physical subtree; its cumulative cost and
// claimed output order live on the root node.
struct PhysicalPlanner::Candidate {
  std::unique_ptr<PhysicalPlanNode> node;
};

// Selinger pruning: keep the cheapest candidate overall plus the cheapest
// per distinct non-empty output order (a pricier-but-sorted subtree can
// still win at the parent by skipping a sort). Strict `<` with
// generation-order iteration makes ties deterministic: the first-generated
// candidate wins, and generation order always lists hash first.
void PhysicalPlanner::Prune(std::vector<PhysicalPlanner::Candidate>* candidates) {
  if (candidates->size() <= 1) return;
  size_t best = 0;
  std::map<std::vector<std::string>, size_t> best_per_order;
  for (size_t i = 0; i < candidates->size(); ++i) {
    const PhysicalPlanNode& node = *(*candidates)[i].node;
    if (node.total_cost < (*candidates)[best].node->total_cost) best = i;
    if (!node.output_order.empty()) {
      auto it = best_per_order.find(node.output_order);
      if (it == best_per_order.end()) {
        best_per_order.emplace(node.output_order, i);
      } else if (node.total_cost <
                 (*candidates)[it->second].node->total_cost) {
        it->second = i;
      }
    }
  }
  std::vector<bool> keep(candidates->size(), false);
  keep[best] = true;
  for (const auto& [order, idx] : best_per_order) keep[idx] = true;
  std::vector<PhysicalPlanner::Candidate> out;
  for (size_t i = 0; i < candidates->size(); ++i) {
    if (keep[i]) out.push_back(std::move((*candidates)[i]));
  }
  *candidates = std::move(out);
}

PhysicalPlanner::PhysicalPlanner(const Catalog& catalog,
                                 const CostModel& cost_model,
                                 Semiring semiring,
                                 PhysicalPlannerOptions options)
    : catalog_(catalog),
      cost_model_(cost_model),
      semiring_(semiring),
      options_(options) {}

double PhysicalPlanner::IndexLookupCost(const std::string& table,
                                        const std::string& var,
                                        double output_card) const {
  const HashIndex* index = catalog_.GetIndex(table, var);
  if (options_.mph_indexes && index != nullptr &&
      index->perfect() != nullptr) {
    return cost_model_.PerfectIndexScanCost(output_card);
  }
  return cost_model_.IndexScanCost(output_card);
}

StatusOr<std::unique_ptr<PhysicalPlanNode>> PhysicalPlanner::PlanTree(
    const PlanNode& root) const {
  MPFDB_ASSIGN_OR_RETURN(std::vector<Candidate> candidates,
                         Enumerate(root, nullptr));
  if (candidates.empty()) {
    return Status::Internal("physical planner produced no candidates");
  }
  size_t best = 0;
  for (size_t i = 1; i < candidates.size(); ++i) {
    if (candidates[i].node->total_cost < candidates[best].node->total_cost) {
      best = i;
    }
  }
  return std::move(candidates[best].node);
}

StatusOr<std::vector<PhysicalPlanner::Candidate>> PhysicalPlanner::Enumerate(
    const PlanNode& node, const std::vector<std::string>* fold_vars) const {
  std::vector<Candidate> out;
  switch (node.kind) {
    case PlanNodeKind::kScan: {
      auto phys = MakeNode(PlanNodeKind::kScan, &node);
      phys->node_cost = cost_model_.ScanCost(node.est_card);
      phys->total_cost = phys->node_cost;
      out.push_back(Candidate{std::move(phys)});
      break;
    }

    case PlanNodeKind::kIndexScan: {
      auto phys = MakeNode(PlanNodeKind::kIndexScan, &node);
      phys->node_cost =
          IndexLookupCost(node.table_name, node.select_var, node.est_card);
      phys->total_cost = phys->node_cost;
      out.push_back(Candidate{std::move(phys)});
      break;
    }

    case PlanNodeKind::kSelect: {
      // Physical access-path choice: when the selection sits directly on a
      // scan of an indexed variable, a fused IndexScan competes with
      // Scan+Filter. The HashIndex stores row ids in table order, so the
      // fused leaf emits the exact row sequence Select(Scan) would.
      if (options_.allow_index_fusion && node.left != nullptr &&
          node.left->kind == PlanNodeKind::kScan &&
          catalog_.GetIndex(node.left->table_name, node.select_var) !=
              nullptr) {
        auto fused = MakeNode(PlanNodeKind::kIndexScan, &node);
        fused->index_fused = true;
        fused->node_cost = IndexLookupCost(node.left->table_name,
                                           node.select_var, node.est_card);
        fused->total_cost = fused->node_cost;
        out.push_back(Candidate{std::move(fused)});
      }
      MPFDB_ASSIGN_OR_RETURN(std::vector<Candidate> children,
                             Enumerate(*node.left, fold_vars));
      for (auto& child : children) {
        auto phys = MakeNode(PlanNodeKind::kSelect, &node);
        phys->node_cost = cost_model_.SelectCost(node.left->est_card);
        phys->total_cost = child.node->total_cost + phys->node_cost;
        phys->output_order = child.node->output_order;  // filter keeps order
        phys->left = std::move(child.node);
        out.push_back(Candidate{std::move(phys)});
      }
      break;
    }

    case PlanNodeKind::kMeasureFilter: {
      MPFDB_ASSIGN_OR_RETURN(std::vector<Candidate> children,
                             Enumerate(*node.left, fold_vars));
      for (auto& child : children) {
        auto phys = MakeNode(PlanNodeKind::kMeasureFilter, &node);
        phys->node_cost = cost_model_.SelectCost(node.left->est_card);
        phys->total_cost = child.node->total_cost + phys->node_cost;
        phys->output_order = child.node->output_order;
        phys->left = std::move(child.node);
        out.push_back(Candidate{std::move(phys)});
      }
      break;
    }

    case PlanNodeKind::kProject: {
      MPFDB_ASSIGN_OR_RETURN(std::vector<Candidate> children,
                             Enumerate(*node.left, fold_vars));
      for (auto& child : children) {
        auto phys = MakeNode(PlanNodeKind::kProject, &node);
        phys->node_cost = cost_model_.SelectCost(node.left->est_card);
        phys->total_cost = child.node->total_cost + phys->node_cost;
        phys->output_order =
            TruncateOrder(child.node->output_order, node.output_vars);
        phys->left = std::move(child.node);
        out.push_back(Candidate{std::move(phys)});
      }
      break;
    }

    case PlanNodeKind::kGroupBy: {
      // The GroupBy establishes the fold context for its subtree: emission
      // reorderings below it are confluent iff each fold group still sees
      // its contributions in the same relative order.
      MPFDB_ASSIGN_OR_RETURN(std::vector<Candidate> children,
                             Enumerate(*node.left, &node.group_vars));
      const bool allow_hash = options_.force_agg != AggAlgorithm::kSort;
      // Sort-marginalize cannot spill; under a finite budget auto mode
      // stays on the spill-capable hash path.
      const bool allow_sort =
          options_.force_agg == AggAlgorithm::kSort ||
          (options_.force_agg == AggAlgorithm::kAuto &&
           options_.memory_limit == 0);
      for (auto& child : children) {
        if (allow_hash) {
          auto phys = MakeNode(PlanNodeKind::kGroupBy, &node);
          phys->agg = AggAlgorithm::kHash;
          phys->node_cost =
              cost_model_.HashGroupByCost(node.left->est_card, node.est_card);
          phys->total_cost = child.node->total_cost + phys->node_cost;
          // Both marginalize algorithms emit groups sorted by the group
          // variables, so either one produces this order.
          phys->output_order = node.group_vars;
          phys->left = child.node->Clone();
          out.push_back(Candidate{std::move(phys)});
        }
        if (allow_sort) {
          const bool presorted =
              IsOrderPrefix(node.group_vars, child.node->output_order);
          auto phys = MakeNode(PlanNodeKind::kGroupBy, &node);
          phys->agg = AggAlgorithm::kSort;
          phys->skip_sort_input = presorted;
          phys->node_cost =
              cost_model_.SortGroupByCost(node.left->est_card, presorted);
          phys->total_cost = child.node->total_cost + phys->node_cost;
          phys->output_order = node.group_vars;
          phys->left = std::move(child.node);
          out.push_back(Candidate{std::move(phys)});
        }
      }
      break;
    }

    case PlanNodeKind::kJoin: {
      // Joins reset the fold context: contributions from below a join reach
      // any enclosing fold only through this join's own emission order.
      MPFDB_ASSIGN_OR_RETURN(std::vector<Candidate> lefts,
                             Enumerate(*node.left, nullptr));
      MPFDB_ASSIGN_OR_RETURN(std::vector<Candidate> rights,
                             Enumerate(*node.right, nullptr));
      const std::vector<std::string> shared =
          varset::Intersect(node.left->output_vars, node.right->output_vars);
      // kLeapfrog never applies to binary joins (it is the multiway node's
      // only algorithm), so forcing it leaves binary nodes in auto mode.
      const bool forced = options_.force_join != JoinAlgorithm::kAuto &&
                          options_.force_join != JoinAlgorithm::kLeapfrog;
      const bool allow_hash =
          !forced || options_.force_join == JoinAlgorithm::kHash;
      const bool allow_nl =
          !forced || options_.force_join == JoinAlgorithm::kNestedLoop;
      // Sort-merge reorders emission relative to hash. Admissible when
      // forced (caller accepts the reordering, as the old global knob did),
      // or in auto mode when (a) there is no finite budget (sorts cannot
      // spill) and (b) the reordering is provably bit-invisible: Add is
      // order-invariant, or every fold group of the nearest enclosing
      // GroupBy is contained in a single merge run (group vars ⊇ shared
      // vars), in which case the per-group contribution order matches hash
      // exactly (stable sorts keep equal-key rows in arrival order).
      const bool allow_sm =
          forced ? options_.force_join == JoinAlgorithm::kSortMerge
                 : (!shared.empty() && options_.memory_limit == 0 &&
                    (semiring_.AddIsOrderInvariant() ||
                     (fold_vars != nullptr &&
                      varset::IsSubset(shared, *fold_vars))));
      const double l_card = node.left->est_card;
      const double r_card = node.right->est_card;
      for (auto& lc : lefts) {
        for (auto& rc : rights) {
          double child_cost = lc.node->total_cost + rc.node->total_cost;
          if (allow_hash) {
            auto phys = MakeNode(PlanNodeKind::kJoin, &node);
            phys->join = JoinAlgorithm::kHash;
            phys->node_cost = cost_model_.HashJoinCost(l_card, r_card);
            phys->total_cost = child_cost + phys->node_cost;
            // Hash join probes the left stream in order and emits each left
            // row's matches contiguously, so the left order survives.
            phys->output_order = lc.node->output_order;
            phys->left = lc.node->Clone();
            phys->right = rc.node->Clone();
            out.push_back(Candidate{std::move(phys)});
          }
          if (allow_sm) {
            const bool lp = IsOrderPrefix(shared, lc.node->output_order);
            const bool rp = IsOrderPrefix(shared, rc.node->output_order);
            auto phys = MakeNode(PlanNodeKind::kJoin, &node);
            phys->join = JoinAlgorithm::kSortMerge;
            phys->skip_sort_left = lp;
            phys->skip_sort_right = rp;
            phys->node_cost =
                cost_model_.SortMergeJoinCost(l_card, r_card, lp, rp);
            phys->total_cost = child_cost + phys->node_cost;
            phys->output_order = shared;
            phys->left = lc.node->Clone();
            phys->right = rc.node->Clone();
            out.push_back(Candidate{std::move(phys)});
          }
          if (allow_nl) {
            auto phys = MakeNode(PlanNodeKind::kJoin, &node);
            phys->join = JoinAlgorithm::kNestedLoop;
            phys->node_cost = cost_model_.NestedLoopJoinCost(l_card, r_card);
            phys->total_cost = child_cost + phys->node_cost;
            // Same left-major emission as hash join.
            phys->output_order = lc.node->output_order;
            phys->left = lc.node->Clone();
            phys->right = rc.node->Clone();
            out.push_back(Candidate{std::move(phys)});
          }
        }
      }
      break;
    }

    case PlanNodeKind::kMultiwayJoin: {
      // The n-ary worst-case-optimal join has exactly one physical
      // implementation (LeapFrog TrieJoin), so no algorithm enumeration
      // happens here: each child contributes its cheapest subtree and the
      // node claims the logical variable order as its output order (LFTJ
      // emits tuples lexicographically in that order). Binary force_join
      // overrides deliberately do not decompose the node — the FAQ planner
      // only emits it for cyclic cores, where no binary equivalent exists.
      std::vector<double> input_cards;
      input_cards.reserve(node.children.size());
      auto phys = MakeNode(PlanNodeKind::kMultiwayJoin, &node);
      phys->join = JoinAlgorithm::kLeapfrog;
      double child_cost = 0.0;
      for (const auto& logical_child : node.children) {
        MPFDB_ASSIGN_OR_RETURN(std::vector<Candidate> subs,
                               Enumerate(*logical_child, nullptr));
        size_t best = 0;
        for (size_t i = 1; i < subs.size(); ++i) {
          if (subs[i].node->total_cost < subs[best].node->total_cost) {
            best = i;
          }
        }
        input_cards.push_back(logical_child->est_card);
        child_cost += subs[best].node->total_cost;
        phys->children.push_back(std::move(subs[best].node));
      }
      phys->node_cost =
          cost_model_.MultiwayJoinCost(input_cards, node.est_card);
      phys->total_cost = child_cost + phys->node_cost;
      phys->output_order = node.output_vars;
      out.push_back(Candidate{std::move(phys)});
      break;
    }
  }
  if (out.empty()) {
    return Status::Internal("no physical candidate for plan node");
  }
  Prune(&out);
  return out;
}

namespace {

void ExplainPhysRec(const PhysicalPlanNode& phys, int depth,
                    std::ostringstream& os) {
  os << std::string(static_cast<size_t>(depth) * 2, ' ');
  const PlanNode& logical = *phys.logical;
  switch (phys.kind) {
    case PlanNodeKind::kScan:
      os << "Scan(" << logical.table_name << ")";
      break;
    case PlanNodeKind::kIndexScan: {
      // A fused leaf's logical node is the kSelect whose scan it absorbed.
      const std::string& table = phys.index_fused
                                     ? logical.left->table_name
                                     : logical.table_name;
      os << "IndexScan(" << table << ", " << logical.select_var << "="
         << logical.select_value << ")";
      break;
    }
    case PlanNodeKind::kSelect:
      os << "Select(" << logical.select_var << "=" << logical.select_value
         << ")";
      break;
    case PlanNodeKind::kJoin:
      os << "ProductJoin";
      break;
    case PlanNodeKind::kMultiwayJoin:
      os << "MultiwayJoin[" << phys.children.size() << "]";
      break;
    case PlanNodeKind::kGroupBy:
      os << "GroupBy{" << FormatVarList(logical.group_vars) << "}";
      break;
    case PlanNodeKind::kProject:
      os << "Project{" << FormatVarList(logical.group_vars) << "}";
      break;
    case PlanNodeKind::kMeasureFilter:
      os << "MeasureFilter(f " << CompareOpSymbol(logical.having.op) << " "
         << logical.having.threshold << ")";
      break;
  }
  std::vector<std::string> notes;
  if (phys.kind == PlanNodeKind::kJoin ||
      phys.kind == PlanNodeKind::kMultiwayJoin) {
    notes.push_back(std::string("join=") + JoinAlgorithmName(phys.join));
    if (phys.skip_sort_left) notes.push_back("presorted_left");
    if (phys.skip_sort_right) notes.push_back("presorted_right");
  }
  if (phys.kind == PlanNodeKind::kGroupBy) {
    notes.push_back(std::string("agg=") + AggAlgorithmName(phys.agg));
    if (phys.skip_sort_input) notes.push_back("presorted");
  }
  if (phys.index_fused) notes.push_back("fused");
  if (!phys.output_order.empty()) {
    notes.push_back("order=(" + FormatVarList(phys.output_order) + ")");
  }
  {
    std::ostringstream note;
    note << "est=" << logical.est_card << " cost=" << phys.total_cost;
    notes.push_back(note.str());
  }
  os << "  [" << JoinStrings(notes, " ") << "]\n";
  if (phys.left != nullptr) ExplainPhysRec(*phys.left, depth + 1, os);
  if (phys.right != nullptr) ExplainPhysRec(*phys.right, depth + 1, os);
  for (const auto& child : phys.children) {
    ExplainPhysRec(*child, depth + 1, os);
  }
}

}  // namespace

std::string ExplainPhysicalPlan(const PhysicalPlanNode& root) {
  std::ostringstream os;
  ExplainPhysRec(root, 0, os);
  return os.str();
}

}  // namespace mpfdb
