#include "plan/plan.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>

#include "cost/agm.h"
#include "util/strings.h"

namespace mpfdb {

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
  }
  return "?";
}

bool EvalCompare(CompareOp op, double lhs, double rhs) {
  switch (op) {
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
  }
  return false;
}

StatusOr<std::vector<std::string>> MpfViewDef::AllVariables(
    const Catalog& catalog) const {
  std::vector<std::string> vars;
  for (const auto& rel : relations) {
    MPFDB_ASSIGN_OR_RETURN(TablePtr table, catalog.GetTable(rel));
    vars = varset::Union(vars, table->schema().variables());
  }
  return vars;
}

std::string MpfQuerySpec::ToString(const MpfViewDef& view) const {
  std::ostringstream os;
  os << "select " << Join(group_vars, ", ") << ", "
     << view.semiring.aggregate_name() << "(f) from " << view.name;
  if (!selections.empty()) {
    os << " where ";
    for (size_t i = 0; i < selections.size(); ++i) {
      if (i > 0) os << " and ";
      os << selections[i].var << "=" << selections[i].value;
    }
  }
  os << " group by " << Join(group_vars, ", ");
  if (having.has_value()) {
    os << " having f " << CompareOpSymbol(having->op) << " "
       << having->threshold;
  }
  return os.str();
}

int PlanNode::JoinCount() const {
  int count =
      (kind == PlanNodeKind::kJoin || kind == PlanNodeKind::kMultiwayJoin) ? 1
                                                                           : 0;
  if (left) count += left->JoinCount();
  if (right) count += right->JoinCount();
  for (const auto& child : children) count += child->JoinCount();
  return count;
}

int PlanNode::GroupByCount() const {
  int count = kind == PlanNodeKind::kGroupBy ? 1 : 0;
  if (left) count += left->GroupByCount();
  if (right) count += right->GroupByCount();
  for (const auto& child : children) count += child->GroupByCount();
  return count;
}

namespace {

// True if the subtree contains a join node.
bool HasJoin(const PlanNode& node) { return node.JoinCount() > 0; }

}  // namespace

bool PlanNode::IsLinear() const {
  // A plan is (left-)linear if no join's right operand contains a join. A
  // multiway join is inherently nonlinear (every operand is a peer).
  if (kind == PlanNodeKind::kMultiwayJoin) return false;
  if (kind == PlanNodeKind::kJoin) {
    if (right && HasJoin(*right)) return false;
  }
  if (left && !left->IsLinear()) return false;
  if (right && !right->IsLinear()) return false;
  return true;
}

std::vector<std::string> PlanNode::BaseTables() const {
  std::vector<std::string> tables;
  if (kind == PlanNodeKind::kScan || kind == PlanNodeKind::kIndexScan) {
    tables.push_back(table_name);
    return tables;
  }
  if (left) {
    auto l = left->BaseTables();
    tables.insert(tables.end(), l.begin(), l.end());
  }
  if (right) {
    auto r = right->BaseTables();
    tables.insert(tables.end(), r.begin(), r.end());
  }
  for (const auto& child : children) {
    auto c = child->BaseTables();
    tables.insert(tables.end(), c.begin(), c.end());
  }
  return tables;
}

StatusOr<double> PlanBuilder::DomainProduct(
    const std::vector<std::string>& vars) const {
  double product = 1.0;
  for (const auto& var : vars) {
    MPFDB_ASSIGN_OR_RETURN(int64_t size, catalog_.DomainSize(var));
    product *= static_cast<double>(size);
  }
  return product;
}

StatusOr<PlanPtr> PlanBuilder::Scan(const std::string& table_name) const {
  MPFDB_ASSIGN_OR_RETURN(TablePtr table, catalog_.GetTable(table_name));
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNodeKind::kScan;
  node->table_name = table_name;
  node->output_vars = table->schema().variables();
  node->est_card = static_cast<double>(table->NumRows());
  node->est_cost = cost_model_.ScanCost(node->est_card);
  return PlanPtr(node);
}

StatusOr<PlanPtr> PlanBuilder::IndexScan(const std::string& table_name,
                                         const std::string& var,
                                         VarValue value) const {
  MPFDB_ASSIGN_OR_RETURN(TablePtr table, catalog_.GetTable(table_name));
  if (catalog_.GetIndex(table_name, var) == nullptr) {
    return Status::FailedPrecondition("no index on " + table_name + "(" + var +
                                      ")");
  }
  MPFDB_ASSIGN_OR_RETURN(int64_t domain, catalog_.DomainSize(var));
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNodeKind::kIndexScan;
  node->table_name = table_name;
  node->select_var = var;
  node->select_value = value;
  node->output_vars = table->schema().variables();
  node->est_card = std::max(
      1.0, static_cast<double>(table->NumRows()) / static_cast<double>(domain));
  node->est_cost = cost_model_.IndexScanCost(node->est_card);
  return PlanPtr(node);
}

StatusOr<PlanPtr> PlanBuilder::Select(PlanPtr child, const std::string& var,
                                      VarValue value) const {
  if (child == nullptr) return Status::InvalidArgument("null child");
  if (!varset::Contains(child->output_vars, var)) {
    return Status::InvalidArgument("selection variable '" + var +
                                   "' not produced by child plan");
  }
  MPFDB_ASSIGN_OR_RETURN(int64_t domain, catalog_.DomainSize(var));
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNodeKind::kSelect;
  node->left = child;
  node->select_var = var;
  node->select_value = value;
  node->output_vars = child->output_vars;
  node->est_card =
      std::max(1.0, child->est_card / static_cast<double>(domain));
  node->est_cost = child->est_cost + cost_model_.SelectCost(child->est_card);
  return PlanPtr(node);
}

StatusOr<PlanPtr> PlanBuilder::Join(PlanPtr left, PlanPtr right) const {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("null join operand");
  }
  std::vector<std::string> shared =
      varset::Intersect(left->output_vars, right->output_vars);
  std::vector<std::string> out =
      varset::Union(left->output_vars, right->output_vars);
  MPFDB_ASSIGN_OR_RETURN(double shared_domain, DomainProduct(shared));
  MPFDB_ASSIGN_OR_RETURN(double out_domain, DomainProduct(out));

  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNodeKind::kJoin;
  node->left = left;
  node->right = right;
  node->output_vars = std::move(out);
  // Independence estimate capped by the output domain product: a product
  // join can never produce more rows than the cross product of the output
  // variables' domains (the result is a functional relation).
  double independence = left->est_card * right->est_card / shared_domain;
  node->est_card = std::max(1.0, std::min(independence, out_domain));
  node->est_cost = left->est_cost + right->est_cost +
                   cost_model_.JoinCost(left->est_card, right->est_card);
  return PlanPtr(node);
}

StatusOr<PlanPtr> PlanBuilder::MultiwayJoin(
    std::vector<PlanPtr> children, std::vector<std::string> var_order) const {
  if (children.size() < 2) {
    return Status::InvalidArgument("multiway join needs at least 2 children");
  }
  std::vector<std::string> covered;
  std::vector<agm::Edge> edges;
  std::vector<double> input_cards;
  for (const PlanPtr& child : children) {
    if (child == nullptr) return Status::InvalidArgument("null join operand");
    covered = varset::Union(covered, child->output_vars);
    edges.push_back(agm::Edge{child->output_vars, child->est_card});
    input_cards.push_back(child->est_card);
  }
  if (!varset::SetEquals(var_order, covered)) {
    return Status::InvalidArgument(
        "multiway join variable order must be a permutation of the children's "
        "variables");
  }
  MPFDB_ASSIGN_OR_RETURN(double out_domain, DomainProduct(var_order));

  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNodeKind::kMultiwayJoin;
  node->output_vars = std::move(var_order);
  // The AGM bound is the worst case; the independence estimate over all
  // pairwise-shared variables is the expectation. Take the smaller — on
  // cyclic shapes AGM is far below independence-capped-by-domain, which is
  // exactly the improvement that justifies the multiway node.
  double agm = agm::AgmBound(node->output_vars, edges);
  node->est_card = std::max(1.0, std::min(agm, out_domain));
  double child_cost = 0.0;
  for (const PlanPtr& child : children) child_cost += child->est_cost;
  node->est_cost =
      child_cost + cost_model_.MultiwayJoinCost(input_cards, node->est_card);
  node->children = std::move(children);
  return PlanPtr(node);
}

StatusOr<PlanPtr> PlanBuilder::GroupBy(
    PlanPtr child, std::vector<std::string> group_vars) const {
  if (child == nullptr) return Status::InvalidArgument("null child");
  for (const auto& var : group_vars) {
    if (!varset::Contains(child->output_vars, var)) {
      return Status::InvalidArgument("group variable '" + var +
                                     "' not produced by child plan");
    }
  }
  MPFDB_ASSIGN_OR_RETURN(double group_domain, DomainProduct(group_vars));
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNodeKind::kGroupBy;
  node->left = child;
  node->group_vars = std::move(group_vars);
  node->output_vars = node->group_vars;
  node->est_card = std::max(1.0, std::min(child->est_card, group_domain));
  node->est_cost = child->est_cost + cost_model_.GroupByCost(child->est_card);
  return PlanPtr(node);
}

StatusOr<PlanPtr> PlanBuilder::Project(
    PlanPtr child, std::vector<std::string> keep_vars) const {
  if (child == nullptr) return Status::InvalidArgument("null child");
  for (const auto& var : keep_vars) {
    if (!varset::Contains(child->output_vars, var)) {
      return Status::InvalidArgument("projected variable '" + var +
                                     "' not produced by child plan");
    }
  }
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNodeKind::kProject;
  node->left = child;
  node->group_vars = std::move(keep_vars);
  node->output_vars = node->group_vars;
  node->est_card = child->est_card;
  node->est_cost = child->est_cost + cost_model_.SelectCost(child->est_card);
  return PlanPtr(node);
}

StatusOr<PlanPtr> PlanBuilder::MeasureFilter(PlanPtr child,
                                             HavingClause having) const {
  if (child == nullptr) return Status::InvalidArgument("null child");
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNodeKind::kMeasureFilter;
  node->left = child;
  node->having = having;
  node->output_vars = child->output_vars;
  node->est_card = std::max(1.0, child->est_card / 3.0);
  node->est_cost = child->est_cost + cost_model_.SelectCost(child->est_card);
  return PlanPtr(node);
}

std::string FormatVarList(const std::vector<std::string>& vars) {
  auto needs_quoting = [](const std::string& name) {
    if (name.empty()) return true;
    for (char c : name) {
      if (c == ',' || c == '(' || c == ')' || c == '{' || c == '}' ||
          c == '"' || c == '\\' || std::isspace(static_cast<unsigned char>(c))) {
        return true;
      }
    }
    return false;
  };
  std::string out;
  for (size_t i = 0; i < vars.size(); ++i) {
    if (i > 0) out += ",";
    if (!needs_quoting(vars[i])) {
      out += vars[i];
      continue;
    }
    out += '"';
    for (char c : vars[i]) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
  }
  return out;
}

namespace {

void ExplainRec(const PlanNode& node, int depth, std::ostringstream& os) {
  os << std::string(static_cast<size_t>(depth) * 2, ' ');
  switch (node.kind) {
    case PlanNodeKind::kScan:
      os << "Scan(" << node.table_name << ")";
      break;
    case PlanNodeKind::kIndexScan:
      os << "IndexScan(" << node.table_name << ", " << node.select_var << "="
         << node.select_value << ")";
      break;
    case PlanNodeKind::kSelect:
      os << "Select(" << node.select_var << "=" << node.select_value << ")";
      break;
    case PlanNodeKind::kJoin:
      os << "ProductJoin";
      break;
    case PlanNodeKind::kMultiwayJoin:
      os << "MultiwayJoin[" << node.children.size() << "]";
      break;
    case PlanNodeKind::kGroupBy:
      os << "GroupBy{" << FormatVarList(node.group_vars) << "}";
      break;
    case PlanNodeKind::kProject:
      os << "Project{" << FormatVarList(node.group_vars) << "}";
      break;
    case PlanNodeKind::kMeasureFilter:
      os << "MeasureFilter(f " << CompareOpSymbol(node.having.op) << " "
         << node.having.threshold << ")";
      break;
  }
  os << "  [vars=(" << FormatVarList(node.output_vars) << ") card="
     << node.est_card << " cost=" << node.est_cost << "]\n";
  if (node.left) ExplainRec(*node.left, depth + 1, os);
  if (node.right) ExplainRec(*node.right, depth + 1, os);
  for (const auto& child : node.children) ExplainRec(*child, depth + 1, os);
}

void SignatureRec(const PlanNode& node, std::ostringstream& os) {
  switch (node.kind) {
    case PlanNodeKind::kScan:
      os << "Scan(" << node.table_name << ")";
      return;
    case PlanNodeKind::kIndexScan:
      os << "IndexScan(" << node.table_name << "," << node.select_var << "="
         << node.select_value << ")";
      return;
    case PlanNodeKind::kSelect:
      os << "Select{" << node.select_var << "=" << node.select_value << "}(";
      SignatureRec(*node.left, os);
      os << ")";
      return;
    case PlanNodeKind::kJoin:
      os << "Join(";
      SignatureRec(*node.left, os);
      os << ", ";
      SignatureRec(*node.right, os);
      os << ")";
      return;
    case PlanNodeKind::kMultiwayJoin:
      os << "MultiwayJoin{" << FormatVarList(node.output_vars) << "}(";
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) os << ", ";
        SignatureRec(*node.children[i], os);
      }
      os << ")";
      return;
    case PlanNodeKind::kGroupBy:
      os << "GroupBy{" << FormatVarList(node.group_vars) << "}(";
      SignatureRec(*node.left, os);
      os << ")";
      return;
    case PlanNodeKind::kProject:
      os << "Project{" << FormatVarList(node.group_vars) << "}(";
      SignatureRec(*node.left, os);
      os << ")";
      return;
    case PlanNodeKind::kMeasureFilter:
      os << "MeasureFilter{" << CompareOpSymbol(node.having.op)
         << node.having.threshold << "}(";
      SignatureRec(*node.left, os);
      os << ")";
      return;
  }
}

}  // namespace

std::string ExplainPlan(const PlanNode& root) {
  std::ostringstream os;
  ExplainRec(root, 0, os);
  return os.str();
}

std::string PlanSignature(const PlanNode& root) {
  std::ostringstream os;
  SignatureRec(root, os);
  return os.str();
}

}  // namespace mpfdb
