#ifndef MPFDB_PLAN_PLAN_H_
#define MPFDB_PLAN_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "semiring/semiring.h"
#include "storage/catalog.h"
#include "storage/schema.h"
#include "util/status.h"

namespace mpfdb {

// Definition of an MPF view (the paper's `create mpfview`): a product join of
// named base functional relations under one semiring.
struct MpfViewDef {
  std::string name;
  std::vector<std::string> relations;
  Semiring semiring = Semiring::SumProduct();

  // Union of the variables of all base relations, in first-seen order.
  StatusOr<std::vector<std::string>> AllVariables(const Catalog& catalog) const;
};

// An equality predicate var = value appearing in a query's WHERE clause.
struct QuerySelection {
  std::string var;
  VarValue value;
};

// A predicate on the aggregated measure (the HAVING clause of the
// constrained-range query form, Section 3.1). Applied at the plan root,
// after the final marginalization.
enum class CompareOp { kLt, kLe, kGt, kGe, kEq, kNe };

const char* CompareOpSymbol(CompareOp op);
bool EvalCompare(CompareOp op, double lhs, double rhs);

struct HavingClause {
  CompareOp op = CompareOp::kLt;
  double threshold = 0;
};

// An MPF query over a view:
//   select X, AGG(f) from view [where var=c ...] group by X
// Covers the Basic, Restricted-answer (selection on an X variable) and
// Constrained-domain (selection on a non-X variable) forms of Section 3.1.
struct MpfQuerySpec {
  std::vector<std::string> group_vars;  // the query variables X
  std::vector<QuerySelection> selections;
  // Constrained-range filter on the aggregated measure, if any.
  std::optional<HavingClause> having;

  std::string ToString(const MpfViewDef& view) const;
};

// Logical plan node. Plans are immutable trees shared across the dynamic
// programming tables of the optimizers, hence shared_ptr-to-const.
// kProject drops variable columns *without* aggregation; it is only legal
// when the retained variables functionally determine the dropped ones
// (Proposition 1 of the paper, via declared primary keys), so no two rows
// collapse. The optimizers that use it verify that precondition.
// kMeasureFilter filters rows on the measure value (the HAVING clause); it
// is only placed at the plan root, above the final marginalization.
// kIndexScan is a fused scan + equality selection served by a hash index
// (select_var/select_value name the lookup key).
// kMultiwayJoin is an n-ary product join over `children`, evaluated by a
// worst-case-optimal algorithm (LeapFrog TrieJoin); `output_vars` doubles as
// the global variable order the trie iterators walk, so it is ordering-
// significant, unlike the set-valued output_vars of binary nodes.
enum class PlanNodeKind {
  kScan,
  kIndexScan,
  kSelect,
  kJoin,
  kMultiwayJoin,
  kGroupBy,
  kProject,
  kMeasureFilter,
};

struct PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

struct PlanNode {
  PlanNodeKind kind;

  // kScan.
  std::string table_name;

  // kJoin uses left+right; kSelect and kGroupBy use left only.
  PlanPtr left;
  PlanPtr right;

  // kMultiwayJoin: the n-ary operand list (left/right stay null).
  std::vector<PlanPtr> children;

  // kGroupBy / kProject: variables retained.
  std::vector<std::string> group_vars;

  // kSelect.
  std::string select_var;
  VarValue select_value = 0;

  // kMeasureFilter.
  HavingClause having;

  // Annotations, filled by PlanBuilder.
  std::vector<std::string> output_vars;
  double est_card = 0;   // estimated output cardinality
  double est_cost = 0;   // cumulative cost of the subtree

  // Number of join nodes in the subtree (for plan-shape assertions).
  int JoinCount() const;
  // Number of GroupBy nodes in the subtree.
  int GroupByCount() const;
  // Maximum chain of joins where some join node's right child is itself a
  // join: 0 for left-linear plans, >0 for bushy (nonlinear) plans.
  bool IsLinear() const;
  // Base table names referenced by the subtree, in scan order.
  std::vector<std::string> BaseTables() const;
};

// Builds annotated plan nodes: every constructor estimates output
// cardinality from catalog statistics and accumulates cost from the cost
// model. Cardinality estimation for functional relations uses the
// independence bound |L||R| / Π σ_v over shared variables v, capped by the
// domain product of the output variables.
class PlanBuilder {
 public:
  PlanBuilder(const Catalog& catalog, const CostModel& cost_model)
      : catalog_(catalog), cost_model_(cost_model) {}

  StatusOr<PlanPtr> Scan(const std::string& table_name) const;
  // Index-served equality scan; requires an index on (table, var) in the
  // catalog.
  StatusOr<PlanPtr> IndexScan(const std::string& table_name,
                              const std::string& var, VarValue value) const;
  StatusOr<PlanPtr> Select(PlanPtr child, const std::string& var,
                           VarValue value) const;
  StatusOr<PlanPtr> Join(PlanPtr left, PlanPtr right) const;
  // N-ary worst-case-optimal product join. `var_order` fixes the global
  // variable order the trie iterators walk (it must be a permutation of the
  // union of the children's output variables) and becomes the node's
  // output_vars verbatim. Cardinality is estimated with the AGM bound over
  // the children's (vars, est_card) hyperedges — the defining improvement
  // over the pairwise independence estimate on cyclic shapes.
  StatusOr<PlanPtr> MultiwayJoin(std::vector<PlanPtr> children,
                                 std::vector<std::string> var_order) const;
  StatusOr<PlanPtr> GroupBy(PlanPtr child,
                            std::vector<std::string> group_vars) const;
  // Column-dropping projection (Proposition 1); output cardinality is the
  // child's, cost is a linear pass.
  StatusOr<PlanPtr> Project(PlanPtr child,
                            std::vector<std::string> keep_vars) const;
  // Measure filter (HAVING); estimated selectivity 1/3, cost a linear pass.
  StatusOr<PlanPtr> MeasureFilter(PlanPtr child, HavingClause having) const;

  const Catalog& catalog() const { return catalog_; }
  const CostModel& cost_model() const { return cost_model_; }

  // Product of the domain sizes of `vars` (the paper's size estimate for a
  // complete functional relation over those variables).
  StatusOr<double> DomainProduct(const std::vector<std::string>& vars) const;

 private:
  const Catalog& catalog_;
  const CostModel& cost_model_;
};

// Comma-joins a variable-name list for EXPLAIN order/vars annotations.
// Generated workloads produce multi-character names (grid cells like
// "g2_11"), so any name that could make the rendering ambiguous — one
// containing a comma, parenthesis, brace, quote, or whitespace, or an empty
// name — is double-quoted with backslash escapes. Plain identifiers render
// bare, keeping existing golden strings stable.
std::string FormatVarList(const std::vector<std::string>& vars);

// Multi-line indented rendering of a plan with cardinality and cost
// annotations, in the spirit of EXPLAIN.
std::string ExplainPlan(const PlanNode& root);

// Compact single-line rendering, e.g.
// "GroupBy{wid}(Join(Scan(a), GroupBy{x,y}(Scan(b))))".
std::string PlanSignature(const PlanNode& root);

}  // namespace mpfdb

#endif  // MPFDB_PLAN_PLAN_H_
