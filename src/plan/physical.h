#ifndef MPFDB_PLAN_PHYSICAL_H_
#define MPFDB_PLAN_PHYSICAL_H_

#include <memory>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "plan/plan.h"
#include "semiring/semiring.h"
#include "storage/catalog.h"
#include "util/status.h"

// Logical -> physical planning pass.
//
// Every optimizer (cs, cs+, cs+nonlinear, ve(*)) produces a *logical*
// PlanNode tree: it fixes the marginalization order and join shape, but says
// nothing about how each operator runs. The PhysicalPlanner walks that tree
// bottom-up and picks, per node, a concrete algorithm:
//
//   - joins:    hash, sort-merge, or nested-loop (JoinAlgorithm)
//   - group-by: hash or sort marginalize (AggAlgorithm)
//   - Select(Scan(t), v=c) may fuse into an IndexScan when t has an index
//     on v (the catalog's HashIndex stores row ids in table order, so the
//     fused scan emits exactly the rows Select(Scan) would, in order)
//
// Choices are driven by the CostModel's per-algorithm costs plus
// Selinger-style *interesting orders*: each candidate sub-plan advertises
// the variable sequence its output is sorted by (sort-merge join output is
// sorted by the shared variables; either marginalize emits groups sorted by
// the group variables; hash/nested-loop joins and streaming unary operators
// propagate the left/child order). A downstream sort-merge join or
// sort-marginalize whose key sequence is a prefix of the incoming order
// skips its own sort (the skip_sort_* flags below); skipped sorts are free
// in the cost model, which is how order-producing plans win.
//
// Bit-identity. The planner only ever picks algorithms that produce results
// bit-identical to the all-hash baseline:
//   - Agg: HashMarginalize folds each group in arrival order and emits
//     groups sorted by key; a *stable* sort-marginalize does exactly the
//     same, so the agg choice is always free.
//   - Hash and nested-loop joins emit identical sequences (left-major, right
//     matches in arrival order), so that choice is always free too.
//   - Sort-merge join reorders emission. Under semirings whose Add is
//     order-invariant (min/max based — see Semiring::AddIsOrderInvariant)
//     that never matters. Under sum-based semirings it is admissible only
//     when every output row's downstream fold is confluent: the nearest
//     enclosing GroupBy — reached through streaming unary operators only —
//     must group by a superset of the join's shared variables, so each
//     fold group receives the same multiset of contributions in the same
//     per-group relative order regardless of the merge emission order.
//     Joins reset this fold context for their children.
//   - Memory rule: sort-based operators cannot spill. When the planner sees
//     a finite memory limit it selects hash everywhere in auto mode, so
//     governed queries keep their spill-degradation behavior (and the spill
//     path's partition-major emission can never invalidate a claimed order,
//     because orders are only consumed by sort operators).
//
// Force overrides (ExecOptions::join / agg != kAuto) bypass cost and
// admissibility entirely — they exist for ablation benchmarks and tests.
namespace mpfdb {

// Physical algorithm for a product-join node. kAuto is only meaningful in
// ExecOptions / PhysicalPlannerOptions ("let the planner choose per node");
// a finished physical plan never contains kAuto. kLeapfrog is the
// worst-case-optimal trie join; it is the only implementation of the n-ary
// kMultiwayJoin logical node and never applies to binary joins, so the
// binary force overrides leave it untouched.
enum class JoinAlgorithm {
  kAuto,
  kHash,
  kSortMerge,
  kNestedLoop,
  kLeapfrog,
};

// Physical algorithm for a marginalizing group-by node. Same kAuto contract
// as JoinAlgorithm.
enum class AggAlgorithm {
  kAuto,
  kHash,
  kSort,
};

const char* JoinAlgorithmName(JoinAlgorithm algorithm);
const char* AggAlgorithmName(AggAlgorithm algorithm);

// One node of a physical plan. Mirrors the logical tree (one physical node
// per logical node), except that a fused index scan collapses a
// Select(Scan) pair into a single leaf. `logical` always points at the
// logical node this physical node implements — for a fused leaf that is the
// kSelect node (whose left child is the absorbed kScan).
struct PhysicalPlanNode {
  // kind is usually logical->kind; kIndexScan when index fusion collapsed a
  // Select(Scan) pair (then logical->kind == kSelect).
  PlanNodeKind kind = PlanNodeKind::kScan;
  const PlanNode* logical = nullptr;
  std::unique_ptr<PhysicalPlanNode> left;
  std::unique_ptr<PhysicalPlanNode> right;
  // kMultiwayJoin operands (left/right stay null).
  std::vector<std::unique_ptr<PhysicalPlanNode>> children;

  // Algorithm choices. Meaningful only for the matching kind.
  JoinAlgorithm join = JoinAlgorithm::kHash;  // kJoin
  AggAlgorithm agg = AggAlgorithm::kHash;     // kGroupBy
  bool index_fused = false;  // kIndexScan produced by Select(Scan) fusion

  // Interesting orders: the variable sequence this node's output is sorted
  // by (lexicographically, by VarValue), empty when unordered.
  std::vector<std::string> output_order;
  // Sort-merge join: input already sorted by the shared variables, skip the
  // (stable) sort of that side.
  bool skip_sort_left = false;
  bool skip_sort_right = false;
  // Sort marginalize: input already sorted by the group variables.
  bool skip_sort_input = false;

  // Physical cost of this node alone and cumulative for the subtree, from
  // the planner's CostModel (not comparable to logical est_cost, which the
  // optimizers computed with their own model).
  double node_cost = 0.0;
  double total_cost = 0.0;

  std::unique_ptr<PhysicalPlanNode> Clone() const;
};

struct PhysicalPlannerOptions {
  // kAuto = per-node cost-based choice; anything else forces that algorithm
  // on every node of the matching kind (admissibility checks are skipped —
  // forcing sort-merge under a sum semiring can legitimately change result
  // bits, exactly like the pre-physical-planner global knob did).
  JoinAlgorithm force_join = JoinAlgorithm::kAuto;
  AggAlgorithm force_agg = AggAlgorithm::kAuto;
  // Planner-visible memory budget in bytes; 0 = unbounded. Finite budgets
  // restrict auto mode to hash operators (they can spill; sorts cannot).
  size_t memory_limit = 0;
  // Allow Select(Scan) -> IndexScan fusion when the catalog has an index.
  bool allow_index_fusion = true;
  // Cost MPH-backed catalog indexes with CostModel::PerfectIndexScanCost
  // (cheaper than the generic index lookup). Off = every index is costed
  // generically; the access paths themselves are unchanged.
  bool mph_indexes = true;
};

// Bottom-up cost-based physical planner. Stateless apart from the borrowed
// catalog / cost model / semiring, all of which must outlive the planner.
class PhysicalPlanner {
 public:
  PhysicalPlanner(const Catalog& catalog, const CostModel& cost_model,
                  Semiring semiring, PhysicalPlannerOptions options);

  // Plans the whole logical tree. Returns the chosen physical tree; every
  // join/agg node carries a concrete (non-kAuto) algorithm.
  StatusOr<std::unique_ptr<PhysicalPlanNode>> PlanTree(
      const PlanNode& root) const;

 private:
  struct Candidate;

  StatusOr<std::vector<Candidate>> Enumerate(
      const PlanNode& node, const std::vector<std::string>* fold_vars) const;
  static void Prune(std::vector<Candidate>* candidates);
  // Index-lookup cost for `var` on `table`: the perfect-hash rate when the
  // registered index is MPH-backed (and the knob is on), else the generic
  // index rate.
  double IndexLookupCost(const std::string& table, const std::string& var,
                         double output_card) const;

  const Catalog& catalog_;
  const CostModel& cost_model_;
  Semiring semiring_;
  PhysicalPlannerOptions options_;
};

// Renders the physical tree, two-space indented, one node per line:
//   GroupBy{y}  [agg=sort presorted est=120 cost=340]
//     ProductJoin  [join=sort_merge order=(y) est=4000 cost=220]
std::string ExplainPhysicalPlan(const PhysicalPlanNode& root);

}  // namespace mpfdb

#endif  // MPFDB_PLAN_PHYSICAL_H_
