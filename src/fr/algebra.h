#ifndef MPFDB_FR_ALGEBRA_H_
#define MPFDB_FR_ALGEBRA_H_

#include <memory>
#include <string>
#include <vector>

#include "plan/plan.h"
#include "semiring/semiring.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "util/status.h"

namespace mpfdb::fr {

// Table-at-a-time reference implementation of the paper's extended relational
// algebra over functional relations (Sections 2 and 6). The physical executor
// in src/exec implements the same operations operator-at-a-time; Belief
// Propagation and VE-cache (src/workload) use these directly, since they are
// whole-table reductions by nature.
//
// All results are sorted lexicographically on their variable columns so that
// equality of functional relations is plain row-by-row equality.

// Product join (Definition 2): natural join on shared variables with the
// result measure Multiply(a.f, b.f). With no shared variables this is the
// cross product, as required when combining independent factors.
StatusOr<TablePtr> ProductJoin(const Table& a, const Table& b,
                               const Semiring& semiring,
                               const std::string& result_name);

// Like ProductJoin but combines measures with Divide; used by the update
// semijoin of Definition 6. Requires semiring.HasDivision().
StatusOr<TablePtr> DivisionJoin(const Table& a, const Table& b,
                                const Semiring& semiring,
                                const std::string& result_name);

// Marginalization (the GroupBy of Definition 3): groups on `group_vars`
// (which must all appear in t's schema) and reduces the measure with Add.
// With empty `group_vars` the result is a single row over an empty schema.
StatusOr<TablePtr> Marginalize(const Table& t,
                               const std::vector<std::string>& group_vars,
                               const Semiring& semiring,
                               const std::string& result_name);

// Equality selection var = value; schema unchanged.
StatusOr<TablePtr> Select(const Table& t, const std::string& var,
                          VarValue value, const std::string& result_name);

// Filter on the measure value (HAVING clause); schema unchanged.
StatusOr<TablePtr> FilterMeasure(const Table& t, const HavingClause& having,
                                 const std::string& result_name);

// Product semijoin (Definition 6): t ⋉* s = t ⨝* GroupBy_U(s), where
// U = Var(t) ∩ Var(s). Reduces t's measure by s's marginal over the shared
// variables. U must be non-empty.
StatusOr<TablePtr> ProductSemijoin(const Table& t, const Table& s,
                                   const Semiring& semiring,
                                   const std::string& result_name);

// Update semijoin (Definition 6): t ⋉ s = t ⨝* (GroupBy_U(s) ⨝÷ GroupBy_U(t)).
// The backward-pass Belief Propagation update: multiplies t by s's marginal
// and divides out the marginal t itself previously propagated, so values are
// not absorbed twice. Requires semiring.HasDivision() and non-empty U.
StatusOr<TablePtr> UpdateSemijoin(const Table& t, const Table& s,
                                  const Semiring& semiring,
                                  const std::string& result_name);

// Verifies the FD vars -> measure of Definition 1: no two rows may share the
// same variable values. Returns FailedPrecondition naming the first violation.
Status CheckFunctionalDependency(const Table& t);

// True if t contains the entire cross product of its variables' domains
// (a "complete" functional relation).
StatusOr<bool> IsComplete(const Table& t, const Catalog& catalog);

// Rescales measures so they sum to 1 (sum-product semiring only); used to
// turn counts into probability distributions.
Status NormalizeMeasure(Table& t, const Semiring& semiring);

// Reference MPF evaluation (Definition 3): product-joins all of `relations`
// in the given order, applies the optional equality selections, then
// marginalizes onto `query_vars`. Exponential in the view's variable count —
// used as ground truth in tests and as the "no GDL optimization" baseline.
struct Selection {
  std::string var;
  VarValue value;
};

StatusOr<TablePtr> EvaluateNaiveMpf(const std::vector<TablePtr>& relations,
                                    const std::vector<std::string>& query_vars,
                                    const std::vector<Selection>& selections,
                                    const Semiring& semiring,
                                    const std::string& result_name);

// True if the two tables have identical schemas and identical sorted rows,
// with measures compared to within relative tolerance `tolerance`
// (|a - b| <= tolerance * max(1, |a|, |b|)).
bool TablesEqual(const Table& a, const Table& b, double tolerance = 1e-9);

}  // namespace mpfdb::fr

#endif  // MPFDB_FR_ALGEBRA_H_
