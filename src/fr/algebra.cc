#include "fr/algebra.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "exec/hash_table.h"

namespace mpfdb::fr {
namespace {

// The factored-relation operators key their hash tables on the raw bytes of
// a run of variable values; every output below is canonically re-sorted (or
// order-free), so the tables' iteration order is never observable.
size_t KeyBytes(const std::vector<VarValue>& key) {
  return key.size() * sizeof(VarValue);
}

std::vector<size_t> IndicesOf(const Schema& schema,
                              const std::vector<std::string>& names) {
  std::vector<size_t> indices;
  indices.reserve(names.size());
  for (const auto& name : names) {
    indices.push_back(*schema.IndexOf(name));
  }
  return indices;
}

void SortCanonical(Table& t) {
  std::vector<size_t> all(t.schema().arity());
  std::iota(all.begin(), all.end(), 0);
  t.SortByVariables(all);
}

// Shared implementation of ProductJoin / DivisionJoin; `divide` selects the
// measure combiner.
StatusOr<TablePtr> JoinImpl(const Table& a, const Table& b,
                            const Semiring& semiring,
                            const std::string& result_name, bool divide) {
  if (divide && !semiring.HasDivision()) {
    return Status::FailedPrecondition("semiring '" + semiring.name() +
                                      "' has no division");
  }
  const Schema& sa = a.schema();
  const Schema& sb = b.schema();
  std::vector<std::string> shared = varset::Intersect(sa.variables(), sb.variables());
  std::vector<std::string> out_vars = varset::Union(sa.variables(), sb.variables());
  Schema out_schema(out_vars, sa.measure_name());
  auto result = std::make_shared<Table>(result_name, out_schema);

  // Build on the smaller input, probe with the larger; for a division join
  // the asymmetry of Divide forces the roles to stay fixed, so we always
  // build on b there.
  const bool build_on_a = !divide && a.NumRows() < b.NumRows();
  const Table& build = build_on_a ? a : b;
  const Table& probe = build_on_a ? b : a;

  const std::vector<size_t> build_key = IndicesOf(build.schema(), shared);
  const std::vector<size_t> probe_key = IndicesOf(probe.schema(), shared);

  exec::SwissBytesTable<std::vector<size_t>> hash_table;
  hash_table.Reserve(build.NumRows());
  std::vector<VarValue> key(shared.size());
  for (size_t i = 0; i < build.NumRows(); ++i) {
    RowView row = build.Row(i);
    for (size_t k = 0; k < build_key.size(); ++k) key[k] = row.var(build_key[k]);
    hash_table.FindOrInsert(key.data(), KeyBytes(key), {}).first->push_back(i);
  }

  // Column mapping from (probe row, build row) to the output layout.
  // out_vars is Union(a.vars, b.vars) in a-then-b order; resolve each output
  // column to a (which_side, index) pair.
  struct Source {
    bool from_probe;
    size_t index;
  };
  std::vector<Source> sources;
  sources.reserve(out_vars.size());
  for (const auto& name : out_vars) {
    if (auto idx = probe.schema().IndexOf(name)) {
      sources.push_back(Source{true, *idx});
    } else {
      sources.push_back(Source{false, *build.schema().IndexOf(name)});
    }
  }

  std::vector<VarValue> out_row(out_vars.size());
  for (size_t i = 0; i < probe.NumRows(); ++i) {
    RowView prow = probe.Row(i);
    for (size_t k = 0; k < probe_key.size(); ++k) key[k] = prow.var(probe_key[k]);
    const std::vector<size_t>* matches =
        hash_table.Find(key.data(), KeyBytes(key));
    if (matches == nullptr) continue;
    for (size_t j : *matches) {
      RowView brow = build.Row(j);
      for (size_t c = 0; c < sources.size(); ++c) {
        out_row[c] = sources[c].from_probe ? prow.var(sources[c].index)
                                           : brow.var(sources[c].index);
      }
      double measure;
      if (divide) {
        // probe is a (the dividend), build is b (the divisor).
        measure = semiring.Divide(prow.measure, brow.measure);
      } else {
        measure = semiring.Multiply(prow.measure, brow.measure);
      }
      result->AppendRow(out_row, measure);
    }
  }
  SortCanonical(*result);
  return result;
}

}  // namespace

StatusOr<TablePtr> ProductJoin(const Table& a, const Table& b,
                               const Semiring& semiring,
                               const std::string& result_name) {
  return JoinImpl(a, b, semiring, result_name, /*divide=*/false);
}

StatusOr<TablePtr> DivisionJoin(const Table& a, const Table& b,
                                const Semiring& semiring,
                                const std::string& result_name) {
  return JoinImpl(a, b, semiring, result_name, /*divide=*/true);
}

StatusOr<TablePtr> Marginalize(const Table& t,
                               const std::vector<std::string>& group_vars,
                               const Semiring& semiring,
                               const std::string& result_name) {
  const Schema& schema = t.schema();
  for (const auto& name : group_vars) {
    if (!schema.HasVariable(name)) {
      return Status::InvalidArgument("group variable '" + name +
                                     "' not in relation " + t.name());
    }
  }
  Schema out_schema(group_vars, schema.measure_name());
  auto result = std::make_shared<Table>(result_name, out_schema);

  const std::vector<size_t> key_idx = IndicesOf(schema, group_vars);
  exec::SwissBytesTable<double> groups;
  groups.Reserve(t.NumRows());
  std::vector<VarValue> key(group_vars.size());
  for (size_t i = 0; i < t.NumRows(); ++i) {
    RowView row = t.Row(i);
    for (size_t k = 0; k < key_idx.size(); ++k) key[k] = row.var(key_idx[k]);
    auto [slot, inserted] =
        groups.FindOrInsert(key.data(), KeyBytes(key), row.measure);
    if (!inserted) *slot = semiring.Add(*slot, row.measure);
  }
  groups.ForEach([&](const char* k, size_t len, const double& measure) {
    key.resize(len / sizeof(VarValue));
    std::memcpy(key.data(), k, len);
    result->AppendRow(key, measure);
  });
  SortCanonical(*result);
  return result;
}

StatusOr<TablePtr> Select(const Table& t, const std::string& var,
                          VarValue value, const std::string& result_name) {
  auto idx = t.schema().IndexOf(var);
  if (!idx) {
    return Status::InvalidArgument("selection variable '" + var +
                                   "' not in relation " + t.name());
  }
  auto result = std::make_shared<Table>(result_name, t.schema());
  for (size_t i = 0; i < t.NumRows(); ++i) {
    RowView row = t.Row(i);
    if (row.var(*idx) == value) {
      result->AppendRowRaw(row.vars, row.measure);
    }
  }
  return result;
}

StatusOr<TablePtr> FilterMeasure(const Table& t, const HavingClause& having,
                                 const std::string& result_name) {
  auto result = std::make_shared<Table>(result_name, t.schema());
  for (size_t i = 0; i < t.NumRows(); ++i) {
    RowView row = t.Row(i);
    if (EvalCompare(having.op, row.measure, having.threshold)) {
      result->AppendRowRaw(row.vars, row.measure);
    }
  }
  return result;
}

StatusOr<TablePtr> ProductSemijoin(const Table& t, const Table& s,
                                   const Semiring& semiring,
                                   const std::string& result_name) {
  std::vector<std::string> shared =
      varset::Intersect(t.schema().variables(), s.schema().variables());
  if (shared.empty()) {
    return Status::InvalidArgument("product semijoin of " + t.name() + " and " +
                                   s.name() + ": no shared variables");
  }
  MPFDB_ASSIGN_OR_RETURN(TablePtr s_marginal,
                         Marginalize(s, shared, semiring, "tmp_marg"));
  return ProductJoin(t, *s_marginal, semiring, result_name);
}

StatusOr<TablePtr> UpdateSemijoin(const Table& t, const Table& s,
                                  const Semiring& semiring,
                                  const std::string& result_name) {
  if (!semiring.HasDivision()) {
    return Status::FailedPrecondition(
        "update semijoin requires a semiring with division; '" +
        semiring.name() + "' has none");
  }
  std::vector<std::string> shared =
      varset::Intersect(t.schema().variables(), s.schema().variables());
  if (shared.empty()) {
    return Status::InvalidArgument("update semijoin of " + t.name() + " and " +
                                   s.name() + ": no shared variables");
  }
  MPFDB_ASSIGN_OR_RETURN(TablePtr s_marginal,
                         Marginalize(s, shared, semiring, "tmp_s_marg"));
  MPFDB_ASSIGN_OR_RETURN(TablePtr t_marginal,
                         Marginalize(t, shared, semiring, "tmp_t_marg"));
  MPFDB_ASSIGN_OR_RETURN(
      TablePtr message,
      DivisionJoin(*s_marginal, *t_marginal, semiring, "tmp_msg"));
  return ProductJoin(t, *message, semiring, result_name);
}

Status CheckFunctionalDependency(const Table& t) {
  exec::SwissBytesTable<size_t> seen;
  seen.Reserve(t.NumRows());
  for (size_t i = 0; i < t.NumRows(); ++i) {
    RowView row = t.Row(i);
    auto [slot, inserted] =
        seen.FindOrInsert(row.vars, row.arity * sizeof(VarValue), i);
    if (!inserted) {
      return Status::FailedPrecondition(
          "FD violation in " + t.name() + ": rows " + std::to_string(*slot) +
          " and " + std::to_string(i) + " share variable values");
    }
  }
  return Status::Ok();
}

StatusOr<bool> IsComplete(const Table& t, const Catalog& catalog) {
  MPFDB_RETURN_IF_ERROR(CheckFunctionalDependency(t));
  double domain_product = 1.0;
  for (const auto& var : t.schema().variables()) {
    MPFDB_ASSIGN_OR_RETURN(int64_t size, catalog.DomainSize(var));
    domain_product *= static_cast<double>(size);
  }
  return static_cast<double>(t.NumRows()) == domain_product;
}

Status NormalizeMeasure(Table& t, const Semiring& semiring) {
  if (semiring.kind() != SemiringKind::kSumProduct) {
    return Status::FailedPrecondition(
        "NormalizeMeasure is only defined for the sum-product semiring");
  }
  double total = 0.0;
  for (size_t i = 0; i < t.NumRows(); ++i) total += t.measure(i);
  if (total == 0.0) {
    return Status::FailedPrecondition("cannot normalize: measures sum to zero");
  }
  for (size_t i = 0; i < t.NumRows(); ++i) {
    t.set_measure(i, t.measure(i) / total);
  }
  return Status::Ok();
}

StatusOr<TablePtr> EvaluateNaiveMpf(const std::vector<TablePtr>& relations,
                                    const std::vector<std::string>& query_vars,
                                    const std::vector<Selection>& selections,
                                    const Semiring& semiring,
                                    const std::string& result_name) {
  if (relations.empty()) {
    return Status::InvalidArgument("MPF view over zero relations");
  }
  // Apply selections to every relation containing the constrained variable
  // before joining; this is a plain filter and does not change semantics.
  std::vector<TablePtr> inputs;
  inputs.reserve(relations.size());
  for (const TablePtr& rel : relations) {
    TablePtr current = rel;
    for (const Selection& sel : selections) {
      if (current->schema().HasVariable(sel.var)) {
        MPFDB_ASSIGN_OR_RETURN(
            current, Select(*current, sel.var, sel.value, current->name()));
      }
    }
    inputs.push_back(current);
  }
  TablePtr joined = inputs[0];
  for (size_t i = 1; i < inputs.size(); ++i) {
    MPFDB_ASSIGN_OR_RETURN(
        joined, ProductJoin(*joined, *inputs[i], semiring, "tmp_join"));
  }
  return Marginalize(*joined, query_vars, semiring, result_name);
}

bool TablesEqual(const Table& a, const Table& b, double tolerance) {
  // Measure names are labels chosen by whichever operand came first in a
  // join; only the variable layout is semantically relevant.
  if (a.schema().variables() != b.schema().variables()) return false;
  if (a.NumRows() != b.NumRows()) return false;
  const size_t arity = a.schema().arity();
  for (size_t i = 0; i < a.NumRows(); ++i) {
    RowView ra = a.Row(i);
    RowView rb = b.Row(i);
    if (arity > 0 &&
        std::memcmp(ra.vars, rb.vars, arity * sizeof(VarValue)) != 0) {
      return false;
    }
    const double scale =
        std::max({1.0, std::fabs(ra.measure), std::fabs(rb.measure)});
    if (std::fabs(ra.measure - rb.measure) > tolerance * scale) {
      // Treat infinities of the same sign as equal (min/max semirings).
      if (!(std::isinf(ra.measure) && std::isinf(rb.measure) &&
            std::signbit(ra.measure) == std::signbit(rb.measure))) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace mpfdb::fr
