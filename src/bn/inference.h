#ifndef MPFDB_BN_INFERENCE_H_
#define MPFDB_BN_INFERENCE_H_

#include <map>
#include <string>
#include <vector>

#include "bn/bayes_net.h"
#include "core/database.h"
#include "util/status.h"

namespace mpfdb::bn {

// Engine-backed exact inference helpers. Each call registers the network's
// CPTs as functional relations in a scratch catalog and evaluates the
// corresponding MPF query with the given optimizer (Section 4 end to end).

// Posterior marginal P(query_var | evidence), normalized.
StatusOr<TablePtr> InferMarginal(const BayesNet& bn,
                                 const std::string& query_var,
                                 const std::vector<BayesNet::Evidence>& evidence,
                                 const std::string& optimizer = "ve(deg) ext.");

// The probability of the single most likely complete assignment consistent
// with the evidence: an MPF query over the max-product semiring with empty
// query variables — the same plans, a different semiring, exactly the
// generality Section 2 promises.
StatusOr<double> MpeValue(const BayesNet& bn,
                          const std::vector<BayesNet::Evidence>& evidence,
                          const std::string& optimizer = "ve(deg) ext.");

// CPT estimation when the training data lives in *multiple* tables joined by
// an MPF view (Section 4: "for data in multiple tables where a join
// dependency holds, the MPF setting can be used to compute the required
// counts"). Each family's sufficient statistics N(parents, child) are
// computed as MPF count queries against `view` (whose relations carry count
// measures — use 1 per row for plain indicator tables), then normalized with
// Laplace smoothing `alpha`.
StatusOr<BayesNet> EstimateCptsFromView(const BayesNet& structure,
                                        Database& db,
                                        const std::string& view_name,
                                        double alpha,
                                        const std::string& optimizer =
                                            "ve(deg) ext.");

// The most likely complete assignment itself, by iterative conditioning:
// repeatedly pick a variable, compute its max-marginal given everything
// fixed so far, and fix its argmax. n max-product MPF queries; exact
// regardless of ties.
StatusOr<std::map<std::string, VarValue>> MpeAssignment(
    const BayesNet& bn, const std::vector<BayesNet::Evidence>& evidence,
    const std::string& optimizer = "ve(deg) ext.");

}  // namespace mpfdb::bn

#endif  // MPFDB_BN_INFERENCE_H_
