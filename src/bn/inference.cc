#include "bn/inference.h"

#include "core/database.h"
#include "fr/algebra.h"

namespace mpfdb::bn {
namespace {

// Builds a scratch database holding the BN's joint view under `semiring`.
// Fills a caller-owned database (Database is not movable: it carries the
// serving layer's locks).
Status MakeScratch(const BayesNet& bn, Semiring semiring, Database& db,
                   MpfViewDef* view_out) {
  MPFDB_ASSIGN_OR_RETURN(MpfViewDef view, bn.ToMpfView(db.catalog()));
  view.semiring = semiring;
  *view_out = view;
  return db.CreateMpfView(std::move(view));
}

std::vector<QuerySelection> ToSelections(
    const std::vector<BayesNet::Evidence>& evidence) {
  std::vector<QuerySelection> selections;
  for (const auto& e : evidence) {
    selections.push_back(QuerySelection{e.var, e.value});
  }
  return selections;
}

}  // namespace

StatusOr<TablePtr> InferMarginal(const BayesNet& bn,
                                 const std::string& query_var,
                                 const std::vector<BayesNet::Evidence>& evidence,
                                 const std::string& optimizer) {
  MpfViewDef view;
  Database db;
  MPFDB_RETURN_IF_ERROR(MakeScratch(bn, Semiring::SumProduct(), db, &view));
  MpfQuerySpec query{{query_var}, ToSelections(evidence)};
  MPFDB_ASSIGN_OR_RETURN(QueryResult result,
                         db.Query(view.name, query, optimizer));
  MPFDB_RETURN_IF_ERROR(
      fr::NormalizeMeasure(*result.table, Semiring::SumProduct()));
  return result.table;
}

StatusOr<double> MpeValue(const BayesNet& bn,
                          const std::vector<BayesNet::Evidence>& evidence,
                          const std::string& optimizer) {
  MpfViewDef view;
  Database db;
  MPFDB_RETURN_IF_ERROR(MakeScratch(bn, Semiring::MaxProduct(), db, &view));
  MpfQuerySpec query{{}, ToSelections(evidence)};
  MPFDB_ASSIGN_OR_RETURN(QueryResult result,
                         db.Query(view.name, query, optimizer));
  if (result.table->NumRows() != 1) {
    return Status::Internal("MPE query did not produce a scalar");
  }
  return result.table->measure(0);
}

StatusOr<BayesNet> EstimateCptsFromView(const BayesNet& structure,
                                        Database& db,
                                        const std::string& view_name,
                                        double alpha,
                                        const std::string& optimizer) {
  BayesNet estimated;
  for (const BnNode& node : structure.nodes()) {
    std::vector<std::string> family = node.parents;
    family.push_back(node.name);
    // N(parents, node) as an MPF count query over the multi-table view.
    MPFDB_ASSIGN_OR_RETURN(QueryResult counts,
                           db.Query(view_name, MpfQuerySpec{family, {}},
                                    optimizer));
    MPFDB_ASSIGN_OR_RETURN(
        TablePtr cpt, BuildSmoothedCpt(structure, node, *counts.table, alpha));
    MPFDB_RETURN_IF_ERROR(estimated.AddNode(node.name, node.domain_size,
                                            node.parents, std::move(cpt)));
  }
  return estimated;
}

StatusOr<std::map<std::string, VarValue>> MpeAssignment(
    const BayesNet& bn, const std::vector<BayesNet::Evidence>& evidence,
    const std::string& optimizer) {
  MpfViewDef view;
  Database db;
  MPFDB_RETURN_IF_ERROR(MakeScratch(bn, Semiring::MaxProduct(), db, &view));
  std::map<std::string, VarValue> assignment;
  std::vector<QuerySelection> fixed = ToSelections(evidence);
  for (const auto& e : evidence) assignment[e.var] = e.value;

  for (const BnNode& node : bn.nodes()) {
    if (assignment.count(node.name)) continue;
    MpfQuerySpec query{{node.name}, fixed};
    MPFDB_ASSIGN_OR_RETURN(QueryResult result,
                           db.Query(view.name, query, optimizer));
    if (result.table->Empty()) {
      return Status::FailedPrecondition(
          "evidence has zero probability; no MPE assignment exists");
    }
    // Argmax of the max-marginal.
    size_t best = 0;
    for (size_t i = 1; i < result.table->NumRows(); ++i) {
      if (result.table->measure(i) > result.table->measure(best)) best = i;
    }
    VarValue value = result.table->Row(best).var(0);
    assignment[node.name] = value;
    fixed.push_back(QuerySelection{node.name, value});
  }
  return assignment;
}

}  // namespace mpfdb::bn
