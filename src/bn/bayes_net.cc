#include "bn/bayes_net.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "fr/algebra.h"

namespace mpfdb::bn {
namespace {

// Enumerates every assignment of `domains` via odometer increments.
class AssignmentIterator {
 public:
  explicit AssignmentIterator(std::vector<int64_t> domains)
      : domains_(std::move(domains)), values_(domains_.size(), 0) {}

  const std::vector<VarValue>& values() const { return values_; }

  bool Advance() {
    size_t pos = 0;
    while (pos < values_.size()) {
      if (++values_[pos] < domains_[pos]) return true;
      values_[pos] = 0;
      ++pos;
    }
    return false;
  }

 private:
  std::vector<int64_t> domains_;
  std::vector<VarValue> values_;
};

// Builds the CPT schema (parents..., name; p).
Schema CptSchema(const BnNode& node) {
  std::vector<std::string> vars = node.parents;
  vars.push_back(node.name);
  return Schema(vars, "p");
}

}  // namespace

Status BayesNet::AddNode(const std::string& name, int64_t domain_size,
                         const std::vector<std::string>& parents,
                         TablePtr cpt) {
  if (domain_size <= 0) {
    return Status::InvalidArgument("node '" + name +
                                   "' needs a positive domain size");
  }
  if (FindNode(name).ok()) {
    return Status::AlreadyExists("node '" + name + "' already exists");
  }
  for (const auto& parent : parents) {
    if (!FindNode(parent).ok()) {
      return Status::InvalidArgument("parent '" + parent + "' of '" + name +
                                     "' does not exist (add parents first)");
    }
    if (parent == name) {
      return Status::InvalidArgument("node '" + name + "' cannot parent itself");
    }
  }
  BnNode node{name, domain_size, parents, std::move(cpt)};
  if (node.cpt != nullptr) {
    if (!varset::SetEquals(node.cpt->schema().variables(),
                           CptSchema(node).variables())) {
      return Status::InvalidArgument(
          "CPT schema of '" + name + "' must cover exactly (parents, node)");
    }
  }
  nodes_.push_back(std::move(node));
  return Status::Ok();
}

StatusOr<const BnNode*> BayesNet::FindNode(const std::string& name) const {
  for (const BnNode& node : nodes_) {
    if (node.name == name) return &node;
  }
  return Status::NotFound("node '" + name + "' not found");
}

std::vector<std::string> BayesNet::VariableNames() const {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const BnNode& node : nodes_) names.push_back(node.name);
  return names;
}

Status BayesNet::Validate() const {
  for (const BnNode& node : nodes_) {
    if (node.cpt == nullptr) {
      return Status::FailedPrecondition("node '" + node.name + "' has no CPT");
    }
    MPFDB_RETURN_IF_ERROR(fr::CheckFunctionalDependency(*node.cpt));
    // Completeness and normalization: group the CPT rows by the parent
    // configuration and check each group's probabilities sum to 1 with
    // node.domain_size entries.
    std::map<std::vector<VarValue>, std::pair<int64_t, double>> groups;
    auto node_index = node.cpt->schema().IndexOf(node.name);
    if (!node_index) {
      return Status::FailedPrecondition("CPT of '" + node.name +
                                        "' lacks its own variable");
    }
    std::vector<size_t> parent_indices;
    for (const auto& parent : node.parents) {
      auto idx = node.cpt->schema().IndexOf(parent);
      if (!idx) {
        return Status::FailedPrecondition("CPT of '" + node.name +
                                          "' lacks parent '" + parent + "'");
      }
      parent_indices.push_back(*idx);
    }
    for (size_t i = 0; i < node.cpt->NumRows(); ++i) {
      RowView row = node.cpt->Row(i);
      if (row.measure < 0) {
        return Status::FailedPrecondition("CPT of '" + node.name +
                                          "' has a negative probability");
      }
      std::vector<VarValue> key;
      key.reserve(parent_indices.size());
      for (size_t p : parent_indices) key.push_back(row.var(p));
      auto& [count, total] = groups[key];
      ++count;
      total += row.measure;
    }
    double expected_groups = 1;
    for (const auto& parent : node.parents) {
      expected_groups *= static_cast<double>(FindNode(parent).value()->domain_size);
    }
    if (static_cast<double>(groups.size()) != expected_groups) {
      return Status::FailedPrecondition(
          "CPT of '" + node.name + "' is not complete over parent domains");
    }
    for (const auto& [key, stats] : groups) {
      if (stats.first != node.domain_size) {
        return Status::FailedPrecondition(
            "CPT of '" + node.name + "' is missing child values for some "
            "parent configuration");
      }
      if (std::fabs(stats.second - 1.0) > 1e-6) {
        return Status::FailedPrecondition(
            "CPT of '" + node.name + "' does not sum to 1 for some parent "
            "configuration");
      }
    }
  }
  return Status::Ok();
}

Status BayesNet::SetUniformCpts() {
  for (BnNode& node : nodes_) {
    if (node.cpt != nullptr) continue;
    auto cpt = std::make_shared<Table>("cpt_" + node.name, CptSchema(node));
    std::vector<int64_t> domains;
    for (const auto& parent : node.parents) {
      domains.push_back(FindNode(parent).value()->domain_size);
    }
    domains.push_back(node.domain_size);
    AssignmentIterator it(domains);
    double p = 1.0 / static_cast<double>(node.domain_size);
    do {
      cpt->AppendRow(it.values(), p);
    } while (it.Advance());
    node.cpt = std::move(cpt);
  }
  return Status::Ok();
}

Status BayesNet::SetRandomCpts(Rng& rng) {
  for (BnNode& node : nodes_) {
    if (node.cpt != nullptr) continue;
    auto cpt = std::make_shared<Table>("cpt_" + node.name, CptSchema(node));
    std::vector<int64_t> parent_domains;
    for (const auto& parent : node.parents) {
      parent_domains.push_back(FindNode(parent).value()->domain_size);
    }
    // One normalized random row-block per parent configuration. An
    // AssignmentIterator over zero domains yields exactly one empty
    // assignment, so parentless nodes get a single block.
    AssignmentIterator parent_it(parent_domains);
    do {
      std::vector<double> weights;
      weights.reserve(static_cast<size_t>(node.domain_size));
      double total = 0;
      for (int64_t v = 0; v < node.domain_size; ++v) {
        double w = rng.UniformDouble(0.05, 1.0);
        weights.push_back(w);
        total += w;
      }
      for (int64_t v = 0; v < node.domain_size; ++v) {
        std::vector<VarValue> row = parent_it.values();
        row.push_back(static_cast<VarValue>(v));
        cpt->AppendRow(row, weights[static_cast<size_t>(v)] / total);
      }
    } while (parent_it.Advance());
    node.cpt = std::move(cpt);
  }
  return Status::Ok();
}

StatusOr<MpfViewDef> BayesNet::ToMpfView(Catalog& catalog,
                                         const std::string& prefix) const {
  MPFDB_RETURN_IF_ERROR(Validate());
  MpfViewDef view;
  view.name = prefix + "joint";
  view.semiring = Semiring::SumProduct();
  for (const BnNode& node : nodes_) {
    MPFDB_RETURN_IF_ERROR(catalog.RegisterVariable(node.name, node.domain_size));
  }
  for (const BnNode& node : nodes_) {
    std::string table_name = prefix + "cpt_" + node.name;
    TablePtr table(node.cpt->Clone(table_name));
    MPFDB_RETURN_IF_ERROR(catalog.RegisterTable(std::move(table)));
    view.relations.push_back(table_name);
  }
  return view;
}

StatusOr<TablePtr> BayesNet::Sample(size_t n, Rng& rng) const {
  MPFDB_RETURN_IF_ERROR(Validate());
  // Per-node lookup: parent values -> probability vector over the node.
  // Node order is topological, so sampling front-to-back is ancestral.
  std::unordered_map<std::string, size_t> node_index;
  for (size_t i = 0; i < nodes_.size(); ++i) node_index[nodes_[i].name] = i;

  std::map<std::vector<VarValue>, double> counts;
  std::vector<VarValue> assignment(nodes_.size(), 0);
  for (size_t s = 0; s < n; ++s) {
    for (size_t i = 0; i < nodes_.size(); ++i) {
      const BnNode& node = nodes_[i];
      // Collect this node's probability vector for the sampled parents.
      std::vector<double> probs(static_cast<size_t>(node.domain_size), 0.0);
      const Schema& schema = node.cpt->schema();
      size_t self_idx = *schema.IndexOf(node.name);
      for (size_t r = 0; r < node.cpt->NumRows(); ++r) {
        RowView row = node.cpt->Row(r);
        bool match = true;
        for (const auto& parent : node.parents) {
          size_t p_idx = *schema.IndexOf(parent);
          if (row.var(p_idx) != assignment[node_index[parent]]) {
            match = false;
            break;
          }
        }
        if (match) probs[static_cast<size_t>(row.var(self_idx))] = row.measure;
      }
      assignment[i] = static_cast<VarValue>(rng.Categorical(probs));
    }
    counts[assignment] += 1.0;
  }
  auto table =
      std::make_shared<Table>("samples", Schema(VariableNames(), "count"));
  for (const auto& [vars, count] : counts) {
    table->AppendRow(vars, count);
  }
  return table;
}

StatusOr<TablePtr> BayesNet::EnumerateMarginal(
    const std::vector<std::string>& query_vars,
    const std::vector<Evidence>& evidence) const {
  MPFDB_RETURN_IF_ERROR(Validate());
  // Joint = product of CPTs, computed by the reference algebra; then filter,
  // marginalize, and normalize.
  Semiring semiring = Semiring::SumProduct();
  TablePtr joint = nodes_[0].cpt;
  for (size_t i = 1; i < nodes_.size(); ++i) {
    MPFDB_ASSIGN_OR_RETURN(
        joint, fr::ProductJoin(*joint, *nodes_[i].cpt, semiring, "joint"));
  }
  for (const Evidence& e : evidence) {
    MPFDB_ASSIGN_OR_RETURN(joint, fr::Select(*joint, e.var, e.value, "joint"));
  }
  MPFDB_ASSIGN_OR_RETURN(TablePtr marginal,
                         fr::Marginalize(*joint, query_vars, semiring, "marg"));
  MPFDB_RETURN_IF_ERROR(fr::NormalizeMeasure(*marginal, semiring));
  return marginal;
}

StatusOr<BayesNet> ChainBayesNet(int num_vars, int64_t domain_size, Rng& rng) {
  if (num_vars < 1) return Status::InvalidArgument("need at least one node");
  BayesNet bn;
  for (int i = 0; i < num_vars; ++i) {
    std::vector<std::string> parents;
    if (i > 0) parents.push_back("x" + std::to_string(i - 1));
    MPFDB_RETURN_IF_ERROR(
        bn.AddNode("x" + std::to_string(i), domain_size, parents));
  }
  MPFDB_RETURN_IF_ERROR(bn.SetRandomCpts(rng));
  return bn;
}

StatusOr<BayesNet> TreeBayesNet(int num_vars, int64_t domain_size, Rng& rng) {
  if (num_vars < 1) return Status::InvalidArgument("need at least one node");
  BayesNet bn;
  for (int i = 0; i < num_vars; ++i) {
    std::vector<std::string> parents;
    if (i > 0) parents.push_back("x" + std::to_string((i - 1) / 2));
    MPFDB_RETURN_IF_ERROR(
        bn.AddNode("x" + std::to_string(i), domain_size, parents));
  }
  MPFDB_RETURN_IF_ERROR(bn.SetRandomCpts(rng));
  return bn;
}

StatusOr<BayesNet> RandomBayesNet(int num_vars, int max_parents,
                                  int64_t domain_size, Rng& rng) {
  if (num_vars < 1) return Status::InvalidArgument("need at least one node");
  if (max_parents < 0) return Status::InvalidArgument("max_parents must be >= 0");
  BayesNet bn;
  for (int i = 0; i < num_vars; ++i) {
    std::vector<int> candidates(i);
    for (int j = 0; j < i; ++j) candidates[j] = j;
    rng.Shuffle(candidates);
    int num_parents = static_cast<int>(
        rng.UniformInt(0, std::min<int64_t>(i, max_parents)));
    std::vector<std::string> parents;
    for (int p = 0; p < num_parents; ++p) {
      parents.push_back("x" + std::to_string(candidates[p]));
    }
    MPFDB_RETURN_IF_ERROR(
        bn.AddNode("x" + std::to_string(i), domain_size, parents));
  }
  MPFDB_RETURN_IF_ERROR(bn.SetRandomCpts(rng));
  return bn;
}

StatusOr<TablePtr> BuildSmoothedCpt(const BayesNet& structure,
                                    const BnNode& node,
                                    const Table& family_counts, double alpha) {
  if (alpha < 0) return Status::InvalidArgument("alpha must be >= 0");
  std::vector<std::string> family = node.parents;
  family.push_back(node.name);
  if (!varset::SetEquals(family_counts.schema().variables(), family)) {
    return Status::InvalidArgument(
        "family counts for '" + node.name +
        "' must cover exactly (parents, node)");
  }
  // Index counts by (parents..., node) in `family` order.
  std::vector<size_t> order;
  for (const auto& var : family) {
    order.push_back(*family_counts.schema().IndexOf(var));
  }
  std::map<std::vector<VarValue>, double> family_map;
  for (size_t i = 0; i < family_counts.NumRows(); ++i) {
    RowView row = family_counts.Row(i);
    std::vector<VarValue> key;
    key.reserve(order.size());
    for (size_t c : order) key.push_back(row.var(c));
    family_map[std::move(key)] = row.measure;
  }

  std::vector<int64_t> domains;
  for (const auto& parent : node.parents) {
    MPFDB_ASSIGN_OR_RETURN(const BnNode* p, structure.FindNode(parent));
    domains.push_back(p->domain_size);
  }
  auto cpt = std::make_shared<Table>("cpt_" + node.name, Schema(family, "p"));
  AssignmentIterator parent_it(domains);
  do {
    double parent_total = 0;
    std::vector<double> numerators;
    for (int64_t v = 0; v < node.domain_size; ++v) {
      std::vector<VarValue> key = parent_it.values();
      key.push_back(static_cast<VarValue>(v));
      auto it = family_map.find(key);
      double n = (it == family_map.end() ? 0.0 : it->second) + alpha;
      numerators.push_back(n);
      parent_total += n;
    }
    if (parent_total == 0) {
      // No data and no smoothing: fall back to uniform.
      for (auto& n : numerators) n = 1.0;
      parent_total = static_cast<double>(node.domain_size);
    }
    for (int64_t v = 0; v < node.domain_size; ++v) {
      std::vector<VarValue> row = parent_it.values();
      row.push_back(static_cast<VarValue>(v));
      cpt->AppendRow(row, numerators[static_cast<size_t>(v)] / parent_total);
    }
  } while (parent_it.Advance());
  return cpt;
}

StatusOr<BayesNet> EstimateCpts(const BayesNet& structure, const Table& counts,
                                double alpha) {
  if (alpha < 0) return Status::InvalidArgument("alpha must be >= 0");
  Semiring semiring = Semiring::SumProduct();
  BayesNet estimated;
  for (const BnNode& node : structure.nodes()) {
    // The sufficient statistics are MPF queries over the counts relation:
    // N(parents, x) — a marginalization of `counts`.
    std::vector<std::string> family = node.parents;
    family.push_back(node.name);
    for (const auto& var : family) {
      if (!counts.schema().HasVariable(var)) {
        return Status::InvalidArgument("counts relation lacks variable '" +
                                       var + "'");
      }
    }
    MPFDB_ASSIGN_OR_RETURN(
        TablePtr family_counts,
        fr::Marginalize(counts, family, semiring, "family_counts"));
    MPFDB_ASSIGN_OR_RETURN(
        TablePtr cpt, BuildSmoothedCpt(structure, node, *family_counts, alpha));
    MPFDB_RETURN_IF_ERROR(estimated.AddNode(node.name, node.domain_size,
                                            node.parents, std::move(cpt)));
  }
  return estimated;
}

}  // namespace mpfdb::bn
