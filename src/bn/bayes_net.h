#ifndef MPFDB_BN_BAYES_NET_H_
#define MPFDB_BN_BAYES_NET_H_

#include <memory>
#include <string>
#include <vector>

#include "plan/plan.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "util/rng.h"
#include "util/status.h"

namespace mpfdb::bn {

// A node of a discrete Bayesian Network: a categorical variable, its parent
// set, and its conditional probability table. The CPT is a functional
// relation over (parents..., name; p) — exactly the "local functional
// relation" of Section 4 — complete over the cross product of domains, with
// probabilities summing to 1 for every parent configuration.
struct BnNode {
  std::string name;
  int64_t domain_size = 2;
  std::vector<std::string> parents;
  TablePtr cpt;
};

// A discrete Bayesian Network (Section 4). The joint distribution is the
// product of the node CPTs; ToMpfView materializes exactly that product as
// an MPF view, making every inference task an MPF query.
class BayesNet {
 public:
  BayesNet() = default;

  // Adds a node. Parents must already exist. The CPT schema must be
  // (parents..., name; p) up to variable order; pass nullptr to leave the
  // CPT unset (fill later via EstimateCpts or SetUniformCpts).
  Status AddNode(const std::string& name, int64_t domain_size,
                 const std::vector<std::string>& parents, TablePtr cpt = nullptr);

  // Checks every CPT: present, complete, FD-satisfying, rows normalized per
  // parent configuration.
  Status Validate() const;

  const std::vector<BnNode>& nodes() const { return nodes_; }
  StatusOr<const BnNode*> FindNode(const std::string& name) const;
  std::vector<std::string> VariableNames() const;

  // Fills every unset CPT with the uniform distribution.
  Status SetUniformCpts();
  // Fills every unset CPT with random distributions (Dirichlet-like: uniform
  // draws normalized per parent configuration).
  Status SetRandomCpts(Rng& rng);

  // Registers the variables and CPT tables into `catalog` (names prefixed
  // with `prefix` + "cpt_") and returns the joint MPF view over the
  // sum-product semiring — the `create mpfview joint` of Section 4.
  StatusOr<MpfViewDef> ToMpfView(Catalog& catalog,
                                 const std::string& prefix = "") const;

  // Draws `n` ancestral samples and returns them as a counts functional
  // relation over all variables: (vars...; count).
  StatusOr<TablePtr> Sample(size_t n, Rng& rng) const;

  // Ground-truth inference by explicit enumeration of the joint:
  // P(query_vars | evidence), normalized. Exponential; for tests and small
  // nets only.
  struct Evidence {
    std::string var;
    VarValue value;
  };
  StatusOr<TablePtr> EnumerateMarginal(const std::vector<std::string>& query_vars,
                                       const std::vector<Evidence>& evidence) const;

 private:
  // Nodes in insertion order (a topological order by construction, since
  // parents must precede children).
  std::vector<BnNode> nodes_;
};

// Structure generators used by tests, examples, and the inference bench.
// All variables share `domain_size`.
StatusOr<BayesNet> ChainBayesNet(int num_vars, int64_t domain_size, Rng& rng);
// A complete binary in-tree: each non-root node's parent is node (i-1)/2.
StatusOr<BayesNet> TreeBayesNet(int num_vars, int64_t domain_size, Rng& rng);
// Random DAG: node i draws min(i, max_parents) distinct parents among 0..i-1.
StatusOr<BayesNet> RandomBayesNet(int num_vars, int max_parents,
                                  int64_t domain_size, Rng& rng);

// Maximum-likelihood CPT estimation with Laplace smoothing `alpha` from a
// counts functional relation over (at least) all of the structure's
// variables — the Section 4 estimation step, with the counts themselves
// computable as MPF queries over the data. Returns a copy of `structure`
// with CPTs replaced.
StatusOr<BayesNet> EstimateCpts(const BayesNet& structure, const Table& counts,
                                double alpha);

// Builds one node's complete, Laplace-smoothed CPT from a counts functional
// relation over exactly the node's family (parents..., node). Shared by
// EstimateCpts and the multi-table EstimateCptsFromView.
StatusOr<TablePtr> BuildSmoothedCpt(const BayesNet& structure,
                                    const BnNode& node,
                                    const Table& family_counts, double alpha);

}  // namespace mpfdb::bn

#endif  // MPFDB_BN_BAYES_NET_H_
