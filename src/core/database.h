#ifndef MPFDB_CORE_DATABASE_H_
#define MPFDB_CORE_DATABASE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "exec/executor.h"
#include "exec/thread_pool.h"
#include "opt/optimizer.h"
#include "plan/plan.h"
#include "server/plan_cache.h"
#include "storage/catalog.h"
#include "workload/vecache.h"

namespace mpfdb {

// Builds an optimizer from a textual spec, the same names the paper's plots
// use:
//   "cs" | "cs+" | "cs+nonlinear" |
//   "ve(deg)" | "ve(width)" | "ve(elim_cost)" | "ve(deg&width)" |
//   "ve(deg&elim_cost)" | "ve(random)"       — each with optional " ext."
//   suffix (e.g. "ve(deg) ext.") for the Section 5.4 extended space.
StatusOr<std::unique_ptr<opt::Optimizer>> MakeOptimizer(
    const std::string& spec, uint64_t random_seed = 0);

// Result of running one MPF query end to end.
struct QueryResult {
  TablePtr table;
  PlanPtr plan;
  double planning_seconds = 0;
  double execution_seconds = 0;
  // The catalog epoch this query observed: the query saw exactly the state
  // committed by the first `snapshot_epoch` mutations and nothing later.
  uint64_t snapshot_epoch = 0;
  // Whether the physical plan came from the shared plan cache.
  bool plan_cache_hit = false;
};

// Hypothetical ("what-if") updates for the Alternate-measure and
// Alternate-domain query forms of Section 3.1. Applied to copies of the base
// relations for the duration of one query; stored tables are untouched.
struct WhatIf {
  // "What if part p1 was a different price": rows of `table` matching every
  // (var = value) pair get measure `new_measure`.
  struct MeasureUpdate {
    std::string table;
    std::vector<QuerySelection> match;
    double new_measure = 0;
  };
  // "What if c1's deal with t1 were transferred to t2": matching rows get
  // `var` rewritten to `new_value`. Rejected if the rewrite would violate
  // the functional dependency (two rows collapsing onto the same variable
  // values).
  struct DomainUpdate {
    std::string table;
    std::vector<QuerySelection> match;
    std::string var;
    VarValue new_value = 0;
  };

  std::vector<MeasureUpdate> measure_updates;
  std::vector<DomainUpdate> domain_updates;
};

// The top-level library facade: owns the catalog, the MPF view definitions,
// the cost model and executor configuration, and any built VE-caches.
// Example:
//   Database db;
//   db.catalog().RegisterVariable("x", 10);
//   db.CreateTable(my_table);
//   db.CreateMpfView({"v", {"t1", "t2"}, Semiring::SumProduct()});
//   auto result = db.Query("v", {{"x"}, {}}, "ve(deg) ext.");
//
// Concurrency model (the serving layer's epoch protocol):
//
//  * Readers — Query, QueryWhatIf, Explain, ExplainAnalyze, QueryCached —
//    pin an immutable Snapshot (epoch + catalog + view definitions, all
//    sharing the underlying table storage) and run entirely against it, so
//    an in-flight query never observes a torn catalog no matter how updates
//    interleave. Any number may run concurrently.
//  * Writers — CreateTable, DropTable, CreateMpfView, DropMpfView,
//    ApplyMeasureUpdate — commit under an exclusive lock, copy-on-write any
//    table they modify (readers keep the old version), bump the epoch, and
//    invalidate the shared plan cache. They never wait for readers to drain.
//  * VE-caches are published as shared immutable objects per view;
//    ApplyMeasureUpdate refreshes them through the incremental
//    ApplyBaseMeasureUpdate path on a deep clone (full rebuild when the
//    incremental rescale is impossible) so QueryCached is never served stale.
//  * The non-const catalog() accessor hands out direct mutable access for
//    single-threaded setup; every call conservatively bumps the epoch. Do
//    not mutate through a retained reference while queries are being served.
//  * Configuration setters (set_cost_model, set_exec_options,
//    set_plan_cache_enabled) are setup-time only, not thread-safe against
//    running queries.
class Database {
 public:
  Database();

  // Mutable access (setup): conservatively treated as a mutation — the
  // epoch is bumped and cached snapshots/plans are invalidated.
  Catalog& catalog();
  const Catalog& catalog() const { return catalog_; }

  // An immutable view of the database state as of one epoch. Tables are
  // shared with the live catalog (copy-on-write updates replace, never
  // mutate, a published table).
  struct Snapshot {
    uint64_t epoch = 0;
    Catalog catalog;
    std::map<std::string, MpfViewDef> views;
  };
  using SnapshotPtr = std::shared_ptr<const Snapshot>;
  // The current snapshot; cached, so repeated calls between mutations share
  // one copy.
  SnapshotPtr snapshot() const;

  // Number of committed mutations (CreateTable/DropTable/CreateMpfView/
  // DropMpfView/ApplyMeasureUpdate/non-const catalog() access).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  // Registers a base table (its variables must be registered first).
  Status CreateTable(TablePtr table);
  // Drops a table; refuses while any view references it.
  Status DropTable(const std::string& name);

  // Changes the measure of the base-relation row of `table_name` identified
  // by `row_vars` (all variable values, in schema order) to `new_measure`.
  // Commits copy-on-write: the stored table is replaced, never mutated, so
  // concurrent queries keep their snapshot; any VE-cache on a view over the
  // table is incrementally refreshed (ApplyBaseMeasureUpdate on a clone) and
  // republished atomically with the epoch bump.
  Status ApplyMeasureUpdate(const std::string& table_name,
                            const std::vector<VarValue>& row_vars,
                            double new_measure);

  // Registers an MPF view over existing tables.
  Status CreateMpfView(MpfViewDef view);
  // Drops a view and any VE-cache built on it.
  Status DropMpfView(const std::string& name);
  StatusOr<const MpfViewDef*> GetView(const std::string& name) const;
  std::vector<std::string> ViewNames() const;

  // Optimizes and executes an MPF query against a view. `optimizer_spec`
  // accepts the MakeOptimizer names; the default is the strongest
  // single-query optimizer. A non-null `ctx` runs the execution governed:
  // memory budget (with spill-based degradation), cancellation, deadline.
  // Runs against the current snapshot; physical plans are memoized in the
  // shared plan cache keyed on (view, canonical query, optimizer, exec
  // fingerprint) and invalidated on every epoch bump.
  StatusOr<QueryResult> Query(const std::string& view_name,
                              const MpfQuerySpec& query,
                              const std::string& optimizer_spec =
                                  "cs+nonlinear",
                              QueryContext* ctx = nullptr);

  // Runs an MPF query against a hypothetically modified view: the what-if
  // updates are applied to copies of the affected base relations, the query
  // is optimized and executed against those copies, and the stored tables
  // remain untouched.
  StatusOr<QueryResult> QueryWhatIf(const std::string& view_name,
                                    const MpfQuerySpec& query,
                                    const WhatIf& what_if,
                                    const std::string& optimizer_spec =
                                        "cs+nonlinear");

  // Optimizes only and renders the plan (EXPLAIN).
  StatusOr<std::string> Explain(const std::string& view_name,
                                const MpfQuerySpec& query,
                                const std::string& optimizer_spec =
                                    "cs+nonlinear");

  // Optimizes, executes with per-node instrumentation, and renders the plan
  // with estimated vs actual row counts (EXPLAIN ANALYZE). Bypasses the plan
  // cache (the stats spine needs a private physical tree).
  StatusOr<std::string> ExplainAnalyze(const std::string& view_name,
                                       const MpfQuerySpec& query,
                                       const std::string& optimizer_spec =
                                           "cs+nonlinear");

  // Builds (or rebuilds) the VE-cache for a view (Section 6) so subsequent
  // QueryCached calls answer from materialized views. A non-null `ctx`
  // bounds the construction: the materialized cache tables charge against
  // its memory budget (cache construction does not spill — a breach fails
  // with kResourceExhausted) and elimination steps honor cancel/deadline.
  // The build runs against a snapshot without blocking readers or writers;
  // if the catalog changes underneath it, the build is retried against the
  // fresh state a few times before giving up with kInternal.
  Status BuildCache(const std::string& view_name, QueryContext* ctx = nullptr);
  bool HasCache(const std::string& view_name) const;
  StatusOr<TablePtr> QueryCached(const std::string& view_name,
                                 const MpfQuerySpec& query) const;

  void set_cost_model(std::unique_ptr<CostModel> cost_model) {
    cost_model_ = std::move(cost_model);
  }
  const CostModel& cost_model() const { return *cost_model_; }
  void set_exec_options(exec::ExecOptions options);

  // The shared physical-plan cache (hit/miss/invalidation counters live on
  // it). Enabled by default; disable for ablations that must re-plan every
  // query.
  server::PlanCache& plan_cache() { return plan_cache_; }
  const server::PlanCache& plan_cache() const { return plan_cache_; }
  void set_plan_cache_enabled(bool enabled) { plan_cache_enabled_ = enabled; }

  // The database-owned worker pool for intra-query parallelism, created
  // lazily from ExecOptions::num_threads (0 = hardware_concurrency).
  // Returns null when the resolved thread count is 1 — queries then run on
  // the calling thread exactly as the serial engine does. The pool is shared
  // by every concurrently admitted query (ThreadPool supports concurrent
  // ParallelFor posts).
  exec::ThreadPool* thread_pool();

 private:
  struct CacheEntry {
    std::shared_ptr<const workload::VeCache> cache;
    uint64_t epoch = 0;  // epoch the cache is consistent with
  };

  // Commits a mutation: bumps the epoch, drops the cached snapshot, sweeps
  // the plan cache. Caller holds state_mu_ exclusively.
  void BumpEpochLocked();

  Catalog catalog_;                          // guarded by state_mu_
  std::map<std::string, MpfViewDef> views_;  // guarded by state_mu_
  std::map<std::string, CacheEntry> caches_;  // guarded by state_mu_
  mutable std::shared_mutex state_mu_;
  std::atomic<uint64_t> epoch_{0};
  mutable SnapshotPtr snapshot_cache_;  // guarded by state_mu_

  server::PlanCache plan_cache_;
  bool plan_cache_enabled_ = true;

  std::unique_ptr<CostModel> cost_model_;
  exec::ExecOptions exec_options_;
  std::mutex pool_mu_;
  std::unique_ptr<exec::ThreadPool> pool_;  // guarded by pool_mu_
};

}  // namespace mpfdb

#endif  // MPFDB_CORE_DATABASE_H_
