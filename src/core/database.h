#ifndef MPFDB_CORE_DATABASE_H_
#define MPFDB_CORE_DATABASE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "exec/executor.h"
#include "exec/thread_pool.h"
#include "opt/optimizer.h"
#include "plan/plan.h"
#include "server/plan_cache.h"
#include "storage/catalog.h"
#include "workload/vecache.h"

namespace mpfdb {

// Builds an optimizer from a textual spec, the same names the paper's plots
// use:
//   "cs" | "cs+" | "cs+nonlinear" |
//   "ve(deg)" | "ve(width)" | "ve(elim_cost)" | "ve(deg&width)" |
//   "ve(deg&elim_cost)" | "ve(random)"       — each with optional " ext."
//   suffix (e.g. "ve(deg) ext.") for the Section 5.4 extended space —
//   plus "faq", the FAQ variable-order planner (worst-case-optimal
//   multiway joins on cyclic cores, binary planning otherwise).
StatusOr<std::unique_ptr<opt::Optimizer>> MakeOptimizer(
    const std::string& spec, uint64_t random_seed = 0);

// Result of running one MPF query end to end.
struct QueryResult {
  TablePtr table;
  PlanPtr plan;
  double planning_seconds = 0;
  double execution_seconds = 0;
  // The catalog epoch this query observed: the query saw exactly the state
  // committed by the first `snapshot_epoch` commits and nothing later.
  uint64_t snapshot_epoch = 0;
  // Whether the physical plan came from the shared plan cache.
  bool plan_cache_hit = false;
};

// Knobs for Database::QueryApprox.
struct ApproxOptions {
  // Target relative bound gap / Gibbs round-to-round movement. Sampling
  // stops as soon as either the dissociation gap or the estimate's
  // per-round delta drops to eps.
  double eps = 0.05;
  // Gibbs chain seed; 0 defers to ExecOptions::sampling_seed so a process
  // is bit-reproducible from configuration alone.
  uint64_t seed = 0;
  // Hard cap on Gibbs rounds (each sweeps_per_round full-state sweeps).
  size_t max_rounds = 64;
  size_t sweeps_per_round = 64;
  size_t burn_in_sweeps = 64;
  // When false, stop after the dissociation/conditioning bounds — no
  // sampling even if the gap is above eps.
  bool sampling = true;
};

// Result of one approximate query: guaranteed lower/upper bounds from the
// dissociation pass plus (optionally) a Gibbs point estimate, all over the
// query's group variables.
struct ApproxResult {
  // Semiring-guaranteed bounds: for every group, lower <= exact <= upper
  // (groups missing from a bound table bound at Add's identity). For
  // acyclic views both are the exact answer.
  TablePtr lower;
  TablePtr upper;
  // Point estimate. Selection semirings (max/min/or): the sampler's
  // incumbent — the best full-assignment score found, itself a valid bound.
  // Sum semirings: the normalized visit-frequency estimate of the marginal
  // over the group variables (log-frequency for log_sum_product); null when
  // sampling never completed a round (the bounds still stand).
  TablePtr estimate;
  // False iff the view was acyclic for this query — the result is exact.
  bool approximate = false;
  // The governing deadline expired mid-sampling; lower/upper/estimate are
  // the best published so far (never torn) and the call still returns OK.
  bool deadline_hit = false;
  // The eps target was met (by bound gap or sampler convergence).
  bool converged = false;
  // Largest per-group gap between the bounds: relative for the product
  // semirings, absolute for the additive ones, 0/1 for bool.
  double max_gap = 0;
  uint64_t samples = 0;     // post-burn-in Gibbs samples recorded
  size_t gibbs_rounds = 0;  // completed (published) sampler rounds
  uint64_t snapshot_epoch = 0;
  double seconds = 0;  // end-to-end wall time
  // Variables the dissociation pass split (empty = acyclic = exact).
  std::vector<std::string> split_vars;
};

// Hypothetical ("what-if") updates for the Alternate-measure and
// Alternate-domain query forms of Section 3.1. Applied to copies of the base
// relations for the duration of one query; stored tables are untouched.
struct WhatIf {
  // "What if part p1 was a different price": rows of `table` matching every
  // (var = value) pair get measure `new_measure`.
  struct MeasureUpdate {
    std::string table;
    std::vector<QuerySelection> match;
    double new_measure = 0;
  };
  // "What if c1's deal with t1 were transferred to t2": matching rows get
  // `var` rewritten to `new_value`. Rejected if the rewrite would violate
  // the functional dependency (two rows collapsing onto the same variable
  // values).
  struct DomainUpdate {
    std::string table;
    std::vector<QuerySelection> match;
    std::string var;
    VarValue new_value = 0;
  };

  std::vector<MeasureUpdate> measure_updates;
  std::vector<DomainUpdate> domain_updates;
};

// One base-relation measure update, addressed by the row's full variable
// assignment (all values, in the table's schema order).
struct MeasureUpdateSpec {
  std::string table;
  std::vector<VarValue> row_vars;
  double new_measure = 0;
};

// Tuning knobs for the MVCC commit pipeline.
struct DatabaseOptions {
  // Upper bound on the number of individual row updates one group-commit
  // leader folds into a single version bump.
  size_t commit_batch_max = 64;
  // Microseconds a fresh leader lingers for more writers to enqueue before
  // committing a non-full batch. 0 commits immediately (lowest latency);
  // small values trade update latency for coalescing under bursts.
  uint64_t commit_linger_us = 0;
  // Convert tables to chunked measure storage on CreateTable so the very
  // first measure commit already shares every untouched chunk with the
  // version snapshots pinned by readers.
  bool seal_tables_chunked = true;
  // Refresh VE-caches through the exact-replay delta path
  // (VeCache::WithMeasureDelta). When false every measure commit rebuilds
  // affected caches from scratch — the pre-MVCC behavior, kept as an
  // ablation lever for benchmarks.
  bool incremental_cache_refresh = true;
};

// Counters for the MVCC commit/GC machinery. All monotonic except the
// gauges (versions_retained, pinned_snapshots, live_measure_chunks,
// structural_epoch).
struct MvccStats {
  uint64_t commit_batches = 0;     // version bumps from measure commits
  uint64_t updates_applied = 0;    // row updates committed (excl. no-ops)
  uint64_t updates_coalesced = 0;  // writers that rode another leader's bump
  uint64_t delta_refreshes = 0;    // caches refreshed via WithMeasureDelta
  uint64_t full_rebuilds = 0;      // caches rebuilt (fallback or ablation)
  uint64_t versions_retired = 0;   // table versions superseded by a commit
  uint64_t versions_collected = 0; // retired versions freed by GC
  uint64_t versions_retained = 0;  // retired versions still pinned (gauge)
  uint64_t pinned_snapshots = 0;   // live snapshot pins (gauge)
  uint64_t structural_epoch = 0;   // schema-shape epoch (gauge)
  uint64_t live_measure_chunks = 0;  // process-wide chunk gauge
};

// The top-level library facade: owns the catalog, the MPF view definitions,
// the cost model and executor configuration, and any built VE-caches.
// Example:
//   Database db;
//   db.catalog().RegisterVariable("x", 10);
//   db.CreateTable(my_table);
//   db.CreateMpfView({"v", {"t1", "t2"}, Semiring::SumProduct()});
//   auto result = db.Query("v", {{"x"}, {}}, "ve(deg) ext.");
//
// Concurrency model (MVCC over chunked table versions):
//
//  * Readers — Query, QueryWhatIf, Explain, ExplainAnalyze, QueryCached —
//    pin an immutable Snapshot (epoch + catalog + view definitions, all
//    sharing the underlying table storage) and run entirely against it, so
//    an in-flight query never observes a torn catalog no matter how updates
//    interleave. Any number may run concurrently. A pinned snapshot keeps
//    every table version it references alive; versions a commit supersedes
//    are retired into per-table version chains and garbage-collected as the
//    snapshots pinning them are released.
//  * Measure writers — ApplyMeasureUpdate(s) — go through a group-commit
//    pipeline: concurrent callers enqueue, one leader folds up to
//    commit_batch_max row updates into a single new version per touched
//    table (Table::WithMeasureUpdates — new versions share every unchanged
//    measure chunk and the whole variable block with their predecessors),
//    refreshes affected VE-caches through the exact-replay delta path, and
//    publishes everything under one epoch bump. Commit cost scales with the
//    rows changed, not the table size.
//  * Structural writers — CreateTable, DropTable, CreateMpfView,
//    DropMpfView — commit under the exclusive lock and additionally bump
//    the *structural* epoch, which keys the plan cache: cached plans survive
//    measure commits (a plan depends only on schema shape and statistics'
//    order of magnitude) and are invalidated by structural changes.
//  * VE-caches are published as shared immutable version sets per view;
//    measure commits publish fresh versions (delta-refreshed, falling back
//    to a full rebuild when exact replay reports kFailedPrecondition, e.g.
//    an absorbing zero) so QueryCached is never served stale.
//  * The non-const catalog() accessor hands out direct mutable access for
//    single-threaded setup; every call conservatively bumps both epochs. Do
//    not mutate through a retained reference while queries are being served.
//  * Configuration setters (set_cost_model, set_exec_options,
//    set_plan_cache_enabled) are setup-time only, not thread-safe against
//    running queries.
class Database {
 public:
  explicit Database(DatabaseOptions options = {});

  const DatabaseOptions& options() const { return options_; }

  // Mutable access (setup): conservatively treated as a structural mutation
  // — both epochs are bumped and cached snapshots/plans are invalidated.
  Catalog& catalog();
  const Catalog& catalog() const { return catalog_; }

  // An immutable view of the database state as of one epoch. Tables are
  // shared with the live catalog (measure commits replace, never mutate, a
  // published table version). Holding the pointer pins every table version
  // it references against garbage collection.
  struct Snapshot {
    uint64_t epoch = 0;
    uint64_t structural_epoch = 0;
    Catalog catalog;
    std::map<std::string, MpfViewDef> views;
  };
  using SnapshotPtr = std::shared_ptr<const Snapshot>;
  // The current snapshot; cached, so repeated calls between commits share
  // one copy (and one GC pin).
  SnapshotPtr snapshot() const;

  // Number of committed mutations (structural + measure commits; one group
  // commit of many coalesced updates bumps this once).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  // Number of committed *structural* mutations (CreateTable/DropTable/
  // CreateMpfView/DropMpfView/non-const catalog() access).
  uint64_t structural_epoch() const {
    return structural_epoch_.load(std::memory_order_acquire);
  }

  // Registers a base table (its variables must be registered first). When
  // DatabaseOptions::seal_tables_chunked is set the table is converted to
  // chunked measure storage so later versions share unchanged chunks.
  Status CreateTable(TablePtr table);
  // Drops a table; refuses while any view references it.
  Status DropTable(const std::string& name);

  // Changes the measure of the base-relation row of `table_name` identified
  // by `row_vars` (all variable values, in schema order) to `new_measure`.
  // Equivalent to ApplyMeasureUpdates with one spec.
  Status ApplyMeasureUpdate(const std::string& table_name,
                            const std::vector<VarValue>& row_vars,
                            double new_measure,
                            uint64_t* commit_epoch = nullptr);

  // Commits a batch of measure updates atomically under one version bump.
  // Concurrent callers are group-committed: one leader drains the queue and
  // commits everyone's updates together (later specs win when two target
  // the same row). The call returns when this batch's updates are durable
  // in the published state; per-call errors (unknown table, no matching
  // row) fail only that call, not the batch it rode in. A non-null
  // `commit_epoch` receives the exact epoch of the commit that applied this
  // batch (a snapshot at or past it sees every update; when every spec was
  // a no-op it is the epoch the batch was validated against).
  Status ApplyMeasureUpdates(const std::vector<MeasureUpdateSpec>& specs,
                             uint64_t* commit_epoch = nullptr);

  // Registers an MPF view over existing tables.
  Status CreateMpfView(MpfViewDef view);
  // Drops a view and any VE-cache built on it.
  Status DropMpfView(const std::string& name);
  StatusOr<const MpfViewDef*> GetView(const std::string& name) const;
  std::vector<std::string> ViewNames() const;

  // Optimizes and executes an MPF query against a view. `optimizer_spec`
  // accepts the MakeOptimizer names; the default is the strongest
  // single-query optimizer. A non-null `ctx` runs the execution governed:
  // memory budget (with spill-based degradation), cancellation, deadline.
  // Runs against the current snapshot; physical plans are memoized in the
  // shared plan cache keyed on (view, canonical query, optimizer, exec
  // fingerprint) at the snapshot's *structural* epoch — measure commits do
  // not invalidate plans.
  StatusOr<QueryResult> Query(const std::string& view_name,
                              const MpfQuerySpec& query,
                              const std::string& optimizer_spec =
                                  "cs+nonlinear",
                              QueryContext* ctx = nullptr);

  // Anytime approximate query. Splits the view's cyclic-core variables
  // (opt::ChooseSplitVars) and runs two rewritten exact queries through the
  // ordinary optimizer/executor stack: the dissociated relaxation (superset
  // of assignments) and the conditioned restriction (subset), which bound
  // the exact answer from opposite sides (opt::DissociatedBoundSide gives
  // the orientation per semiring). If the bound gap exceeds approx.eps and
  // approx.sampling is set, a Gibbs chain (exec::GibbsEstimator) tightens a
  // point estimate round by round until eps, max_rounds, or the deadline.
  //
  // Deadline semantics differ from Query: once the bounds are in hand, an
  // expiring `ctx` deadline *degrades* the answer instead of failing it —
  // the call returns OK with deadline_hit set and the best bounds/estimate
  // published so far. Only a failure before both bounds complete (or a
  // cancellation) surfaces as an error. Acyclic views return the exact
  // answer with approximate=false. kFailedPrecondition when sum_product
  // bounds would need non-negative measures and the view has negative ones.
  StatusOr<ApproxResult> QueryApprox(const std::string& view_name,
                                     const MpfQuerySpec& query,
                                     const ApproxOptions& approx = {},
                                     const std::string& optimizer_spec =
                                         "cs+nonlinear",
                                     QueryContext* ctx = nullptr);

  // Runs an MPF query against a hypothetically modified view: the what-if
  // updates are applied to copies of the affected base relations, the query
  // is optimized and executed against those copies, and the stored tables
  // remain untouched.
  StatusOr<QueryResult> QueryWhatIf(const std::string& view_name,
                                    const MpfQuerySpec& query,
                                    const WhatIf& what_if,
                                    const std::string& optimizer_spec =
                                        "cs+nonlinear");

  // Optimizes only and renders the plan (EXPLAIN).
  StatusOr<std::string> Explain(const std::string& view_name,
                                const MpfQuerySpec& query,
                                const std::string& optimizer_spec =
                                    "cs+nonlinear");

  // Optimizes, executes with per-node instrumentation, and renders the plan
  // with estimated vs actual row counts (EXPLAIN ANALYZE). Bypasses the plan
  // cache (the stats spine needs a private physical tree).
  StatusOr<std::string> ExplainAnalyze(const std::string& view_name,
                                       const MpfQuerySpec& query,
                                       const std::string& optimizer_spec =
                                           "cs+nonlinear");

  // EXPLAIN ANALYZE for the approximate path: runs QueryApprox and renders
  // the split set, per-bound result sizes, the bound gap, and the sampler's
  // rounds/samples/samples-per-second alongside the result tables.
  StatusOr<std::string> ExplainAnalyzeApprox(const std::string& view_name,
                                             const MpfQuerySpec& query,
                                             const ApproxOptions& approx = {},
                                             const std::string& optimizer_spec =
                                                 "cs+nonlinear");

  // Builds (or rebuilds) the VE-cache for a view (Section 6) so subsequent
  // QueryCached calls answer from materialized views. A non-null `ctx`
  // bounds the construction: the materialized cache tables charge against
  // its memory budget (cache construction does not spill — a breach fails
  // with kResourceExhausted) and elimination steps honor cancel/deadline.
  // The build runs against a snapshot without blocking readers or writers;
  // if the catalog changes underneath it, the build is retried against the
  // fresh state a few times before giving up with kInternal.
  Status BuildCache(const std::string& view_name, QueryContext* ctx = nullptr);
  bool HasCache(const std::string& view_name) const;
  StatusOr<TablePtr> QueryCached(const std::string& view_name,
                                 const MpfQuerySpec& query) const;

  // MVCC commit/GC counters. Cheap; safe to poll concurrently.
  MvccStats mvcc_stats() const;

  void set_cost_model(std::unique_ptr<CostModel> cost_model) {
    cost_model_ = std::move(cost_model);
  }
  const CostModel& cost_model() const { return *cost_model_; }
  void set_exec_options(exec::ExecOptions options);

  // The shared physical-plan cache (hit/miss/invalidation counters live on
  // it). Enabled by default; disable for ablations that must re-plan every
  // query.
  server::PlanCache& plan_cache() { return plan_cache_; }
  const server::PlanCache& plan_cache() const { return plan_cache_; }
  void set_plan_cache_enabled(bool enabled) { plan_cache_enabled_ = enabled; }

  // The database-owned worker pool for intra-query parallelism, created
  // lazily from ExecOptions::num_threads (0 = hardware_concurrency).
  // Returns null when the resolved thread count is 1 — queries then run on
  // the calling thread exactly as the serial engine does. The pool is shared
  // by every concurrently admitted query (ThreadPool supports concurrent
  // ParallelFor posts).
  exec::ThreadPool* thread_pool();

 private:
  struct CacheEntry {
    std::shared_ptr<const workload::VeCache> cache;
    uint64_t epoch = 0;  // epoch the cache is consistent with
  };

  // Version-chain GC state. Owned via shared_ptr so snapshot deleters stay
  // valid even if they outlive the Database. Lock order: state_mu_ before
  // GcState::mu (snapshot release takes only GcState::mu).
  struct GcState {
    struct Retired {
      uint64_t birth = 0;  // epoch the version was published at
      uint64_t death = 0;  // epoch of the commit that superseded it
      TablePtr table;
    };

    std::mutex mu;
    std::multiset<uint64_t> pins;                      // pinned epochs
    std::map<std::string, std::vector<Retired>> chains;
    std::map<std::string, uint64_t> birth_epoch;  // live version's birth
    uint64_t versions_retired = 0;
    uint64_t versions_collected = 0;

    // Drops every retired version no pinned epoch can still see (a pin at
    // epoch p holds versions with birth <= p < death). Caller holds mu.
    void CollectLocked();
  };

  // One writer's enqueued batch in the group-commit pipeline.
  struct PendingCommit {
    std::vector<MeasureUpdateSpec> specs;
    Status status = Status::Ok();
    uint64_t commit_epoch = 0;  // epoch of the commit that applied the batch
    bool done = false;
  };

  // Structural commit: bumps both epochs, drops the cached snapshot, sweeps
  // the plan cache. Caller holds state_mu_ exclusively.
  void BumpStructuralLocked();
  // Measure commit: bumps the data epoch only (plans stay valid). Caller
  // holds state_mu_ exclusively.
  void BumpDataEpochLocked();

  // Stages and publishes one group-commit batch; fills every pending's
  // status and marks it done. Runs on the leader thread, outside commit_mu_.
  void CommitBatch(std::vector<std::shared_ptr<PendingCommit>>& batch);

  DatabaseOptions options_;

  Catalog catalog_;                          // guarded by state_mu_
  std::map<std::string, MpfViewDef> views_;  // guarded by state_mu_
  std::map<std::string, CacheEntry> caches_;  // guarded by state_mu_
  mutable std::shared_mutex state_mu_;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> structural_epoch_{0};
  mutable SnapshotPtr snapshot_cache_;  // guarded by state_mu_

  std::shared_ptr<GcState> gc_ = std::make_shared<GcState>();

  // Group-commit pipeline: writers enqueue under commit_mu_; the first
  // writer to find no active leader becomes one, drains up to
  // commit_batch_max row updates, and commits them outside the lock.
  std::mutex commit_mu_;
  std::condition_variable commit_cv_;
  std::deque<std::shared_ptr<PendingCommit>> commit_queue_;
  bool commit_leader_active_ = false;  // guarded by commit_mu_

  std::atomic<uint64_t> commit_batches_{0};
  std::atomic<uint64_t> updates_applied_{0};
  std::atomic<uint64_t> updates_coalesced_{0};
  std::atomic<uint64_t> delta_refreshes_{0};
  std::atomic<uint64_t> full_rebuilds_{0};

  server::PlanCache plan_cache_;
  bool plan_cache_enabled_ = true;

  std::unique_ptr<CostModel> cost_model_;
  exec::ExecOptions exec_options_;
  std::mutex pool_mu_;
  std::unique_ptr<exec::ThreadPool> pool_;  // guarded by pool_mu_
};

}  // namespace mpfdb

#endif  // MPFDB_CORE_DATABASE_H_
