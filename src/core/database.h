#ifndef MPFDB_CORE_DATABASE_H_
#define MPFDB_CORE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "exec/executor.h"
#include "exec/thread_pool.h"
#include "opt/optimizer.h"
#include "plan/plan.h"
#include "storage/catalog.h"
#include "workload/vecache.h"

namespace mpfdb {

// Builds an optimizer from a textual spec, the same names the paper's plots
// use:
//   "cs" | "cs+" | "cs+nonlinear" |
//   "ve(deg)" | "ve(width)" | "ve(elim_cost)" | "ve(deg&width)" |
//   "ve(deg&elim_cost)" | "ve(random)"       — each with optional " ext."
//   suffix (e.g. "ve(deg) ext.") for the Section 5.4 extended space.
StatusOr<std::unique_ptr<opt::Optimizer>> MakeOptimizer(
    const std::string& spec, uint64_t random_seed = 0);

// Result of running one MPF query end to end.
struct QueryResult {
  TablePtr table;
  PlanPtr plan;
  double planning_seconds = 0;
  double execution_seconds = 0;
};

// Hypothetical ("what-if") updates for the Alternate-measure and
// Alternate-domain query forms of Section 3.1. Applied to copies of the base
// relations for the duration of one query; stored tables are untouched.
struct WhatIf {
  // "What if part p1 was a different price": rows of `table` matching every
  // (var = value) pair get measure `new_measure`.
  struct MeasureUpdate {
    std::string table;
    std::vector<QuerySelection> match;
    double new_measure = 0;
  };
  // "What if c1's deal with t1 were transferred to t2": matching rows get
  // `var` rewritten to `new_value`. Rejected if the rewrite would violate
  // the functional dependency (two rows collapsing onto the same variable
  // values).
  struct DomainUpdate {
    std::string table;
    std::vector<QuerySelection> match;
    std::string var;
    VarValue new_value = 0;
  };

  std::vector<MeasureUpdate> measure_updates;
  std::vector<DomainUpdate> domain_updates;
};

// The top-level library facade: owns the catalog, the MPF view definitions,
// the cost model and executor configuration, and any built VE-caches.
// Example:
//   Database db;
//   db.catalog().RegisterVariable("x", 10);
//   db.CreateTable(my_table);
//   db.CreateMpfView({"v", {"t1", "t2"}, Semiring::SumProduct()});
//   auto result = db.Query("v", {{"x"}, {}}, "ve(deg) ext.");
class Database {
 public:
  Database();

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  // Registers a base table (its variables must be registered first).
  Status CreateTable(TablePtr table);
  // Drops a table; refuses while any view references it.
  Status DropTable(const std::string& name);

  // Registers an MPF view over existing tables.
  Status CreateMpfView(MpfViewDef view);
  // Drops a view and any VE-cache built on it.
  Status DropMpfView(const std::string& name);
  StatusOr<const MpfViewDef*> GetView(const std::string& name) const;
  std::vector<std::string> ViewNames() const;

  // Optimizes and executes an MPF query against a view. `optimizer_spec`
  // accepts the MakeOptimizer names; the default is the strongest
  // single-query optimizer. A non-null `ctx` runs the execution governed:
  // memory budget (with spill-based degradation), cancellation, deadline.
  StatusOr<QueryResult> Query(const std::string& view_name,
                              const MpfQuerySpec& query,
                              const std::string& optimizer_spec =
                                  "cs+nonlinear",
                              QueryContext* ctx = nullptr);

  // Runs an MPF query against a hypothetically modified view: the what-if
  // updates are applied to copies of the affected base relations, the query
  // is optimized and executed against those copies, and the stored tables
  // remain untouched.
  StatusOr<QueryResult> QueryWhatIf(const std::string& view_name,
                                    const MpfQuerySpec& query,
                                    const WhatIf& what_if,
                                    const std::string& optimizer_spec =
                                        "cs+nonlinear");

  // Optimizes only and renders the plan (EXPLAIN).
  StatusOr<std::string> Explain(const std::string& view_name,
                                const MpfQuerySpec& query,
                                const std::string& optimizer_spec =
                                    "cs+nonlinear");

  // Optimizes, executes with per-node instrumentation, and renders the plan
  // with estimated vs actual row counts (EXPLAIN ANALYZE).
  StatusOr<std::string> ExplainAnalyze(const std::string& view_name,
                                       const MpfQuerySpec& query,
                                       const std::string& optimizer_spec =
                                           "cs+nonlinear");

  // Builds (or rebuilds) the VE-cache for a view (Section 6) so subsequent
  // QueryCached calls answer from materialized views. A non-null `ctx`
  // bounds the construction: the materialized cache tables charge against
  // its memory budget (cache construction does not spill — a breach fails
  // with kResourceExhausted) and elimination steps honor cancel/deadline.
  Status BuildCache(const std::string& view_name, QueryContext* ctx = nullptr);
  bool HasCache(const std::string& view_name) const;
  StatusOr<TablePtr> QueryCached(const std::string& view_name,
                                 const MpfQuerySpec& query) const;

  void set_cost_model(std::unique_ptr<CostModel> cost_model) {
    cost_model_ = std::move(cost_model);
  }
  const CostModel& cost_model() const { return *cost_model_; }
  void set_exec_options(exec::ExecOptions options) {
    exec_options_ = options;
    // The pool is sized from num_threads on first use; drop a stale one so a
    // changed knob takes effect on the next query.
    pool_.reset();
  }

  // The database-owned worker pool for intra-query parallelism, created
  // lazily from ExecOptions::num_threads (0 = hardware_concurrency).
  // Returns null when the resolved thread count is 1 — queries then run on
  // the calling thread exactly as the serial engine does.
  exec::ThreadPool* thread_pool();

 private:
  Catalog catalog_;
  std::map<std::string, MpfViewDef> views_;
  std::map<std::string, workload::VeCache> caches_;
  std::unique_ptr<CostModel> cost_model_;
  exec::ExecOptions exec_options_;
  std::unique_ptr<exec::ThreadPool> pool_;
};

}  // namespace mpfdb

#endif  // MPFDB_CORE_DATABASE_H_
