#ifndef MPFDB_CORE_PERSISTENCE_H_
#define MPFDB_CORE_PERSISTENCE_H_

#include <string>

#include "core/database.h"
#include "util/status.h"

namespace mpfdb {

// Saves the database (variables, tables with keys, MPF views) into a
// directory: one `manifest` text file plus one file per table — CSV by
// default, the binary paged DiskTable format when `binary` is true (far
// faster to load; loaders pick by file extension). The directory is created
// if missing; existing files are overwritten. VE-caches and indexes are not
// persisted — they are derived state.
Status SaveDatabase(const Database& db, const std::string& directory,
                    bool binary = false);

// Loads a database previously written by SaveDatabase into `db`, which must
// be empty (no clash with existing variables/tables/views).
Status LoadDatabase(const std::string& directory, Database& db);

}  // namespace mpfdb

#endif  // MPFDB_CORE_PERSISTENCE_H_
