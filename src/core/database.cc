#include "core/database.h"

#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "fr/algebra.h"
#include "opt/cs.h"
#include "opt/ve.h"
#include "util/strings.h"

namespace mpfdb {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

StatusOr<std::unique_ptr<opt::Optimizer>> MakeOptimizer(const std::string& spec,
                                                        uint64_t random_seed) {
  std::string s = ToLower(std::string(StripWhitespace(spec)));
  if (s == "cs") return std::unique_ptr<opt::Optimizer>(new opt::CsOptimizer());
  if (s == "cs+" || s == "cs+linear") {
    return std::unique_ptr<opt::Optimizer>(new opt::CsPlusOptimizer(false));
  }
  if (s == "cs+nonlinear") {
    return std::unique_ptr<opt::Optimizer>(new opt::CsPlusOptimizer(true));
  }
  if (s.rfind("ve(", 0) == 0) {
    size_t close = s.find(')');
    if (close == std::string::npos) {
      return Status::InvalidArgument("unterminated VE heuristic in: " + spec);
    }
    std::string heuristic_name = s.substr(3, close - 3);
    std::string suffix = std::string(StripWhitespace(s.substr(close + 1)));
    opt::VeOptions options;
    options.seed = random_seed;
    if (heuristic_name == "deg" || heuristic_name == "degree") {
      options.heuristic = opt::VeHeuristic::kDegree;
    } else if (heuristic_name == "width") {
      options.heuristic = opt::VeHeuristic::kWidth;
    } else if (heuristic_name == "elim_cost") {
      options.heuristic = opt::VeHeuristic::kElimCost;
    } else if (heuristic_name == "deg&width") {
      options.heuristic = opt::VeHeuristic::kDegreeWidth;
    } else if (heuristic_name == "deg&elim_cost") {
      options.heuristic = opt::VeHeuristic::kDegreeElimCost;
    } else if (heuristic_name == "random") {
      options.heuristic = opt::VeHeuristic::kRandom;
    } else if (heuristic_name == "min_fill") {
      options.heuristic = opt::VeHeuristic::kMinFill;
    } else {
      return Status::InvalidArgument("unknown VE heuristic: " + heuristic_name);
    }
    if (suffix == "ext." || suffix == "ext") {
      options.extended = true;
    } else if (suffix == "ext+fd" || suffix == "ext. fd") {
      options.extended = true;
      options.fd_pruning = true;
    } else if (!suffix.empty()) {
      return Status::InvalidArgument("unknown VE suffix: '" + suffix + "'");
    }
    return std::unique_ptr<opt::Optimizer>(new opt::VeOptimizer(options));
  }
  return Status::InvalidArgument("unknown optimizer spec: " + spec);
}

Database::Database()
    : cost_model_(std::make_unique<SimpleCostModel>()), exec_options_{} {}

Catalog& Database::catalog() {
  // Mutable access is indistinguishable from a mutation: invalidate
  // conservatively so snapshots and cached plans can never go stale through
  // this escape hatch.
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  BumpEpochLocked();
  return catalog_;
}

void Database::BumpEpochLocked() {
  uint64_t next = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  snapshot_cache_.reset();
  plan_cache_.OnEpochBump(next);
}

Database::SnapshotPtr Database::snapshot() const {
  {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    if (snapshot_cache_ != nullptr &&
        snapshot_cache_->epoch == epoch_.load(std::memory_order_relaxed)) {
      return snapshot_cache_;
    }
  }
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  if (snapshot_cache_ == nullptr || snapshot_cache_->epoch != epoch) {
    auto snap = std::make_shared<Snapshot>();
    snap->epoch = epoch;
    snap->catalog = catalog_;  // shares the (immutable) table storage
    snap->views = views_;
    snapshot_cache_ = std::move(snap);
  }
  return snapshot_cache_;
}

void Database::set_exec_options(exec::ExecOptions options) {
  exec_options_ = options;
}

exec::ThreadPool* Database::thread_pool() {
  size_t threads = exec_options_.num_threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  if (threads <= 1) return nullptr;
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pool_ == nullptr || pool_->num_threads() != threads) {
    pool_ = std::make_unique<exec::ThreadPool>(threads);
  }
  return pool_.get();
}

Status Database::CreateTable(TablePtr table) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  MPFDB_RETURN_IF_ERROR(catalog_.RegisterTable(std::move(table)));
  BumpEpochLocked();
  return Status::Ok();
}

Status Database::DropTable(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  for (const auto& [view_name, view] : views_) {
    for (const auto& rel : view.relations) {
      if (rel == name) {
        return Status::FailedPrecondition("table '" + name +
                                          "' is referenced by view '" +
                                          view_name + "'; drop the view first");
      }
    }
  }
  MPFDB_RETURN_IF_ERROR(catalog_.DropTable(name));
  BumpEpochLocked();
  return Status::Ok();
}

Status Database::DropMpfView(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  if (views_.erase(name) == 0) {
    return Status::NotFound("view '" + name + "' does not exist");
  }
  caches_.erase(name);
  BumpEpochLocked();
  return Status::Ok();
}

Status Database::CreateMpfView(MpfViewDef view) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  if (views_.count(view.name) > 0) {
    return Status::AlreadyExists("view '" + view.name + "' already exists");
  }
  for (const auto& rel : view.relations) {
    if (!catalog_.HasTable(rel)) {
      return Status::NotFound("view '" + view.name +
                              "' references missing table '" + rel + "'");
    }
  }
  if (view.relations.empty()) {
    return Status::InvalidArgument("view '" + view.name + "' has no relations");
  }
  std::string name = view.name;
  views_.emplace(std::move(name), std::move(view));
  BumpEpochLocked();
  return Status::Ok();
}

StatusOr<const MpfViewDef*> Database::GetView(const std::string& name) const {
  // std::map nodes are stable, so the pointer survives until the view is
  // dropped. Concurrent readers should prefer snapshot().
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("view '" + name + "' does not exist");
  }
  return &it->second;
}

std::vector<std::string> Database::ViewNames() const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  std::vector<std::string> names;
  for (const auto& [name, view] : views_) names.push_back(name);
  return names;
}

StatusOr<QueryResult> Database::Query(const std::string& view_name,
                                      const MpfQuerySpec& query,
                                      const std::string& optimizer_spec,
                                      QueryContext* ctx) {
  SnapshotPtr snap = snapshot();
  auto view_it = snap->views.find(view_name);
  if (view_it == snap->views.end()) {
    return Status::NotFound("view '" + view_name + "' does not exist");
  }
  const MpfViewDef& view = view_it->second;

  QueryResult result;
  result.snapshot_epoch = snap->epoch;

  // Plan-cache key: everything that determines which physical plan is built.
  // The planner-visible memory budget is part of it — under a finite budget
  // auto mode restricts itself to spill-capable operators.
  const std::string cache_key =
      view_name + "|" + server::CanonicalQueryKey(query) + "|o:" +
      optimizer_spec + "|" +
      server::ExecFingerprint(exec_options_, ctx ? ctx->memory_limit() : 0);

  auto plan_start = std::chrono::steady_clock::now();
  std::shared_ptr<const server::CachedPlan> cached;
  if (plan_cache_enabled_) {
    cached = plan_cache_.Lookup(cache_key, snap->epoch);
  }
  if (cached != nullptr) {
    result.plan_cache_hit = true;
  } else {
    MPFDB_ASSIGN_OR_RETURN(std::unique_ptr<opt::Optimizer> optimizer,
                           MakeOptimizer(optimizer_spec));
    MPFDB_ASSIGN_OR_RETURN(PlanPtr logical,
                           optimizer->Optimize(view, query, snap->catalog,
                                               *cost_model_));
    exec::Executor planner(snap->catalog, view.semiring, exec_options_);
    MPFDB_ASSIGN_OR_RETURN(std::unique_ptr<PhysicalPlanNode> physical,
                           planner.PlanPhysical(*logical, ctx));
    auto entry = std::make_shared<server::CachedPlan>();
    entry->logical = std::move(logical);
    entry->physical =
        std::shared_ptr<const PhysicalPlanNode>(std::move(physical));
    if (plan_cache_enabled_) {
      plan_cache_.Insert(cache_key, snap->epoch, entry);
    }
    cached = std::move(entry);
  }
  result.plan = cached->logical;
  result.planning_seconds = SecondsSince(plan_start);

  exec::Executor executor(snap->catalog, view.semiring, exec_options_);
  auto exec_start = std::chrono::steady_clock::now();
  // Wire the database-owned pool into the query's context so the operator
  // tree can run morsel-parallel. A caller-provided pool wins; a caller that
  // passed no context at all gets a local one just to carry the pool.
  QueryContext local_ctx;
  QueryContext* qctx = ctx;
  exec::ThreadPool* pool = thread_pool();
  bool unset_pool = false;
  if (pool != nullptr) {
    if (qctx == nullptr) qctx = &local_ctx;
    if (qctx->thread_pool() == nullptr) {
      qctx->set_thread_pool(pool);
      unset_pool = qctx == ctx;
    }
  }
  auto table =
      executor.ExecutePhysical(*cached->physical, view_name + "_result", qctx);
  if (unset_pool) ctx->set_thread_pool(nullptr);
  MPFDB_RETURN_IF_ERROR(table.status());
  result.table = std::move(*table);
  result.execution_seconds = SecondsSince(exec_start);
  return result;
}

namespace {

// Applies one measure update to a cloned table.
Status ApplyWhatIfMeasureUpdate(Table& table,
                                const WhatIf::MeasureUpdate& update) {
  std::vector<std::pair<size_t, VarValue>> match;
  for (const auto& m : update.match) {
    auto idx = table.schema().IndexOf(m.var);
    if (!idx) {
      return Status::InvalidArgument("what-if match variable '" + m.var +
                                     "' not in table " + table.name());
    }
    match.emplace_back(*idx, m.value);
  }
  size_t touched = 0;
  for (size_t i = 0; i < table.NumRows(); ++i) {
    RowView row = table.Row(i);
    bool all = true;
    for (const auto& [idx, value] : match) {
      if (row.var(idx) != value) {
        all = false;
        break;
      }
    }
    if (all) {
      table.set_measure(i, update.new_measure);
      ++touched;
    }
  }
  if (touched == 0) {
    return Status::NotFound("what-if measure update matched no rows of " +
                            table.name());
  }
  return Status::Ok();
}

// Applies one domain update to a cloned table, rebuilding it so the
// functional dependency can be verified.
StatusOr<TablePtr> ApplyDomainUpdate(const Table& table,
                                     const WhatIf::DomainUpdate& update) {
  auto var_idx = table.schema().IndexOf(update.var);
  if (!var_idx) {
    return Status::InvalidArgument("what-if variable '" + update.var +
                                   "' not in table " + table.name());
  }
  std::vector<std::pair<size_t, VarValue>> match;
  for (const auto& m : update.match) {
    auto idx = table.schema().IndexOf(m.var);
    if (!idx) {
      return Status::InvalidArgument("what-if match variable '" + m.var +
                                     "' not in table " + table.name());
    }
    match.emplace_back(*idx, m.value);
  }
  auto rebuilt = std::make_shared<Table>(table.name(), table.schema());
  rebuilt->Reserve(table.NumRows());
  std::vector<VarValue> vars(table.schema().arity());
  size_t touched = 0;
  for (size_t i = 0; i < table.NumRows(); ++i) {
    RowView row = table.Row(i);
    vars.assign(row.vars, row.vars + row.arity);
    bool all = true;
    for (const auto& [idx, value] : match) {
      if (row.var(idx) != value) {
        all = false;
        break;
      }
    }
    if (all) {
      vars[*var_idx] = update.new_value;
      ++touched;
    }
    rebuilt->AppendRow(vars, row.measure);
  }
  if (touched == 0) {
    return Status::NotFound("what-if domain update matched no rows of " +
                            table.name());
  }
  MPFDB_RETURN_IF_ERROR(fr::CheckFunctionalDependency(*rebuilt));
  return rebuilt;
}

}  // namespace

StatusOr<QueryResult> Database::QueryWhatIf(const std::string& view_name,
                                            const MpfQuerySpec& query,
                                            const WhatIf& what_if,
                                            const std::string& optimizer_spec) {
  SnapshotPtr snap = snapshot();
  auto view_it = snap->views.find(view_name);
  if (view_it == snap->views.end()) {
    return Status::NotFound("view '" + view_name + "' does not exist");
  }
  const MpfViewDef& view = view_it->second;

  // Scratch catalog: shares unmodified tables, swaps in modified clones.
  Catalog scratch = snap->catalog;
  auto clone_into_scratch = [&](const std::string& name) -> StatusOr<TablePtr> {
    MPFDB_ASSIGN_OR_RETURN(TablePtr original, scratch.GetTable(name));
    TablePtr clone(original->Clone(name));
    MPFDB_RETURN_IF_ERROR(scratch.DropTable(name));
    MPFDB_RETURN_IF_ERROR(scratch.RegisterTable(clone));
    return clone;
  };
  for (const auto& update : what_if.measure_updates) {
    MPFDB_ASSIGN_OR_RETURN(TablePtr clone, clone_into_scratch(update.table));
    MPFDB_RETURN_IF_ERROR(ApplyWhatIfMeasureUpdate(*clone, update));
  }
  for (const auto& update : what_if.domain_updates) {
    MPFDB_ASSIGN_OR_RETURN(TablePtr original, clone_into_scratch(update.table));
    MPFDB_ASSIGN_OR_RETURN(TablePtr rebuilt,
                           ApplyDomainUpdate(*original, update));
    MPFDB_RETURN_IF_ERROR(scratch.DropTable(update.table));
    MPFDB_RETURN_IF_ERROR(scratch.RegisterTable(rebuilt));
  }

  MPFDB_ASSIGN_OR_RETURN(std::unique_ptr<opt::Optimizer> optimizer,
                         MakeOptimizer(optimizer_spec));
  QueryResult result;
  result.snapshot_epoch = snap->epoch;
  auto plan_start = std::chrono::steady_clock::now();
  MPFDB_ASSIGN_OR_RETURN(
      result.plan, optimizer->Optimize(view, query, scratch, *cost_model_));
  result.planning_seconds = SecondsSince(plan_start);

  exec::Executor executor(scratch, view.semiring, exec_options_);
  auto exec_start = std::chrono::steady_clock::now();
  MPFDB_ASSIGN_OR_RETURN(result.table,
                         executor.Execute(*result.plan, view_name + "_whatif"));
  result.execution_seconds = SecondsSince(exec_start);
  return result;
}

Status Database::ApplyMeasureUpdate(const std::string& table_name,
                                    const std::vector<VarValue>& row_vars,
                                    double new_measure) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  MPFDB_ASSIGN_OR_RETURN(TablePtr table, catalog_.GetTable(table_name));
  if (row_vars.size() != table->schema().arity()) {
    return Status::InvalidArgument(
        "ApplyMeasureUpdate: row has " + std::to_string(row_vars.size()) +
        " values but table '" + table_name + "' has arity " +
        std::to_string(table->schema().arity()));
  }
  std::optional<size_t> row;
  for (size_t i = 0; i < table->NumRows(); ++i) {
    RowView r = table->Row(i);
    bool all = true;
    for (size_t j = 0; j < r.arity; ++j) {
      if (r.var(j) != row_vars[j]) {
        all = false;
        break;
      }
    }
    if (all) {
      row = i;
      break;
    }
  }
  if (!row) {
    return Status::NotFound("ApplyMeasureUpdate matched no row of '" +
                            table_name + "'");
  }
  if (table->measure(*row) == new_measure) return Status::Ok();  // no-op

  // Stage everything fallible before touching shared state: the cloned
  // table, and a refreshed VE-cache per view over this table (incremental
  // rescale on a deep clone; full rebuild against the staged catalog when
  // the incremental path reports kFailedPrecondition, i.e. the old measure
  // was an absorbing zero).
  TablePtr clone(table->Clone(table_name));
  clone->set_measure(*row, new_measure);

  std::vector<std::pair<std::string, std::shared_ptr<const workload::VeCache>>>
      refreshed;
  for (const auto& [view_name, entry] : caches_) {
    const MpfViewDef& view = views_.at(view_name);
    bool references = false;
    for (const auto& rel : view.relations) {
      if (rel == table_name) {
        references = true;
        break;
      }
    }
    if (!references) continue;
    workload::VeCache updated = entry.cache->CloneDeep();
    Status s = updated.ApplyBaseMeasureUpdate(table_name, row_vars,
                                              new_measure);
    if (s.ok()) {
      refreshed.emplace_back(
          view_name,
          std::make_shared<const workload::VeCache>(std::move(updated)));
      continue;
    }
    if (s.code() != StatusCode::kFailedPrecondition) return s;
    Catalog staged = catalog_;
    MPFDB_RETURN_IF_ERROR(staged.ReplaceTable(clone));
    MPFDB_ASSIGN_OR_RETURN(workload::VeCache rebuilt,
                           workload::VeCache::Build(view, staged));
    refreshed.emplace_back(
        view_name,
        std::make_shared<const workload::VeCache>(std::move(rebuilt)));
  }

  // Commit: swap the table copy-on-write, bump the epoch, publish the
  // refreshed caches at the new epoch. Nothing below can fail except
  // ReplaceTable's invariant checks, which the staging above already proved.
  MPFDB_RETURN_IF_ERROR(catalog_.ReplaceTable(std::move(clone)));
  BumpEpochLocked();
  uint64_t new_epoch = epoch_.load(std::memory_order_relaxed);
  for (auto& [view_name, cache] : refreshed) {
    caches_[view_name] = CacheEntry{std::move(cache), new_epoch};
  }
  // Caches over unrelated tables stay valid across this commit.
  for (auto& [view_name, entry] : caches_) entry.epoch = new_epoch;
  return Status::Ok();
}

StatusOr<std::string> Database::Explain(const std::string& view_name,
                                        const MpfQuerySpec& query,
                                        const std::string& optimizer_spec) {
  SnapshotPtr snap = snapshot();
  auto view_it = snap->views.find(view_name);
  if (view_it == snap->views.end()) {
    return Status::NotFound("view '" + view_name + "' does not exist");
  }
  const MpfViewDef& view = view_it->second;
  MPFDB_ASSIGN_OR_RETURN(std::unique_ptr<opt::Optimizer> optimizer,
                         MakeOptimizer(optimizer_spec));
  MPFDB_ASSIGN_OR_RETURN(PlanPtr plan,
                         optimizer->Optimize(view, query, snap->catalog,
                                             *cost_model_));
  // The logical plan (the optimizer's output) followed by the physical plan
  // (per-node algorithm selection, interesting orders, physical costs).
  exec::Executor executor(snap->catalog, view.semiring, exec_options_);
  MPFDB_ASSIGN_OR_RETURN(std::unique_ptr<PhysicalPlanNode> physical,
                         executor.PlanPhysical(*plan));
  return "-- optimizer: " + optimizer->name() + "\n-- query: " +
         query.ToString(view) + "\n" + ExplainPlan(*plan) +
         "-- physical plan:\n" + ExplainPhysicalPlan(*physical);
}

StatusOr<std::string> Database::ExplainAnalyze(
    const std::string& view_name, const MpfQuerySpec& query,
    const std::string& optimizer_spec) {
  SnapshotPtr snap = snapshot();
  auto view_it = snap->views.find(view_name);
  if (view_it == snap->views.end()) {
    return Status::NotFound("view '" + view_name + "' does not exist");
  }
  const MpfViewDef& view = view_it->second;
  MPFDB_ASSIGN_OR_RETURN(std::unique_ptr<opt::Optimizer> optimizer,
                         MakeOptimizer(optimizer_spec));
  MPFDB_ASSIGN_OR_RETURN(
      PlanPtr plan,
      optimizer->Optimize(view, query, snap->catalog, *cost_model_));
  exec::Executor executor(snap->catalog, view.semiring, exec_options_);
  MPFDB_ASSIGN_OR_RETURN(exec::Executor::AnalyzedResult analyzed,
                         executor.ExecuteAnalyze(*plan, view_name + "_result"));
  return "-- optimizer: " + optimizer->name() + "\n-- query: " +
         query.ToString(view) + "\n" +
         exec::ExplainAnalyzePlan(*analyzed.physical, analyzed.stats);
}

Status Database::BuildCache(const std::string& view_name, QueryContext* ctx) {
  // Build against a snapshot so readers and writers keep running; publish
  // only if the state the build saw is still current, else retry fresh.
  for (int attempt = 0; attempt < 5; ++attempt) {
    SnapshotPtr snap = snapshot();
    auto view_it = snap->views.find(view_name);
    if (view_it == snap->views.end()) {
      return Status::NotFound("view '" + view_name + "' does not exist");
    }
    workload::VeCacheOptions cache_options;
    cache_options.context = ctx;
    cache_options.mph_indexes = exec_options_.mph_indexes;
    cache_options.epoch = snap->epoch;
    MPFDB_ASSIGN_OR_RETURN(workload::VeCache cache,
                           workload::VeCache::Build(view_it->second,
                                                    snap->catalog,
                                                    cache_options));
    std::unique_lock<std::shared_mutex> lock(state_mu_);
    if (epoch_.load(std::memory_order_relaxed) != snap->epoch) continue;
    caches_[view_name] = CacheEntry{
        std::make_shared<const workload::VeCache>(std::move(cache)),
        snap->epoch};
    return Status::Ok();
  }
  return Status::Internal("BuildCache('" + view_name +
                          "') kept racing concurrent updates; retry later");
}

bool Database::HasCache(const std::string& view_name) const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return caches_.count(view_name) > 0;
}

StatusOr<TablePtr> Database::QueryCached(const std::string& view_name,
                                         const MpfQuerySpec& query) const {
  std::shared_ptr<const workload::VeCache> cache;
  {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    auto it = caches_.find(view_name);
    if (it == caches_.end()) {
      return Status::FailedPrecondition("no cache built for view '" +
                                        view_name + "'; call BuildCache first");
    }
    cache = it->second.cache;
  }
  // Answer off the pinned shared cache: a concurrent ApplyMeasureUpdate
  // publishes a fresh clone rather than mutating this one.
  return cache->Answer(query);
}

}  // namespace mpfdb
