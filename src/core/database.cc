#include "core/database.h"

#include <chrono>
#include <thread>

#include "fr/algebra.h"
#include "opt/cs.h"
#include "opt/ve.h"
#include "util/strings.h"

namespace mpfdb {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

StatusOr<std::unique_ptr<opt::Optimizer>> MakeOptimizer(const std::string& spec,
                                                        uint64_t random_seed) {
  std::string s = ToLower(std::string(StripWhitespace(spec)));
  if (s == "cs") return std::unique_ptr<opt::Optimizer>(new opt::CsOptimizer());
  if (s == "cs+" || s == "cs+linear") {
    return std::unique_ptr<opt::Optimizer>(new opt::CsPlusOptimizer(false));
  }
  if (s == "cs+nonlinear") {
    return std::unique_ptr<opt::Optimizer>(new opt::CsPlusOptimizer(true));
  }
  if (s.rfind("ve(", 0) == 0) {
    size_t close = s.find(')');
    if (close == std::string::npos) {
      return Status::InvalidArgument("unterminated VE heuristic in: " + spec);
    }
    std::string heuristic_name = s.substr(3, close - 3);
    std::string suffix = std::string(StripWhitespace(s.substr(close + 1)));
    opt::VeOptions options;
    options.seed = random_seed;
    if (heuristic_name == "deg" || heuristic_name == "degree") {
      options.heuristic = opt::VeHeuristic::kDegree;
    } else if (heuristic_name == "width") {
      options.heuristic = opt::VeHeuristic::kWidth;
    } else if (heuristic_name == "elim_cost") {
      options.heuristic = opt::VeHeuristic::kElimCost;
    } else if (heuristic_name == "deg&width") {
      options.heuristic = opt::VeHeuristic::kDegreeWidth;
    } else if (heuristic_name == "deg&elim_cost") {
      options.heuristic = opt::VeHeuristic::kDegreeElimCost;
    } else if (heuristic_name == "random") {
      options.heuristic = opt::VeHeuristic::kRandom;
    } else if (heuristic_name == "min_fill") {
      options.heuristic = opt::VeHeuristic::kMinFill;
    } else {
      return Status::InvalidArgument("unknown VE heuristic: " + heuristic_name);
    }
    if (suffix == "ext." || suffix == "ext") {
      options.extended = true;
    } else if (suffix == "ext+fd" || suffix == "ext. fd") {
      options.extended = true;
      options.fd_pruning = true;
    } else if (!suffix.empty()) {
      return Status::InvalidArgument("unknown VE suffix: '" + suffix + "'");
    }
    return std::unique_ptr<opt::Optimizer>(new opt::VeOptimizer(options));
  }
  return Status::InvalidArgument("unknown optimizer spec: " + spec);
}

Database::Database()
    : cost_model_(std::make_unique<SimpleCostModel>()), exec_options_{} {}

exec::ThreadPool* Database::thread_pool() {
  size_t threads = exec_options_.num_threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  if (threads <= 1) return nullptr;
  if (pool_ == nullptr || pool_->num_threads() != threads) {
    pool_ = std::make_unique<exec::ThreadPool>(threads);
  }
  return pool_.get();
}

Status Database::CreateTable(TablePtr table) {
  return catalog_.RegisterTable(std::move(table));
}

Status Database::DropTable(const std::string& name) {
  for (const auto& [view_name, view] : views_) {
    for (const auto& rel : view.relations) {
      if (rel == name) {
        return Status::FailedPrecondition("table '" + name +
                                          "' is referenced by view '" +
                                          view_name + "'; drop the view first");
      }
    }
  }
  return catalog_.DropTable(name);
}

Status Database::DropMpfView(const std::string& name) {
  if (views_.erase(name) == 0) {
    return Status::NotFound("view '" + name + "' does not exist");
  }
  caches_.erase(name);
  return Status::Ok();
}

Status Database::CreateMpfView(MpfViewDef view) {
  if (views_.count(view.name) > 0) {
    return Status::AlreadyExists("view '" + view.name + "' already exists");
  }
  for (const auto& rel : view.relations) {
    if (!catalog_.HasTable(rel)) {
      return Status::NotFound("view '" + view.name +
                              "' references missing table '" + rel + "'");
    }
  }
  if (view.relations.empty()) {
    return Status::InvalidArgument("view '" + view.name + "' has no relations");
  }
  std::string name = view.name;
  views_.emplace(std::move(name), std::move(view));
  return Status::Ok();
}

StatusOr<const MpfViewDef*> Database::GetView(const std::string& name) const {
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("view '" + name + "' does not exist");
  }
  return &it->second;
}

std::vector<std::string> Database::ViewNames() const {
  std::vector<std::string> names;
  for (const auto& [name, view] : views_) names.push_back(name);
  return names;
}

StatusOr<QueryResult> Database::Query(const std::string& view_name,
                                      const MpfQuerySpec& query,
                                      const std::string& optimizer_spec,
                                      QueryContext* ctx) {
  MPFDB_ASSIGN_OR_RETURN(const MpfViewDef* view, GetView(view_name));
  MPFDB_ASSIGN_OR_RETURN(std::unique_ptr<opt::Optimizer> optimizer,
                         MakeOptimizer(optimizer_spec));
  QueryResult result;
  auto plan_start = std::chrono::steady_clock::now();
  MPFDB_ASSIGN_OR_RETURN(result.plan,
                         optimizer->Optimize(*view, query, catalog_,
                                             *cost_model_));
  result.planning_seconds = SecondsSince(plan_start);

  exec::Executor executor(catalog_, view->semiring, exec_options_);
  auto exec_start = std::chrono::steady_clock::now();
  // Wire the database-owned pool into the query's context so the operator
  // tree can run morsel-parallel. A caller-provided pool wins; a caller that
  // passed no context at all gets a local one just to carry the pool.
  QueryContext local_ctx;
  QueryContext* qctx = ctx;
  exec::ThreadPool* pool = thread_pool();
  bool unset_pool = false;
  if (pool != nullptr) {
    if (qctx == nullptr) qctx = &local_ctx;
    if (qctx->thread_pool() == nullptr) {
      qctx->set_thread_pool(pool);
      unset_pool = qctx == ctx;
    }
  }
  auto table = executor.Execute(*result.plan, view_name + "_result", qctx);
  if (unset_pool) ctx->set_thread_pool(nullptr);
  MPFDB_RETURN_IF_ERROR(table.status());
  result.table = std::move(*table);
  result.execution_seconds = SecondsSince(exec_start);
  return result;
}

namespace {

// Applies one measure update to a cloned table.
Status ApplyMeasureUpdate(Table& table, const WhatIf::MeasureUpdate& update) {
  std::vector<std::pair<size_t, VarValue>> match;
  for (const auto& m : update.match) {
    auto idx = table.schema().IndexOf(m.var);
    if (!idx) {
      return Status::InvalidArgument("what-if match variable '" + m.var +
                                     "' not in table " + table.name());
    }
    match.emplace_back(*idx, m.value);
  }
  size_t touched = 0;
  for (size_t i = 0; i < table.NumRows(); ++i) {
    RowView row = table.Row(i);
    bool all = true;
    for (const auto& [idx, value] : match) {
      if (row.var(idx) != value) {
        all = false;
        break;
      }
    }
    if (all) {
      table.set_measure(i, update.new_measure);
      ++touched;
    }
  }
  if (touched == 0) {
    return Status::NotFound("what-if measure update matched no rows of " +
                            table.name());
  }
  return Status::Ok();
}

// Applies one domain update to a cloned table, rebuilding it so the
// functional dependency can be verified.
StatusOr<TablePtr> ApplyDomainUpdate(const Table& table,
                                     const WhatIf::DomainUpdate& update) {
  auto var_idx = table.schema().IndexOf(update.var);
  if (!var_idx) {
    return Status::InvalidArgument("what-if variable '" + update.var +
                                   "' not in table " + table.name());
  }
  std::vector<std::pair<size_t, VarValue>> match;
  for (const auto& m : update.match) {
    auto idx = table.schema().IndexOf(m.var);
    if (!idx) {
      return Status::InvalidArgument("what-if match variable '" + m.var +
                                     "' not in table " + table.name());
    }
    match.emplace_back(*idx, m.value);
  }
  auto rebuilt = std::make_shared<Table>(table.name(), table.schema());
  rebuilt->Reserve(table.NumRows());
  std::vector<VarValue> vars(table.schema().arity());
  size_t touched = 0;
  for (size_t i = 0; i < table.NumRows(); ++i) {
    RowView row = table.Row(i);
    vars.assign(row.vars, row.vars + row.arity);
    bool all = true;
    for (const auto& [idx, value] : match) {
      if (row.var(idx) != value) {
        all = false;
        break;
      }
    }
    if (all) {
      vars[*var_idx] = update.new_value;
      ++touched;
    }
    rebuilt->AppendRow(vars, row.measure);
  }
  if (touched == 0) {
    return Status::NotFound("what-if domain update matched no rows of " +
                            table.name());
  }
  MPFDB_RETURN_IF_ERROR(fr::CheckFunctionalDependency(*rebuilt));
  return rebuilt;
}

}  // namespace

StatusOr<QueryResult> Database::QueryWhatIf(const std::string& view_name,
                                            const MpfQuerySpec& query,
                                            const WhatIf& what_if,
                                            const std::string& optimizer_spec) {
  MPFDB_ASSIGN_OR_RETURN(const MpfViewDef* view, GetView(view_name));

  // Scratch catalog: shares unmodified tables, swaps in modified clones.
  Catalog scratch = catalog_;
  auto clone_into_scratch = [&](const std::string& name) -> StatusOr<TablePtr> {
    MPFDB_ASSIGN_OR_RETURN(TablePtr original, scratch.GetTable(name));
    TablePtr clone(original->Clone(name));
    MPFDB_RETURN_IF_ERROR(scratch.DropTable(name));
    MPFDB_RETURN_IF_ERROR(scratch.RegisterTable(clone));
    return clone;
  };
  for (const auto& update : what_if.measure_updates) {
    MPFDB_ASSIGN_OR_RETURN(TablePtr clone, clone_into_scratch(update.table));
    MPFDB_RETURN_IF_ERROR(ApplyMeasureUpdate(*clone, update));
  }
  for (const auto& update : what_if.domain_updates) {
    MPFDB_ASSIGN_OR_RETURN(TablePtr original, clone_into_scratch(update.table));
    MPFDB_ASSIGN_OR_RETURN(TablePtr rebuilt,
                           ApplyDomainUpdate(*original, update));
    MPFDB_RETURN_IF_ERROR(scratch.DropTable(update.table));
    MPFDB_RETURN_IF_ERROR(scratch.RegisterTable(rebuilt));
  }

  MPFDB_ASSIGN_OR_RETURN(std::unique_ptr<opt::Optimizer> optimizer,
                         MakeOptimizer(optimizer_spec));
  QueryResult result;
  auto plan_start = std::chrono::steady_clock::now();
  MPFDB_ASSIGN_OR_RETURN(
      result.plan, optimizer->Optimize(*view, query, scratch, *cost_model_));
  result.planning_seconds = SecondsSince(plan_start);

  exec::Executor executor(scratch, view->semiring, exec_options_);
  auto exec_start = std::chrono::steady_clock::now();
  MPFDB_ASSIGN_OR_RETURN(result.table,
                         executor.Execute(*result.plan, view_name + "_whatif"));
  result.execution_seconds = SecondsSince(exec_start);
  return result;
}

StatusOr<std::string> Database::Explain(const std::string& view_name,
                                        const MpfQuerySpec& query,
                                        const std::string& optimizer_spec) {
  MPFDB_ASSIGN_OR_RETURN(const MpfViewDef* view, GetView(view_name));
  MPFDB_ASSIGN_OR_RETURN(std::unique_ptr<opt::Optimizer> optimizer,
                         MakeOptimizer(optimizer_spec));
  MPFDB_ASSIGN_OR_RETURN(PlanPtr plan,
                         optimizer->Optimize(*view, query, catalog_,
                                             *cost_model_));
  // The logical plan (the optimizer's output) followed by the physical plan
  // (per-node algorithm selection, interesting orders, physical costs).
  exec::Executor executor(catalog_, view->semiring, exec_options_);
  MPFDB_ASSIGN_OR_RETURN(std::unique_ptr<PhysicalPlanNode> physical,
                         executor.PlanPhysical(*plan));
  return "-- optimizer: " + optimizer->name() + "\n-- query: " +
         query.ToString(*view) + "\n" + ExplainPlan(*plan) +
         "-- physical plan:\n" + ExplainPhysicalPlan(*physical);
}

StatusOr<std::string> Database::ExplainAnalyze(
    const std::string& view_name, const MpfQuerySpec& query,
    const std::string& optimizer_spec) {
  MPFDB_ASSIGN_OR_RETURN(const MpfViewDef* view, GetView(view_name));
  MPFDB_ASSIGN_OR_RETURN(std::unique_ptr<opt::Optimizer> optimizer,
                         MakeOptimizer(optimizer_spec));
  MPFDB_ASSIGN_OR_RETURN(
      PlanPtr plan, optimizer->Optimize(*view, query, catalog_, *cost_model_));
  exec::Executor executor(catalog_, view->semiring, exec_options_);
  MPFDB_ASSIGN_OR_RETURN(exec::Executor::AnalyzedResult analyzed,
                         executor.ExecuteAnalyze(*plan, view_name + "_result"));
  return "-- optimizer: " + optimizer->name() + "\n-- query: " +
         query.ToString(*view) + "\n" +
         exec::ExplainAnalyzePlan(*analyzed.physical, analyzed.stats);
}

Status Database::BuildCache(const std::string& view_name, QueryContext* ctx) {
  MPFDB_ASSIGN_OR_RETURN(const MpfViewDef* view, GetView(view_name));
  workload::VeCacheOptions cache_options;
  cache_options.context = ctx;
  MPFDB_ASSIGN_OR_RETURN(workload::VeCache cache,
                         workload::VeCache::Build(*view, catalog_,
                                                  cache_options));
  caches_.erase(view_name);
  caches_.emplace(view_name, std::move(cache));
  return Status::Ok();
}

bool Database::HasCache(const std::string& view_name) const {
  return caches_.count(view_name) > 0;
}

StatusOr<TablePtr> Database::QueryCached(const std::string& view_name,
                                         const MpfQuerySpec& query) const {
  auto it = caches_.find(view_name);
  if (it == caches_.end()) {
    return Status::FailedPrecondition("no cache built for view '" + view_name +
                                      "'; call BuildCache first");
  }
  return it->second.Answer(query);
}

}  // namespace mpfdb
