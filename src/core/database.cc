#include "core/database.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "exec/gibbs.h"
#include "fr/algebra.h"
#include "opt/cs.h"
#include "opt/dissociate.h"
#include "opt/faq.h"
#include "opt/ve.h"
#include "storage/mvcc.h"
#include "util/strings.h"

namespace mpfdb {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

StatusOr<std::unique_ptr<opt::Optimizer>> MakeOptimizer(const std::string& spec,
                                                        uint64_t random_seed) {
  std::string s = ToLower(std::string(StripWhitespace(spec)));
  if (s == "cs") return std::unique_ptr<opt::Optimizer>(new opt::CsOptimizer());
  if (s == "cs+" || s == "cs+linear") {
    return std::unique_ptr<opt::Optimizer>(new opt::CsPlusOptimizer(false));
  }
  if (s == "cs+nonlinear") {
    return std::unique_ptr<opt::Optimizer>(new opt::CsPlusOptimizer(true));
  }
  if (s == "faq") {
    return std::unique_ptr<opt::Optimizer>(new opt::FaqOptimizer());
  }
  if (s.rfind("ve(", 0) == 0) {
    size_t close = s.find(')');
    if (close == std::string::npos) {
      return Status::InvalidArgument("unterminated VE heuristic in: " + spec);
    }
    std::string heuristic_name = s.substr(3, close - 3);
    std::string suffix = std::string(StripWhitespace(s.substr(close + 1)));
    opt::VeOptions options;
    options.seed = random_seed;
    if (heuristic_name == "deg" || heuristic_name == "degree") {
      options.heuristic = opt::VeHeuristic::kDegree;
    } else if (heuristic_name == "width") {
      options.heuristic = opt::VeHeuristic::kWidth;
    } else if (heuristic_name == "elim_cost") {
      options.heuristic = opt::VeHeuristic::kElimCost;
    } else if (heuristic_name == "deg&width") {
      options.heuristic = opt::VeHeuristic::kDegreeWidth;
    } else if (heuristic_name == "deg&elim_cost") {
      options.heuristic = opt::VeHeuristic::kDegreeElimCost;
    } else if (heuristic_name == "random") {
      options.heuristic = opt::VeHeuristic::kRandom;
    } else if (heuristic_name == "min_fill") {
      options.heuristic = opt::VeHeuristic::kMinFill;
    } else {
      return Status::InvalidArgument("unknown VE heuristic: " + heuristic_name);
    }
    if (suffix == "ext." || suffix == "ext") {
      options.extended = true;
    } else if (suffix == "ext+fd" || suffix == "ext. fd") {
      options.extended = true;
      options.fd_pruning = true;
    } else if (!suffix.empty()) {
      return Status::InvalidArgument("unknown VE suffix: '" + suffix + "'");
    }
    return std::unique_ptr<opt::Optimizer>(new opt::VeOptimizer(options));
  }
  return Status::InvalidArgument("unknown optimizer spec: " + spec);
}

Database::Database(DatabaseOptions options)
    : options_(options),
      cost_model_(std::make_unique<SimpleCostModel>()),
      exec_options_{} {}

Catalog& Database::catalog() {
  // Mutable access is indistinguishable from a mutation: invalidate
  // conservatively so snapshots and cached plans can never go stale through
  // this escape hatch.
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  BumpStructuralLocked();
  return catalog_;
}

void Database::BumpStructuralLocked() {
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  uint64_t next = structural_epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  snapshot_cache_.reset();
  plan_cache_.OnEpochBump(next);
}

void Database::BumpDataEpochLocked() {
  // Measure commits leave the schema shape untouched, so cached plans stay
  // valid — only snapshots go stale.
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  snapshot_cache_.reset();
}

void Database::GcState::CollectLocked() {
  for (auto it = chains.begin(); it != chains.end();) {
    auto& chain = it->second;
    chain.erase(std::remove_if(chain.begin(), chain.end(),
                               [&](const Retired& r) {
                                 // A pin at epoch p sees the version live in
                                 // [birth, death).
                                 auto p = pins.lower_bound(r.birth);
                                 bool pinned = p != pins.end() && *p < r.death;
                                 if (!pinned) ++versions_collected;
                                 return !pinned;
                               }),
                chain.end());
    if (chain.empty()) {
      it = chains.erase(it);
    } else {
      ++it;
    }
  }
}

Database::SnapshotPtr Database::snapshot() const {
  {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    if (snapshot_cache_ != nullptr &&
        snapshot_cache_->epoch == epoch_.load(std::memory_order_relaxed)) {
      return snapshot_cache_;
    }
  }
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  if (snapshot_cache_ == nullptr || snapshot_cache_->epoch != epoch) {
    auto snap = new Snapshot();
    snap->epoch = epoch;
    snap->structural_epoch = structural_epoch_.load(std::memory_order_relaxed);
    snap->catalog = catalog_;  // shares the (immutable) table storage
    snap->views = views_;
    {
      std::lock_guard<std::mutex> gc_lock(gc_->mu);
      gc_->pins.insert(epoch);
    }
    // The deleter captures the GC state by shared_ptr, so a snapshot that
    // outlives the Database still releases its pin safely.
    snapshot_cache_ = SnapshotPtr(snap, [gc = gc_, epoch](const Snapshot* s) {
      {
        std::lock_guard<std::mutex> gc_lock(gc->mu);
        auto it = gc->pins.find(epoch);
        if (it != gc->pins.end()) gc->pins.erase(it);
        gc->CollectLocked();
      }
      delete s;
    });
  }
  return snapshot_cache_;
}

void Database::set_exec_options(exec::ExecOptions options) {
  exec_options_ = options;
}

exec::ThreadPool* Database::thread_pool() {
  size_t threads = exec_options_.num_threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  if (threads <= 1) return nullptr;
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pool_ == nullptr || pool_->num_threads() != threads) {
    pool_ = std::make_unique<exec::ThreadPool>(threads);
  }
  return pool_.get();
}

Status Database::CreateTable(TablePtr table) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  if (table != nullptr && options_.seal_tables_chunked) table->SealChunked();
  std::string name = table == nullptr ? std::string() : table->name();
  MPFDB_RETURN_IF_ERROR(catalog_.RegisterTable(std::move(table)));
  BumpStructuralLocked();
  std::lock_guard<std::mutex> gc_lock(gc_->mu);
  gc_->birth_epoch[name] = epoch_.load(std::memory_order_relaxed);
  return Status::Ok();
}

Status Database::DropTable(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  for (const auto& [view_name, view] : views_) {
    for (const auto& rel : view.relations) {
      if (rel == name) {
        return Status::FailedPrecondition("table '" + name +
                                          "' is referenced by view '" +
                                          view_name + "'; drop the view first");
      }
    }
  }
  MPFDB_RETURN_IF_ERROR(catalog_.DropTable(name));
  BumpStructuralLocked();
  std::lock_guard<std::mutex> gc_lock(gc_->mu);
  gc_->birth_epoch.erase(name);
  return Status::Ok();
}

Status Database::DropMpfView(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  if (views_.erase(name) == 0) {
    return Status::NotFound("view '" + name + "' does not exist");
  }
  caches_.erase(name);
  BumpStructuralLocked();
  return Status::Ok();
}

Status Database::CreateMpfView(MpfViewDef view) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  if (views_.count(view.name) > 0) {
    return Status::AlreadyExists("view '" + view.name + "' already exists");
  }
  for (const auto& rel : view.relations) {
    if (!catalog_.HasTable(rel)) {
      return Status::NotFound("view '" + view.name +
                              "' references missing table '" + rel + "'");
    }
  }
  if (view.relations.empty()) {
    return Status::InvalidArgument("view '" + view.name + "' has no relations");
  }
  std::string name = view.name;
  views_.emplace(std::move(name), std::move(view));
  BumpStructuralLocked();
  return Status::Ok();
}

StatusOr<const MpfViewDef*> Database::GetView(const std::string& name) const {
  // std::map nodes are stable, so the pointer survives until the view is
  // dropped. Concurrent readers should prefer snapshot().
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("view '" + name + "' does not exist");
  }
  return &it->second;
}

std::vector<std::string> Database::ViewNames() const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  std::vector<std::string> names;
  for (const auto& [name, view] : views_) names.push_back(name);
  return names;
}

StatusOr<QueryResult> Database::Query(const std::string& view_name,
                                      const MpfQuerySpec& query,
                                      const std::string& optimizer_spec,
                                      QueryContext* ctx) {
  SnapshotPtr snap = snapshot();
  auto view_it = snap->views.find(view_name);
  if (view_it == snap->views.end()) {
    return Status::NotFound("view '" + view_name + "' does not exist");
  }
  const MpfViewDef& view = view_it->second;

  QueryResult result;
  result.snapshot_epoch = snap->epoch;

  // Plan-cache key: everything that determines which physical plan is built.
  // The planner-visible memory budget is part of it — under a finite budget
  // auto mode restricts itself to spill-capable operators.
  const std::string cache_key =
      view_name + "|" + server::CanonicalQueryKey(query) + "|o:" +
      optimizer_spec + "|" +
      server::ExecFingerprint(exec_options_, ctx ? ctx->memory_limit() : 0);

  auto plan_start = std::chrono::steady_clock::now();
  std::shared_ptr<const server::CachedPlan> cached;
  if (plan_cache_enabled_) {
    // Keyed on the structural epoch: measure commits don't invalidate plans.
    cached = plan_cache_.Lookup(cache_key, snap->structural_epoch);
  }
  if (cached != nullptr) {
    result.plan_cache_hit = true;
  } else {
    MPFDB_ASSIGN_OR_RETURN(std::unique_ptr<opt::Optimizer> optimizer,
                           MakeOptimizer(optimizer_spec));
    MPFDB_ASSIGN_OR_RETURN(PlanPtr logical,
                           optimizer->Optimize(view, query, snap->catalog,
                                               *cost_model_));
    exec::Executor planner(snap->catalog, view.semiring, exec_options_);
    MPFDB_ASSIGN_OR_RETURN(std::unique_ptr<PhysicalPlanNode> physical,
                           planner.PlanPhysical(*logical, ctx));
    auto entry = std::make_shared<server::CachedPlan>();
    entry->logical = std::move(logical);
    entry->physical =
        std::shared_ptr<const PhysicalPlanNode>(std::move(physical));
    if (plan_cache_enabled_) {
      plan_cache_.Insert(cache_key, snap->structural_epoch, entry);
    }
    cached = std::move(entry);
  }
  result.plan = cached->logical;
  result.planning_seconds = SecondsSince(plan_start);

  exec::Executor executor(snap->catalog, view.semiring, exec_options_);
  auto exec_start = std::chrono::steady_clock::now();
  // Wire the database-owned pool into the query's context so the operator
  // tree can run morsel-parallel. A caller-provided pool wins; a caller that
  // passed no context at all gets a local one just to carry the pool.
  QueryContext local_ctx;
  QueryContext* qctx = ctx;
  exec::ThreadPool* pool = thread_pool();
  bool unset_pool = false;
  if (pool != nullptr) {
    if (qctx == nullptr) qctx = &local_ctx;
    if (qctx->thread_pool() == nullptr) {
      qctx->set_thread_pool(pool);
      unset_pool = qctx == ctx;
    }
  }
  auto table =
      executor.ExecutePhysical(*cached->physical, view_name + "_result", qctx);
  if (unset_pool) ctx->set_thread_pool(nullptr);
  MPFDB_RETURN_IF_ERROR(table.status());
  result.table = std::move(*table);
  result.execution_seconds = SecondsSince(exec_start);
  return result;
}

namespace {

// Applies one measure update to a cloned table.
Status ApplyWhatIfMeasureUpdate(Table& table,
                                const WhatIf::MeasureUpdate& update) {
  std::vector<std::pair<size_t, VarValue>> match;
  for (const auto& m : update.match) {
    auto idx = table.schema().IndexOf(m.var);
    if (!idx) {
      return Status::InvalidArgument("what-if match variable '" + m.var +
                                     "' not in table " + table.name());
    }
    match.emplace_back(*idx, m.value);
  }
  size_t touched = 0;
  for (size_t i = 0; i < table.NumRows(); ++i) {
    RowView row = table.Row(i);
    bool all = true;
    for (const auto& [idx, value] : match) {
      if (row.var(idx) != value) {
        all = false;
        break;
      }
    }
    if (all) {
      table.set_measure(i, update.new_measure);
      ++touched;
    }
  }
  if (touched == 0) {
    return Status::NotFound("what-if measure update matched no rows of " +
                            table.name());
  }
  return Status::Ok();
}

// Applies one domain update to a cloned table, rebuilding it so the
// functional dependency can be verified.
StatusOr<TablePtr> ApplyDomainUpdate(const Table& table,
                                     const WhatIf::DomainUpdate& update) {
  auto var_idx = table.schema().IndexOf(update.var);
  if (!var_idx) {
    return Status::InvalidArgument("what-if variable '" + update.var +
                                   "' not in table " + table.name());
  }
  std::vector<std::pair<size_t, VarValue>> match;
  for (const auto& m : update.match) {
    auto idx = table.schema().IndexOf(m.var);
    if (!idx) {
      return Status::InvalidArgument("what-if match variable '" + m.var +
                                     "' not in table " + table.name());
    }
    match.emplace_back(*idx, m.value);
  }
  auto rebuilt = std::make_shared<Table>(table.name(), table.schema());
  rebuilt->Reserve(table.NumRows());
  std::vector<VarValue> vars(table.schema().arity());
  size_t touched = 0;
  for (size_t i = 0; i < table.NumRows(); ++i) {
    RowView row = table.Row(i);
    vars.assign(row.vars, row.vars + row.arity);
    bool all = true;
    for (const auto& [idx, value] : match) {
      if (row.var(idx) != value) {
        all = false;
        break;
      }
    }
    if (all) {
      vars[*var_idx] = update.new_value;
      ++touched;
    }
    rebuilt->AppendRow(vars, row.measure);
  }
  if (touched == 0) {
    return Status::NotFound("what-if domain update matched no rows of " +
                            table.name());
  }
  MPFDB_RETURN_IF_ERROR(fr::CheckFunctionalDependency(*rebuilt));
  return rebuilt;
}

}  // namespace

StatusOr<QueryResult> Database::QueryWhatIf(const std::string& view_name,
                                            const MpfQuerySpec& query,
                                            const WhatIf& what_if,
                                            const std::string& optimizer_spec) {
  SnapshotPtr snap = snapshot();
  auto view_it = snap->views.find(view_name);
  if (view_it == snap->views.end()) {
    return Status::NotFound("view '" + view_name + "' does not exist");
  }
  const MpfViewDef& view = view_it->second;

  // Scratch catalog: shares unmodified tables, swaps in modified clones.
  Catalog scratch = snap->catalog;
  auto clone_into_scratch = [&](const std::string& name) -> StatusOr<TablePtr> {
    MPFDB_ASSIGN_OR_RETURN(TablePtr original, scratch.GetTable(name));
    TablePtr clone(original->Clone(name));
    MPFDB_RETURN_IF_ERROR(scratch.DropTable(name));
    MPFDB_RETURN_IF_ERROR(scratch.RegisterTable(clone));
    return clone;
  };
  for (const auto& update : what_if.measure_updates) {
    MPFDB_ASSIGN_OR_RETURN(TablePtr clone, clone_into_scratch(update.table));
    MPFDB_RETURN_IF_ERROR(ApplyWhatIfMeasureUpdate(*clone, update));
  }
  for (const auto& update : what_if.domain_updates) {
    MPFDB_ASSIGN_OR_RETURN(TablePtr original, clone_into_scratch(update.table));
    MPFDB_ASSIGN_OR_RETURN(TablePtr rebuilt,
                           ApplyDomainUpdate(*original, update));
    MPFDB_RETURN_IF_ERROR(scratch.DropTable(update.table));
    MPFDB_RETURN_IF_ERROR(scratch.RegisterTable(rebuilt));
  }

  MPFDB_ASSIGN_OR_RETURN(std::unique_ptr<opt::Optimizer> optimizer,
                         MakeOptimizer(optimizer_spec));
  QueryResult result;
  result.snapshot_epoch = snap->epoch;
  auto plan_start = std::chrono::steady_clock::now();
  MPFDB_ASSIGN_OR_RETURN(
      result.plan, optimizer->Optimize(view, query, scratch, *cost_model_));
  result.planning_seconds = SecondsSince(plan_start);

  exec::Executor executor(scratch, view.semiring, exec_options_);
  auto exec_start = std::chrono::steady_clock::now();
  MPFDB_ASSIGN_OR_RETURN(result.table,
                         executor.Execute(*result.plan, view_name + "_whatif"));
  result.execution_seconds = SecondsSince(exec_start);
  return result;
}

namespace {

// Optimize + execute one exact MPF query against an arbitrary catalog (the
// bound queries run against scratch catalogs the plan cache must not see).
StatusOr<TablePtr> RunPlainQuery(const MpfViewDef& view,
                                 const MpfQuerySpec& query,
                                 const Catalog& catalog, const CostModel& cm,
                                 const exec::ExecOptions& exec_options,
                                 const std::string& optimizer_spec,
                                 const std::string& result_name,
                                 QueryContext* ctx) {
  MPFDB_ASSIGN_OR_RETURN(std::unique_ptr<opt::Optimizer> optimizer,
                         MakeOptimizer(optimizer_spec));
  MPFDB_ASSIGN_OR_RETURN(PlanPtr plan,
                         optimizer->Optimize(view, query, catalog, cm));
  exec::Executor executor(catalog, view.semiring, exec_options);
  return executor.Execute(*plan, result_name, ctx);
}

// A result table folded down to (group values in `group_vars` order) ->
// measure. Executor results are already grouped, so the Add fold is a
// no-op defensive merge.
StatusOr<std::map<std::vector<VarValue>, double>> GroupMap(
    const Table& table, const std::vector<std::string>& group_vars,
    const Semiring& sr) {
  std::vector<size_t> idx;
  idx.reserve(group_vars.size());
  for (const auto& g : group_vars) {
    auto i = table.schema().IndexOf(g);
    if (!i) {
      return Status::Internal("bound result '" + table.name() +
                              "' is missing group variable '" + g + "'");
    }
    idx.push_back(*i);
  }
  std::map<std::vector<VarValue>, double> out;
  std::vector<VarValue> key(idx.size());
  for (size_t r = 0; r < table.NumRows(); ++r) {
    RowView row = table.Row(r);
    for (size_t k = 0; k < idx.size(); ++k) key[k] = row.var(idx[k]);
    auto [it, fresh] = out.emplace(key, row.measure);
    if (!fresh) it->second = sr.Add(it->second, row.measure);
  }
  return out;
}

// Pads both bound maps to the union of their groups. A group absent from a
// bound result is bounded at Add's identity: the conditioned (subset) query
// legitimately drops groups its pinned values can't reach, and the identity
// is the Add-fold of that empty subset.
void AlignGroups(const Semiring& sr,
                 std::map<std::vector<VarValue>, double>* lower,
                 std::map<std::vector<VarValue>, double>* upper) {
  for (const auto& [group, value] : *lower) {
    upper->emplace(group, sr.AddIdentity());
  }
  for (const auto& [group, value] : *upper) {
    lower->emplace(group, sr.AddIdentity());
  }
}

// Per-group bound gap: relative for the product semirings (measures are
// magnitudes), absolute for the additive ones (measures are costs/logs,
// where an absolute difference *is* the relative error of the underlying
// quantity), exact-match for bool.
double GroupGap(const Semiring& sr, double lower, double upper) {
  if (std::isnan(lower) || std::isnan(upper)) {
    return std::numeric_limits<double>::infinity();
  }
  switch (sr.kind()) {
    case SemiringKind::kBoolOrAnd:
      return lower == upper ? 0.0 : 1.0;
    case SemiringKind::kSumProduct:
    case SemiringKind::kMaxProduct: {
      double denom = std::max(std::fabs(lower), std::fabs(upper));
      if (denom == 0) return 0.0;
      return std::fabs(upper - lower) / denom;
    }
    default:  // kMinSum, kMaxSum, kLogSumProduct
      if (std::isinf(lower) || std::isinf(upper)) {
        return lower == upper ? 0.0
                              : std::numeric_limits<double>::infinity();
      }
      return std::fabs(upper - lower);
  }
}

double MaxGroupGap(const Semiring& sr,
                   const std::map<std::vector<VarValue>, double>& lower,
                   const std::map<std::vector<VarValue>, double>& upper) {
  double max_gap = 0;
  auto hi = upper.begin();
  for (const auto& [group, lo] : lower) {
    max_gap = std::max(max_gap, GroupGap(sr, lo, hi->second));
    ++hi;
  }
  return max_gap;
}

TablePtr RenderGroups(const std::string& name,
                      const std::vector<std::string>& group_vars,
                      const std::map<std::vector<VarValue>, double>& groups) {
  auto table = std::make_shared<Table>(name, Schema(group_vars, "f"));
  table->Reserve(groups.size());
  for (const auto& [group, value] : groups) table->AppendRow(group, value);
  return table;
}

}  // namespace

StatusOr<ApproxResult> Database::QueryApprox(const std::string& view_name,
                                             const MpfQuerySpec& query,
                                             const ApproxOptions& approx,
                                             const std::string& optimizer_spec,
                                             QueryContext* ctx) {
  auto start = std::chrono::steady_clock::now();
  SnapshotPtr snap = snapshot();
  auto view_it = snap->views.find(view_name);
  if (view_it == snap->views.end()) {
    return Status::NotFound("view '" + view_name + "' does not exist");
  }
  const MpfViewDef& view = view_it->second;
  const Semiring& sr = view.semiring;

  ApproxResult result;
  result.snapshot_epoch = snap->epoch;
  MPFDB_ASSIGN_OR_RETURN(result.split_vars,
                         opt::ChooseSplitVars(view, query, snap->catalog));

  if (result.split_vars.empty()) {
    // Acyclic (after GYO reduction): the exact query is its own bound pair.
    // Route through Query so the plan cache and worker pool still apply.
    MPFDB_ASSIGN_OR_RETURN(QueryResult exact,
                           Query(view_name, query, optimizer_spec, ctx));
    result.lower = exact.table;
    result.upper = exact.table;
    result.estimate = std::move(exact.table);
    result.converged = true;
    result.seconds = SecondsSince(start);
    return result;
  }
  result.approximate = true;

  // Both bounds are plain exact queries the ordinary stack runs: the
  // dissociated relaxation against its scratch catalog of column-renamed
  // clones, the conditioned restriction against the snapshot itself. A
  // failure here (including a deadline that fires this early) is an honest
  // error — there is nothing valid to degrade to yet.
  MPFDB_ASSIGN_OR_RETURN(
      opt::DissociatedQuery dissoc,
      opt::DissociateView(view, query, snap->catalog, result.split_vars));
  MPFDB_ASSIGN_OR_RETURN(
      MpfQuerySpec conditioned,
      opt::ConditionQuery(view, query, snap->catalog, result.split_vars));
  MPFDB_ASSIGN_OR_RETURN(
      TablePtr dissoc_table,
      RunPlainQuery(dissoc.view, dissoc.query, dissoc.catalog, *cost_model_,
                    exec_options_, optimizer_spec, view_name + "_dissoc",
                    ctx));
  MPFDB_ASSIGN_OR_RETURN(
      TablePtr cond_table,
      RunPlainQuery(view, conditioned, snap->catalog, *cost_model_,
                    exec_options_, optimizer_spec, view_name + "_cond", ctx));

  const bool dissoc_is_upper =
      opt::DissociatedBoundSide(sr) == opt::BoundSide::kUpper;
  MPFDB_ASSIGN_OR_RETURN(auto dissoc_map,
                         GroupMap(*dissoc_table, query.group_vars, sr));
  MPFDB_ASSIGN_OR_RETURN(auto cond_map,
                         GroupMap(*cond_table, query.group_vars, sr));
  auto& lower_map = dissoc_is_upper ? cond_map : dissoc_map;
  auto& upper_map = dissoc_is_upper ? dissoc_map : cond_map;
  AlignGroups(sr, &lower_map, &upper_map);
  result.max_gap = MaxGroupGap(sr, lower_map, upper_map);
  result.converged = result.max_gap <= approx.eps;

  if (!result.converged && approx.sampling && approx.max_rounds > 0) {
    exec::GibbsOptions gibbs_options;
    gibbs_options.seed =
        approx.seed != 0 ? approx.seed : exec_options_.sampling_seed;
    gibbs_options.sweeps_per_round = approx.sweeps_per_round;
    gibbs_options.burn_in_sweeps = approx.burn_in_sweeps;
    auto estimator = exec::GibbsEstimator::Create(view, query, snap->catalog,
                                                  gibbs_options, ctx);
    if (estimator.ok()) {
      exec::GibbsEstimator& gibbs = **estimator;
      for (size_t round = 0; round < approx.max_rounds; ++round) {
        Status st = gibbs.RunRound();
        if (!st.ok()) {
          // The anytime contract: an expiring deadline degrades the answer
          // to the bounds plus whatever the sampler last published instead
          // of failing the query. Cancellation stays an error — the caller
          // asked for no answer at all.
          if (st.code() == StatusCode::kDeadlineExceeded) {
            result.deadline_hit = true;
            break;
          }
          return st;
        }
        if (gibbs.samples() > 0 && gibbs.last_round_delta() <= approx.eps) {
          result.converged = true;
          break;
        }
      }
      result.gibbs_rounds = gibbs.rounds();
      result.samples = gibbs.samples();
      if (gibbs.rounds() > 0) {
        result.estimate = gibbs.EstimateTable(view_name + "_estimate");
        // The incumbent — the Add-fold of every valid assignment the chain
        // visited — is itself a bound (lower everywhere but kMinSum), so it
        // can only tighten the dissociation bounds. max/min, not semiring
        // Add: under plain sum, Add-ing two partial lower bounds could
        // overshoot the exact total.
        MPFDB_ASSIGN_OR_RETURN(
            auto incumbent_map,
            GroupMap(*gibbs.IncumbentTable(view_name + "_incumbent"),
                     query.group_vars, sr));
        auto& tightened =
            gibbs.IncumbentIsLowerBound() ? lower_map : upper_map;
        auto& partner = gibbs.IncumbentIsLowerBound() ? upper_map : lower_map;
        for (const auto& [group, value] : incumbent_map) {
          auto [it, fresh] = tightened.emplace(group, value);
          if (!fresh) {
            it->second = gibbs.IncumbentIsLowerBound()
                             ? std::max(it->second, value)
                             : std::min(it->second, value);
          }
          partner.emplace(group, sr.AddIdentity());
        }
        result.max_gap = MaxGroupGap(sr, lower_map, upper_map);
        if (result.max_gap <= approx.eps) result.converged = true;
      }
    } else {
      Status st = estimator.status();
      if (st.code() == StatusCode::kDeadlineExceeded) {
        result.deadline_hit = true;
      } else if (st.code() == StatusCode::kCancelled) {
        return st;
      }
      // Any other construction failure (packed-key overflow, negative
      // measures under a kind whose *bounds* don't need them, memory
      // pressure) quietly degrades to bounds-only: the bounds stand.
    }
  }

  result.lower = RenderGroups(view_name + "_lower", query.group_vars,
                              lower_map);
  result.upper = RenderGroups(view_name + "_upper", query.group_vars,
                              upper_map);
  if (result.estimate == nullptr) {
    // Bounds-only outcome: hand back the bound that is exact-tending for
    // this semiring's Add direction as the point estimate stand-in.
    result.estimate = sr.AddMonotoneNondecreasing() ? result.lower
                                                    : result.upper;
  }
  result.seconds = SecondsSince(start);
  return result;
}

StatusOr<std::string> Database::ExplainAnalyzeApprox(
    const std::string& view_name, const MpfQuerySpec& query,
    const ApproxOptions& approx, const std::string& optimizer_spec) {
  SnapshotPtr snap = snapshot();
  auto view_it = snap->views.find(view_name);
  if (view_it == snap->views.end()) {
    return Status::NotFound("view '" + view_name + "' does not exist");
  }
  const MpfViewDef& view = view_it->second;
  MPFDB_ASSIGN_OR_RETURN(ApproxResult result,
                         QueryApprox(view_name, query, approx,
                                     optimizer_spec));
  std::ostringstream os;
  os << "-- approx query: " << query.ToString(view) << "\n";
  os << "-- split vars: (" << FormatVarList(result.split_vars) << ")\n";
  os << "-- approximate: " << (result.approximate ? "yes" : "no")
     << ", converged: " << (result.converged ? "yes" : "no")
     << ", deadline_hit: " << (result.deadline_hit ? "yes" : "no") << "\n";
  os << "-- bound gap: max " << result.max_gap << " (eps " << approx.eps
     << ")\n";
  double samples_per_sec =
      result.seconds > 0 ? static_cast<double>(result.samples) / result.seconds
                         : 0;
  os << "-- gibbs: rounds=" << result.gibbs_rounds
     << " samples=" << result.samples << " samples/sec=" << samples_per_sec
     << "\n";
  os << "-- lower bound (" << result.lower->NumRows() << " groups):\n"
     << result.lower->ToString();
  os << "-- upper bound (" << result.upper->NumRows() << " groups):\n"
     << result.upper->ToString();
  os << "-- estimate (" << result.estimate->NumRows() << " groups):\n"
     << result.estimate->ToString();
  return os.str();
}

Status Database::ApplyMeasureUpdate(const std::string& table_name,
                                    const std::vector<VarValue>& row_vars,
                                    double new_measure,
                                    uint64_t* commit_epoch) {
  return ApplyMeasureUpdates({{table_name, row_vars, new_measure}},
                             commit_epoch);
}

Status Database::ApplyMeasureUpdates(
    const std::vector<MeasureUpdateSpec>& specs, uint64_t* commit_epoch) {
  if (specs.empty()) {
    if (commit_epoch != nullptr) *commit_epoch = epoch();
    return Status::Ok();
  }
  auto pending = std::make_shared<PendingCommit>();
  pending->specs = specs;

  std::unique_lock<std::mutex> lock(commit_mu_);
  commit_queue_.push_back(pending);
  while (!pending->done) {
    if (commit_leader_active_) {
      commit_cv_.wait(lock);
      continue;
    }
    // Become the group-commit leader: drain a batch, commit it outside the
    // queue lock, wake everyone whose updates rode along.
    commit_leader_active_ = true;
    if (options_.commit_linger_us > 0) {
      commit_cv_.wait_for(
          lock, std::chrono::microseconds(options_.commit_linger_us), [&] {
            size_t queued = 0;
            for (const auto& p : commit_queue_) queued += p->specs.size();
            return queued >= options_.commit_batch_max;
          });
    }
    std::vector<std::shared_ptr<PendingCommit>> batch;
    size_t queued_updates = 0;
    while (!commit_queue_.empty() &&
           (batch.empty() || queued_updates < options_.commit_batch_max)) {
      queued_updates += commit_queue_.front()->specs.size();
      batch.push_back(std::move(commit_queue_.front()));
      commit_queue_.pop_front();
    }
    lock.unlock();
    CommitBatch(batch);
    lock.lock();
    // `done` is published under commit_mu_, so each waiter reads its status
    // with a happens-before edge from the leader's writes.
    for (auto& p : batch) p->done = true;
    commit_leader_active_ = false;
    commit_cv_.notify_all();
  }
  if (commit_epoch != nullptr) *commit_epoch = pending->commit_epoch;
  return pending->status;
}

void Database::CommitBatch(std::vector<std::shared_ptr<PendingCommit>>& batch) {
  struct ResolvedOp {
    std::string table;
    size_t row = 0;
    double new_measure = 0;
  };
  auto fail_batch = [&](const Status& status) {
    for (auto& p : batch) {
      if (p->status.ok()) p->status = status;
    }
  };

  for (int attempt = 0; attempt < 5; ++attempt) {
    for (auto& p : batch) p->status = Status::Ok();

    // Stage off a consistent copy of the state; no locks held while the new
    // table versions and cache refreshes are computed.
    uint64_t staged_structural_epoch;
    Catalog cat;
    std::map<std::string, MpfViewDef> views;
    std::map<std::string, std::shared_ptr<const workload::VeCache>> cache_ptrs;
    {
      std::shared_lock<std::shared_mutex> lock(state_mu_);
      staged_structural_epoch =
          structural_epoch_.load(std::memory_order_relaxed);
      cat = catalog_;
      views = views_;
      for (const auto& [name, entry] : caches_) cache_ptrs[name] = entry.cache;
    }

    // A published cache can locate a base row with one MPH probe; fall back
    // to a table scan when no cache covers the table.
    std::map<std::string, std::pair<const workload::VeCache*, size_t>>
        locators;
    for (const auto& [view_name, cache] : cache_ptrs) {
      for (size_t b = 0; b < cache->base_tables().size(); ++b) {
        locators.emplace(cache->base_tables()[b]->name(),
                         std::make_pair(cache.get(), b));
      }
    }
    auto locate_row = [&](const TablePtr& table,
                          const std::vector<VarValue>& row_vars)
        -> StatusOr<size_t> {
      auto it = locators.find(table->name());
      if (it != locators.end() &&
          it->second.first->base_tables()[it->second.second] == table) {
        return it->second.first->LocateBaseRow(it->second.second, row_vars);
      }
      for (size_t i = 0; i < table->NumRows(); ++i) {
        RowView r = table->Row(i);
        bool all = true;
        for (size_t j = 0; j < r.arity; ++j) {
          if (r.var(j) != row_vars[j]) {
            all = false;
            break;
          }
        }
        if (all) return i;
      }
      return Status::NotFound("ApplyMeasureUpdate matched no row of '" +
                              table->name() + "'");
    };

    // Resolve each caller's specs independently: a bad spec fails only the
    // call that issued it, and drops that call's updates from the batch.
    std::vector<std::vector<ResolvedOp>> resolved(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      for (const MeasureUpdateSpec& spec : batch[i]->specs) {
        auto table_or = cat.GetTable(spec.table);
        if (!table_or.ok()) {
          batch[i]->status = table_or.status();
          break;
        }
        const TablePtr& table = *table_or;
        if (spec.row_vars.size() != table->schema().arity()) {
          batch[i]->status = Status::InvalidArgument(
              "ApplyMeasureUpdate: row has " +
              std::to_string(spec.row_vars.size()) + " values but table '" +
              spec.table + "' has arity " +
              std::to_string(table->schema().arity()));
          break;
        }
        auto row_or = locate_row(table, spec.row_vars);
        if (!row_or.ok()) {
          batch[i]->status = row_or.status();
          break;
        }
        if (table->measure(*row_or) == spec.new_measure) continue;  // no-op
        resolved[i].push_back({spec.table, *row_or, spec.new_measure});
      }
      if (!batch[i]->status.ok()) resolved[i].clear();
    }

    // Merge into one update list per table; later callers win on row ties.
    std::map<std::string, std::map<size_t, double>> merged;
    for (const auto& ops : resolved) {
      for (const ResolvedOp& op : ops) merged[op.table][op.row] =
          op.new_measure;
    }
    if (merged.empty()) {  // all no-ops or per-call failures
      uint64_t at = epoch_.load(std::memory_order_acquire);
      for (auto& p : batch) p->commit_epoch = at;
      return;
    }

    // New table versions: share the variable block and every measure chunk
    // the batch did not touch.
    std::map<std::string, TablePtr> old_tables;
    std::map<std::string, TablePtr> new_tables;
    size_t rows_updated = 0;
    for (const auto& [name, rows] : merged) {
      TablePtr base = *cat.GetTable(name);
      std::vector<std::pair<size_t, double>> updates(rows.begin(), rows.end());
      rows_updated += updates.size();
      old_tables[name] = base;
      new_tables[name] = base->WithMeasureUpdates(updates, name);
    }

    // Refresh every published cache whose view references an updated table:
    // exact-replay delta when possible, full rebuild on kFailedPrecondition
    // (absorbing zero, no delta plan) or when the ablation knob disables the
    // incremental path.
    uint64_t batch_delta_refreshes = 0;
    uint64_t batch_full_rebuilds = 0;
    std::map<std::string, std::shared_ptr<const workload::VeCache>> refreshed;
    for (const auto& [view_name, cache] : cache_ptrs) {
      auto view_it = views.find(view_name);
      if (view_it == views.end()) continue;
      std::vector<workload::VeCacheDeltaOp> delta_ops;
      for (const auto& rel : view_it->second.relations) {
        auto nt = new_tables.find(rel);
        if (nt == new_tables.end()) continue;
        workload::VeCacheDeltaOp op;
        op.table = rel;
        op.new_table = nt->second;
        for (const auto& [row, m] : merged[rel]) op.rows.emplace_back(row, m);
        delta_ops.push_back(std::move(op));
      }
      if (delta_ops.empty()) continue;
      bool delta_done = false;
      if (options_.incremental_cache_refresh && cache->SupportsDelta()) {
        StatusOr<workload::VeCache> next = cache->WithMeasureDelta(delta_ops);
        if (next.ok()) {
          refreshed[view_name] =
              std::make_shared<const workload::VeCache>(std::move(*next));
          ++batch_delta_refreshes;
          delta_done = true;
        } else if (next.status().code() != StatusCode::kFailedPrecondition) {
          fail_batch(next.status());
          return;
        }
      }
      if (!delta_done) {
        Catalog staged = cat;
        for (const auto& [name, table] : new_tables) {
          Status s = staged.ReplaceTable(table);
          if (!s.ok()) {
            fail_batch(s);
            return;
          }
        }
        workload::VeCacheOptions cache_options;
        cache_options.mph_indexes = exec_options_.mph_indexes;
        cache_options.epoch = epoch_.load(std::memory_order_relaxed) + 1;
        StatusOr<workload::VeCache> rebuilt =
            workload::VeCache::Build(view_it->second, staged, cache_options);
        if (!rebuilt.ok()) {
          fail_batch(rebuilt.status());
          return;
        }
        refreshed[view_name] =
            std::make_shared<const workload::VeCache>(std::move(*rebuilt));
        ++batch_full_rebuilds;
      }
    }

    // Publish under the exclusive lock, revalidating that no structural
    // change or concurrent BuildCache invalidated the staging; retry fresh
    // if one did. Exactly one epoch bump covers the whole batch.
    {
      std::unique_lock<std::shared_mutex> lock(state_mu_);
      if (structural_epoch_.load(std::memory_order_relaxed) !=
          staged_structural_epoch) {
        continue;
      }
      bool raced = false;
      for (const auto& [view_name, entry] : caches_) {
        auto view_it = views_.find(view_name);
        if (view_it == views_.end()) continue;
        bool references = false;
        for (const auto& rel : view_it->second.relations) {
          if (new_tables.count(rel) > 0) {
            references = true;
            break;
          }
        }
        if (!references) continue;
        auto staged_it = cache_ptrs.find(view_name);
        if (staged_it == cache_ptrs.end() || staged_it->second != entry.cache) {
          raced = true;  // a BuildCache published a cache we did not refresh
          break;
        }
      }
      if (raced) continue;

      for (const auto& [name, table] : new_tables) {
        Status s = catalog_.ReplaceTable(table);
        if (!s.ok()) {
          fail_batch(s);
          return;
        }
      }
      BumpDataEpochLocked();
      uint64_t new_epoch = epoch_.load(std::memory_order_relaxed);
      for (auto& p : batch) p->commit_epoch = new_epoch;
      for (auto& [view_name, cache] : refreshed) {
        auto it = caches_.find(view_name);
        if (it != caches_.end()) {
          it->second = CacheEntry{std::move(cache), new_epoch};
        }
      }
      // Caches over unrelated tables stay valid across this commit.
      for (auto& [view_name, entry] : caches_) entry.epoch = new_epoch;

      // Retire the superseded versions into the per-table chains; GC frees
      // every version no pinned snapshot can still see.
      std::lock_guard<std::mutex> gc_lock(gc_->mu);
      for (const auto& [name, old_table] : old_tables) {
        uint64_t birth = 0;
        auto b = gc_->birth_epoch.find(name);
        if (b != gc_->birth_epoch.end()) birth = b->second;
        gc_->chains[name].push_back(
            GcState::Retired{birth, new_epoch, old_table});
        gc_->birth_epoch[name] = new_epoch;
        ++gc_->versions_retired;
      }
      gc_->CollectLocked();
    }

    commit_batches_.fetch_add(1, std::memory_order_relaxed);
    updates_applied_.fetch_add(rows_updated, std::memory_order_relaxed);
    if (batch.size() > 1) {
      updates_coalesced_.fetch_add(batch.size() - 1,
                                   std::memory_order_relaxed);
    }
    delta_refreshes_.fetch_add(batch_delta_refreshes,
                               std::memory_order_relaxed);
    full_rebuilds_.fetch_add(batch_full_rebuilds, std::memory_order_relaxed);
    return;
  }
  fail_batch(Status::Internal(
      "measure commit kept racing structural changes; retry later"));
}

MvccStats Database::mvcc_stats() const {
  MvccStats stats;
  stats.commit_batches = commit_batches_.load(std::memory_order_relaxed);
  stats.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  stats.updates_coalesced = updates_coalesced_.load(std::memory_order_relaxed);
  stats.delta_refreshes = delta_refreshes_.load(std::memory_order_relaxed);
  stats.full_rebuilds = full_rebuilds_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> gc_lock(gc_->mu);
    stats.versions_retired = gc_->versions_retired;
    stats.versions_collected = gc_->versions_collected;
    for (const auto& [name, chain] : gc_->chains) {
      stats.versions_retained += chain.size();
    }
    stats.pinned_snapshots = gc_->pins.size();
  }
  stats.structural_epoch = structural_epoch_.load(std::memory_order_acquire);
  stats.live_measure_chunks = mvcc::MeasureChunk::LiveCount();
  return stats;
}

StatusOr<std::string> Database::Explain(const std::string& view_name,
                                        const MpfQuerySpec& query,
                                        const std::string& optimizer_spec) {
  SnapshotPtr snap = snapshot();
  auto view_it = snap->views.find(view_name);
  if (view_it == snap->views.end()) {
    return Status::NotFound("view '" + view_name + "' does not exist");
  }
  const MpfViewDef& view = view_it->second;
  MPFDB_ASSIGN_OR_RETURN(std::unique_ptr<opt::Optimizer> optimizer,
                         MakeOptimizer(optimizer_spec));
  MPFDB_ASSIGN_OR_RETURN(PlanPtr plan,
                         optimizer->Optimize(view, query, snap->catalog,
                                             *cost_model_));
  // The logical plan (the optimizer's output) followed by the physical plan
  // (per-node algorithm selection, interesting orders, physical costs).
  exec::Executor executor(snap->catalog, view.semiring, exec_options_);
  MPFDB_ASSIGN_OR_RETURN(std::unique_ptr<PhysicalPlanNode> physical,
                         executor.PlanPhysical(*plan));
  return "-- optimizer: " + optimizer->name() + "\n-- query: " +
         query.ToString(view) + "\n-- variable order: (" +
         FormatVarList(optimizer->last_variable_order()) + ")\n" +
         ExplainPlan(*plan) + "-- physical plan:\n" +
         ExplainPhysicalPlan(*physical);
}

StatusOr<std::string> Database::ExplainAnalyze(
    const std::string& view_name, const MpfQuerySpec& query,
    const std::string& optimizer_spec) {
  SnapshotPtr snap = snapshot();
  auto view_it = snap->views.find(view_name);
  if (view_it == snap->views.end()) {
    return Status::NotFound("view '" + view_name + "' does not exist");
  }
  const MpfViewDef& view = view_it->second;
  MPFDB_ASSIGN_OR_RETURN(std::unique_ptr<opt::Optimizer> optimizer,
                         MakeOptimizer(optimizer_spec));
  MPFDB_ASSIGN_OR_RETURN(
      PlanPtr plan,
      optimizer->Optimize(view, query, snap->catalog, *cost_model_));
  exec::Executor executor(snap->catalog, view.semiring, exec_options_);
  MPFDB_ASSIGN_OR_RETURN(exec::Executor::AnalyzedResult analyzed,
                         executor.ExecuteAnalyze(*plan, view_name + "_result"));
  return "-- optimizer: " + optimizer->name() + "\n-- query: " +
         query.ToString(view) + "\n-- variable order: (" +
         FormatVarList(optimizer->last_variable_order()) + ")\n" +
         exec::ExplainAnalyzePlan(*analyzed.physical, analyzed.stats);
}

Status Database::BuildCache(const std::string& view_name, QueryContext* ctx) {
  // Build against a snapshot so readers and writers keep running; publish
  // only if the state the build saw is still current, else retry fresh.
  for (int attempt = 0; attempt < 5; ++attempt) {
    SnapshotPtr snap = snapshot();
    auto view_it = snap->views.find(view_name);
    if (view_it == snap->views.end()) {
      return Status::NotFound("view '" + view_name + "' does not exist");
    }
    workload::VeCacheOptions cache_options;
    cache_options.context = ctx;
    cache_options.mph_indexes = exec_options_.mph_indexes;
    cache_options.epoch = snap->epoch;
    MPFDB_ASSIGN_OR_RETURN(workload::VeCache cache,
                           workload::VeCache::Build(view_it->second,
                                                    snap->catalog,
                                                    cache_options));
    std::unique_lock<std::shared_mutex> lock(state_mu_);
    if (epoch_.load(std::memory_order_relaxed) != snap->epoch) continue;
    caches_[view_name] = CacheEntry{
        std::make_shared<const workload::VeCache>(std::move(cache)),
        snap->epoch};
    return Status::Ok();
  }
  return Status::Internal("BuildCache('" + view_name +
                          "') kept racing concurrent updates; retry later");
}

bool Database::HasCache(const std::string& view_name) const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return caches_.count(view_name) > 0;
}

StatusOr<TablePtr> Database::QueryCached(const std::string& view_name,
                                         const MpfQuerySpec& query) const {
  std::shared_ptr<const workload::VeCache> cache;
  {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    auto it = caches_.find(view_name);
    if (it == caches_.end()) {
      return Status::FailedPrecondition("no cache built for view '" +
                                        view_name + "'; call BuildCache first");
    }
    cache = it->second.cache;
  }
  // Answer off the pinned shared cache: a concurrent ApplyMeasureUpdate
  // publishes a fresh clone rather than mutating this one.
  return cache->Answer(query);
}

}  // namespace mpfdb
