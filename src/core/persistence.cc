#include "core/persistence.h"

#include <filesystem>
#include <fstream>

#include "storage/csv.h"
#include "storage/disk_table.h"
#include "util/strings.h"

namespace mpfdb {
namespace {

namespace fs = std::filesystem;

// Manifest line formats (one record per line, '|'-separated fields):
//   variable|<name>|<domain>
//   table|<name>|<csv file>|<measure>|<key vars ','-joined, may be empty>
//   view|<name>|<semiring>|<relations ','-joined>
constexpr char kManifestName[] = "manifest";

}  // namespace

Status SaveDatabase(const Database& db, const std::string& directory,
                    bool binary) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::Internal("cannot create directory '" + directory +
                            "': " + ec.message());
  }
  std::ofstream manifest(fs::path(directory) / kManifestName);
  if (!manifest) {
    return Status::Internal("cannot open manifest for writing in " + directory);
  }

  const Catalog& catalog = db.catalog();
  // Variables referenced by any table. (The catalog does not expose its
  // variable map directly; tables cover every variable that matters, and
  // standalone variables are re-derivable only if used, so persist the union
  // of table variables plus their domains.)
  std::vector<std::string> table_names = catalog.TableNames();
  std::vector<std::string> seen_vars;
  for (const auto& name : table_names) {
    TablePtr table = *catalog.GetTable(name);
    for (const auto& var : table->schema().variables()) {
      if (varset::Contains(seen_vars, var)) continue;
      seen_vars.push_back(var);
      manifest << "variable|" << var << "|" << *catalog.DomainSize(var) << "\n";
    }
  }
  for (const auto& name : table_names) {
    TablePtr table = *catalog.GetTable(name);
    std::string file_name = name + (binary ? ".mpft" : ".csv");
    if (binary) {
      MPFDB_RETURN_IF_ERROR(
          DiskTable::Write(*table, (fs::path(directory) / file_name).string()));
    } else {
      MPFDB_RETURN_IF_ERROR(
          WriteTableCsv(*table, (fs::path(directory) / file_name).string()));
    }
    manifest << "table|" << name << "|" << file_name << "|"
             << table->schema().measure_name() << "|"
             << Join(table->key_vars(), ",") << "\n";
  }
  for (const auto& view_name : db.ViewNames()) {
    const MpfViewDef* view = *db.GetView(view_name);
    manifest << "view|" << view->name << "|" << view->semiring.name() << "|"
             << Join(view->relations, ",") << "\n";
  }
  if (!manifest) {
    return Status::Internal("manifest write failed in " + directory);
  }
  return Status::Ok();
}

Status LoadDatabase(const std::string& directory, Database& db) {
  std::ifstream manifest(fs::path(directory) / kManifestName);
  if (!manifest) {
    return Status::NotFound("no manifest in '" + directory + "'");
  }
  std::string line;
  size_t line_number = 0;
  while (std::getline(manifest, line)) {
    ++line_number;
    if (StripWhitespace(line).empty()) continue;
    std::vector<std::string> fields = Split(line, '|');
    const std::string& kind = fields[0];
    auto bad = [&](const std::string& why) {
      return Status::InvalidArgument("manifest line " +
                                     std::to_string(line_number) + ": " + why);
    };
    if (kind == "variable") {
      if (fields.size() != 3) return bad("variable needs 3 fields");
      errno = 0;
      int64_t domain = std::strtoll(fields[2].c_str(), nullptr, 10);
      if (errno != 0 || domain <= 0) return bad("bad domain size");
      MPFDB_RETURN_IF_ERROR(db.catalog().RegisterVariable(fields[1], domain));
    } else if (kind == "table") {
      if (fields.size() != 5) return bad("table needs 5 fields");
      std::string file_path = (fs::path(directory) / fields[2]).string();
      TablePtr table;
      if (fields[2].size() > 5 &&
          fields[2].substr(fields[2].size() - 5) == ".mpft") {
        MPFDB_ASSIGN_OR_RETURN(std::unique_ptr<DiskTable> disk,
                               DiskTable::Open(file_path));
        MPFDB_ASSIGN_OR_RETURN(table, disk->ReadAll(fields[1]));
      } else {
        MPFDB_ASSIGN_OR_RETURN(std::unique_ptr<Table> loaded,
                               ReadTableCsv(fields[1], file_path));
        table = TablePtr(std::move(loaded));
      }
      if (table->schema().measure_name() != fields[3]) {
        return bad("measure name mismatch for table " + fields[1]);
      }
      if (!fields[4].empty()) {
        MPFDB_RETURN_IF_ERROR(table->SetKeyVars(Split(fields[4], ',')));
      }
      MPFDB_RETURN_IF_ERROR(db.CreateTable(std::move(table)));
    } else if (kind == "view") {
      if (fields.size() != 4) return bad("view needs 4 fields");
      MpfViewDef view;
      view.name = fields[1];
      MPFDB_ASSIGN_OR_RETURN(view.semiring, Semiring::FromName(fields[2]));
      view.relations = Split(fields[3], ',');
      MPFDB_RETURN_IF_ERROR(db.CreateMpfView(std::move(view)));
    } else {
      return bad("unknown record kind '" + kind + "'");
    }
  }
  return Status::Ok();
}

}  // namespace mpfdb
