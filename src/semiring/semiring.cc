#include "semiring/semiring.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/strings.h"

namespace mpfdb {

StatusOr<Semiring> Semiring::FromName(const std::string& name) {
  std::string lower = ToLower(name);
  if (lower == "sum_product" || lower == "sum") return SumProduct();
  if (lower == "min_sum" || lower == "min") return MinSum();
  if (lower == "max_sum" || lower == "max") return MaxSum();
  if (lower == "max_product") return MaxProduct();
  if (lower == "bool_or_and" || lower == "or") return BoolOrAnd();
  if (lower == "log_sum_product" || lower == "logsum") return LogSumProduct();
  return Status::InvalidArgument("unknown semiring: " + name);
}

std::string Semiring::name() const {
  switch (kind_) {
    case SemiringKind::kSumProduct:
      return "sum_product";
    case SemiringKind::kMinSum:
      return "min_sum";
    case SemiringKind::kMaxSum:
      return "max_sum";
    case SemiringKind::kMaxProduct:
      return "max_product";
    case SemiringKind::kBoolOrAnd:
      return "bool_or_and";
    case SemiringKind::kLogSumProduct:
      return "log_sum_product";
  }
  return "unknown";
}

std::string Semiring::aggregate_name() const {
  switch (kind_) {
    case SemiringKind::kSumProduct:
      return "SUM";
    case SemiringKind::kMinSum:
      return "MIN";
    case SemiringKind::kMaxSum:
    case SemiringKind::kMaxProduct:
      return "MAX";
    case SemiringKind::kBoolOrAnd:
      return "OR";
    case SemiringKind::kLogSumProduct:
      return "LOGSUM";
  }
  return "AGG";
}

double Semiring::Add(double a, double b) const {
  switch (kind_) {
    case SemiringKind::kSumProduct:
      return a + b;
    case SemiringKind::kMinSum:
      return std::min(a, b);
    case SemiringKind::kMaxSum:
    case SemiringKind::kMaxProduct:
      return std::max(a, b);
    case SemiringKind::kBoolOrAnd:
      return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
    case SemiringKind::kLogSumProduct: {
      // Stable log(exp(a) + exp(b)).
      if (a == -std::numeric_limits<double>::infinity()) return b;
      if (b == -std::numeric_limits<double>::infinity()) return a;
      double hi = std::max(a, b);
      double lo = std::min(a, b);
      return hi + std::log1p(std::exp(lo - hi));
    }
  }
  return 0.0;
}

double Semiring::Multiply(double a, double b) const {
  switch (kind_) {
    case SemiringKind::kSumProduct:
    case SemiringKind::kMaxProduct:
      return a * b;
    case SemiringKind::kMinSum:
    case SemiringKind::kMaxSum:
      return a + b;
    case SemiringKind::kBoolOrAnd:
      return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
    case SemiringKind::kLogSumProduct:
      return a + b;
  }
  return 0.0;
}

double Semiring::AddIdentity() const {
  switch (kind_) {
    case SemiringKind::kSumProduct:
      return 0.0;
    case SemiringKind::kMinSum:
      return std::numeric_limits<double>::infinity();
    case SemiringKind::kMaxSum:
      return -std::numeric_limits<double>::infinity();
    case SemiringKind::kMaxProduct:
      return 0.0;
    case SemiringKind::kBoolOrAnd:
      return 0.0;
    case SemiringKind::kLogSumProduct:
      return -std::numeric_limits<double>::infinity();
  }
  return 0.0;
}

double Semiring::MultiplyIdentity() const {
  switch (kind_) {
    case SemiringKind::kSumProduct:
    case SemiringKind::kMaxProduct:
    case SemiringKind::kBoolOrAnd:
      return 1.0;
    case SemiringKind::kMinSum:
    case SemiringKind::kMaxSum:
    case SemiringKind::kLogSumProduct:
      return 0.0;
  }
  return 1.0;
}

bool Semiring::HasDivision() const {
  switch (kind_) {
    case SemiringKind::kSumProduct:
    case SemiringKind::kMinSum:
    case SemiringKind::kMaxSum:
    case SemiringKind::kMaxProduct:
    case SemiringKind::kLogSumProduct:
      return true;
    case SemiringKind::kBoolOrAnd:
      return false;
  }
  return false;
}

double Semiring::Divide(double a, double b) const {
  switch (kind_) {
    case SemiringKind::kSumProduct:
    case SemiringKind::kMaxProduct:
      // By convention 0/0 = 0: a zero product-join contribution stays zero,
      // which is the standard Belief Propagation treatment of zero messages.
      if (b == 0.0) return 0.0;
      return a / b;
    case SemiringKind::kMinSum:
    case SemiringKind::kMaxSum:
    case SemiringKind::kLogSumProduct:
      return a - b;
    case SemiringKind::kBoolOrAnd:
      return a;  // No inverse; callers must check HasDivision().
  }
  return a;
}

}  // namespace mpfdb
