#ifndef MPFDB_SEMIRING_SEMIRING_H_
#define MPFDB_SEMIRING_SEMIRING_H_

#include <string>

#include "util/status.h"

namespace mpfdb {

// The commutative semirings over which MPF queries are defined (Section 2 of
// the paper). A semiring supplies the "additive" operation used by the
// marginalizing GroupBy aggregate and the "multiplicative" operation used by
// the product join. Measures are stored as double regardless of semiring; the
// boolean semiring uses 0.0 / 1.0.
enum class SemiringKind {
  // (R, +, *): SUM aggregate, product join. Probabilistic inference.
  kSumProduct = 0,
  // (R ∪ {+inf}, min, +): MIN aggregate, additive join. Shortest-path /
  // cheapest-configuration decision support ("minimum investment").
  kMinSum,
  // (R ∪ {-inf}, max, +): MAX aggregate, additive join.
  kMaxSum,
  // ([0, inf), max, *): MAX aggregate, product join. MPE / Viterbi.
  kMaxProduct,
  // ({0,1}, or, and): logical satisfiability / reachability.
  kBoolOrAnd,
  // Sum-product in log space: measures are log-probabilities, Multiply is
  // +, Add is log-sum-exp. Isomorphic to kSumProduct but numerically stable
  // for long products of small probabilities (large Bayesian networks).
  kLogSumProduct,
};

// Runtime semiring descriptor. Cheap value type; all operations are branchy
// but trivially inlined in the executor's hot loops via Kind() switches.
class Semiring {
 public:
  explicit Semiring(SemiringKind kind) : kind_(kind) {}

  static Semiring SumProduct() { return Semiring(SemiringKind::kSumProduct); }
  static Semiring MinSum() { return Semiring(SemiringKind::kMinSum); }
  static Semiring MaxSum() { return Semiring(SemiringKind::kMaxSum); }
  static Semiring MaxProduct() { return Semiring(SemiringKind::kMaxProduct); }
  static Semiring BoolOrAnd() { return Semiring(SemiringKind::kBoolOrAnd); }
  static Semiring LogSumProduct() {
    return Semiring(SemiringKind::kLogSumProduct);
  }

  // Parses "sum_product", "min_sum", "max_sum", "max_product" or
  // "bool_or_and" (aliases: "sum", "min", "max", "or").
  static StatusOr<Semiring> FromName(const std::string& name);

  SemiringKind kind() const { return kind_; }
  std::string name() const;

  // Name of the additive aggregate as it appears in queries (SUM/MIN/MAX/OR).
  std::string aggregate_name() const;

  // The additive (marginalization) operation.
  double Add(double a, double b) const;
  // The multiplicative (product-join) operation.
  double Multiply(double a, double b) const;

  // Identity of Add: the value of an empty aggregate.
  double AddIdentity() const;
  // Identity of Multiply: the implicit measure of a plain relation.
  double MultiplyIdentity() const;

  // True if Add is commutative (a ⊕ b == b ⊕ a as abstract values). Every
  // built-in kind is; the predicate exists so the parallel executor can
  // assert the property it relies on — thread-local pre-aggregation
  // regroups updates for *different* keys relative to the serial schedule,
  // which is only meaning-preserving in a commutative monoid. Per-key
  // combine order is still kept identical to serial for bit-exact floats.
  bool AddIsCommutative() const { return true; }

  // True if folding any multiset of values with Add yields bit-identical
  // results for every argument order — i.e. Add is not just abstractly
  // commutative/associative but exactly reorderable on IEEE doubles. Holds
  // for the min/max-based kinds (min/max are selection, not accumulation;
  // the caveat is only that min/max over mixed ±0.0 or NaN inputs could pick
  // a different representative, which the engine never produces from
  // measures it loads). Sum-based kinds (sum-product, log-sum-product)
  // accumulate with floating-point +, which is famously order-sensitive, so
  // they return false. The physical planner uses this to decide whether a
  // sort-merge join (which reorders emission relative to hash join) is
  // unconditionally admissible.
  bool AddIsOrderInvariant() const {
    switch (kind_) {
      case SemiringKind::kMinSum:
      case SemiringKind::kMaxSum:
      case SemiringKind::kMaxProduct:
      case SemiringKind::kBoolOrAnd:
        return true;
      case SemiringKind::kSumProduct:
      case SemiringKind::kLogSumProduct:
        return false;
    }
    return false;
  }

  // True if folding Add over a *superset* of terms can only move the result
  // up (or keep it): max/or are selection over more candidates, sum and
  // log-sum-exp accumulate more mass. False only for kMinSum, where min over
  // more candidates can only move *down*. This is the orientation the
  // dissociation pass uses: a dissociated plan aggregates a superset of the
  // exact query's assignments, so it bounds the exact answer from above when
  // this is true and from below for kMinSum; a conditioned plan (a subset of
  // assignments) bounds from the opposite side. For kSumProduct the superset
  // guarantee additionally requires non-negative measures — see
  // AddMonotoneNeedsNonNegative().
  bool AddMonotoneNondecreasing() const {
    return kind_ != SemiringKind::kMinSum;
  }

  // True when AddMonotoneNondecreasing()'s superset guarantee only holds for
  // non-negative measures (plain floating-point +, where an extra negative
  // term moves the fold down). The dissociation pass verifies the factors
  // and refuses with kFailedPrecondition otherwise. The other kinds need no
  // check: min/max/or are selections regardless of sign, and
  // log-sum-product's measures are logs of implicitly non-negative weights.
  bool AddMonotoneNeedsNonNegative() const {
    return kind_ == SemiringKind::kSumProduct;
  }

  // True if Multiply has an inverse almost everywhere, which the update
  // semijoin of Belief Propagation requires (Definition 6 of the paper).
  bool HasDivision() const;
  // Inverse of Multiply: Divide(Multiply(a, b), b) == a for b invertible.
  // For min/max-sum this is subtraction; for the boolean semiring it aborts
  // via Status in callers (guard with HasDivision()).
  double Divide(double a, double b) const;

  bool operator==(const Semiring& other) const { return kind_ == other.kind_; }

 private:
  SemiringKind kind_;
};

}  // namespace mpfdb

#endif  // MPFDB_SEMIRING_SEMIRING_H_
