#ifndef MPFDB_GRAPH_JUNCTION_TREE_H_
#define MPFDB_GRAPH_JUNCTION_TREE_H_

#include <string>
#include <vector>

#include "graph/variable_graph.h"
#include "util/status.h"

namespace mpfdb::graph {

// GYO reduction test for schema (hypergraph) acyclicity: repeatedly remove
// variables that occur in a single relation and relations contained in
// another; the schema is acyclic iff everything reduces away. This is the
// property Theorems 7/8 of the paper characterize via join trees and chordal
// variable graphs.
bool IsAcyclicSchema(const std::vector<std::vector<std::string>>& relation_vars);

// A tree over var-set nodes. For acyclic schemas the nodes are the relations
// themselves (a join tree); for the Junction Tree algorithm the nodes are the
// maximal cliques of the triangulated variable graph.
struct JoinTree {
  // node_vars[i] is the variable set of node i.
  std::vector<std::vector<std::string>> node_vars;
  // Undirected tree edges (parent/child orientation is chosen by consumers).
  std::vector<std::pair<size_t, size_t>> edges;

  // Neighbors of node i.
  std::vector<size_t> NeighborsOf(size_t i) const;
};

// Builds a maximum-weight spanning tree over the nodes where edge weight is
// the number of shared variables. Components that share no variables are
// connected by zero-weight edges (their separators are empty, which keeps
// the running intersection property intact). For an acyclic schema the
// result satisfies the running intersection property (Theorem 7).
JoinTree MaxSpanningJoinTree(
    const std::vector<std::vector<std::string>>& node_vars);

// True if for every pair of nodes, their shared variables appear in every
// node on the tree path between them (the running intersection property).
bool SatisfiesRunningIntersection(const JoinTree& tree);

// The Junction Tree algorithm (Algorithm 5): triangulates the schema's
// variable graph, takes maximal cliques as the new schema, builds a
// spanning tree with the running intersection property, and assigns each
// original relation to a clique containing all its variables.
struct JunctionTree {
  JoinTree tree;
  // assignment[r] = index of the clique relation r was assigned to.
  std::vector<size_t> assignment;
  // The elimination order used for triangulation.
  std::vector<std::string> elimination_order;
  // Fill edges added by triangulation (empty iff the variable graph was
  // already chordal).
  std::vector<std::pair<std::string, std::string>> fill_edges;
};

// Builds the junction tree with min-fill triangulation, or with the given
// elimination order when `order` is non-empty.
StatusOr<JunctionTree> BuildJunctionTree(
    const std::vector<std::vector<std::string>>& relation_vars,
    const std::vector<std::string>& order = {});

}  // namespace mpfdb::graph

#endif  // MPFDB_GRAPH_JUNCTION_TREE_H_
