#include "graph/junction_tree.h"

#include <algorithm>
#include <map>
#include <set>

#include "storage/schema.h"

namespace mpfdb::graph {

bool IsAcyclicSchema(
    const std::vector<std::vector<std::string>>& relation_vars) {
  std::vector<std::set<std::string>> edges;
  for (const auto& vars : relation_vars) {
    edges.emplace_back(vars.begin(), vars.end());
  }
  bool changed = true;
  while (changed) {
    changed = false;
    // Rule 1: remove variables occurring in exactly one hyperedge.
    std::map<std::string, int> occurrences;
    for (const auto& e : edges) {
      for (const auto& v : e) ++occurrences[v];
    }
    for (auto& e : edges) {
      for (auto it = e.begin(); it != e.end();) {
        if (occurrences[*it] == 1) {
          it = e.erase(it);
          changed = true;
        } else {
          ++it;
        }
      }
    }
    // Rule 2: remove hyperedges contained in another (including empties and
    // duplicates).
    for (size_t i = 0; i < edges.size(); ++i) {
      bool contained = false;
      for (size_t j = 0; j < edges.size(); ++j) {
        if (i == j) continue;
        if (edges[j].size() > edges[i].size() ||
            (edges[j].size() == edges[i].size() && j < i)) {
          if (std::includes(edges[j].begin(), edges[j].end(), edges[i].begin(),
                            edges[i].end())) {
            contained = true;
            break;
          }
        }
      }
      if (contained) {
        edges.erase(edges.begin() + i);
        changed = true;
        break;  // restart; indices shifted
      }
    }
  }
  if (edges.empty()) return true;
  if (edges.size() == 1) return true;  // a single edge is trivially acyclic
  return false;
}

std::vector<size_t> JoinTree::NeighborsOf(size_t i) const {
  std::vector<size_t> neighbors;
  for (const auto& [a, b] : edges) {
    if (a == i) neighbors.push_back(b);
    if (b == i) neighbors.push_back(a);
  }
  return neighbors;
}

JoinTree MaxSpanningJoinTree(
    const std::vector<std::vector<std::string>>& node_vars) {
  JoinTree tree;
  tree.node_vars = node_vars;
  const size_t n = node_vars.size();
  if (n <= 1) return tree;

  // Prim's algorithm with weight = |shared variables| (>= 0, so the result
  // also spans var-disjoint components via zero-weight edges).
  std::vector<bool> in_tree(n, false);
  in_tree[0] = true;
  for (size_t step = 1; step < n; ++step) {
    size_t best_from = 0, best_to = 0;
    int best_weight = -1;
    for (size_t a = 0; a < n; ++a) {
      if (!in_tree[a]) continue;
      for (size_t b = 0; b < n; ++b) {
        if (in_tree[b]) continue;
        int weight = static_cast<int>(
            varset::Intersect(node_vars[a], node_vars[b]).size());
        if (weight > best_weight) {
          best_weight = weight;
          best_from = a;
          best_to = b;
        }
      }
    }
    in_tree[best_to] = true;
    tree.edges.emplace_back(best_from, best_to);
  }
  return tree;
}

bool SatisfiesRunningIntersection(const JoinTree& tree) {
  const size_t n = tree.node_vars.size();
  // For every unordered pair (i, j), walk the unique tree path and check the
  // intersection is contained in every node on it. n is small (cliques), so
  // the O(n^3) walk is fine.
  // Build adjacency.
  std::vector<std::vector<size_t>> adj(n);
  for (const auto& [a, b] : tree.edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      std::vector<std::string> shared =
          varset::Intersect(tree.node_vars[i], tree.node_vars[j]);
      if (shared.empty()) continue;
      // BFS path from i to j.
      std::vector<int> parent(n, -1);
      std::vector<size_t> queue = {i};
      parent[i] = static_cast<int>(i);
      for (size_t qi = 0; qi < queue.size(); ++qi) {
        for (size_t nbr : adj[queue[qi]]) {
          if (parent[nbr] == -1) {
            parent[nbr] = static_cast<int>(queue[qi]);
            queue.push_back(nbr);
          }
        }
      }
      if (parent[j] == -1) return false;  // disconnected but sharing vars
      for (size_t node = j; node != i;
           node = static_cast<size_t>(parent[node])) {
        if (!varset::IsSubset(shared, tree.node_vars[node])) return false;
      }
    }
  }
  return true;
}

StatusOr<JunctionTree> BuildJunctionTree(
    const std::vector<std::vector<std::string>>& relation_vars,
    const std::vector<std::string>& order) {
  if (relation_vars.empty()) {
    return Status::InvalidArgument("empty schema");
  }
  VariableGraph graph = VariableGraph::FromSchema(relation_vars);
  JunctionTree jt;
  VariableGraph chordal;
  if (order.empty()) {
    VariableGraph::TriangulationResult t = graph.TriangulateMinFill();
    chordal = std::move(t.chordal);
    jt.elimination_order = std::move(t.order);
    jt.fill_edges = std::move(t.fill_edges);
  } else {
    MPFDB_ASSIGN_OR_RETURN(chordal, graph.Triangulate(order, &jt.fill_edges));
    jt.elimination_order = order;
  }
  MPFDB_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> cliques,
                         chordal.MaximalCliques());
  jt.tree = MaxSpanningJoinTree(cliques);
  if (!SatisfiesRunningIntersection(jt.tree)) {
    return Status::Internal(
        "junction tree construction violated the running intersection "
        "property (triangulation bug)");
  }
  // Assign each relation to some clique containing all its variables
  // (Algorithm 5 step 4); one must exist because the relation's variables
  // form a clique in the (triangulated) variable graph.
  jt.assignment.resize(relation_vars.size());
  for (size_t r = 0; r < relation_vars.size(); ++r) {
    bool assigned = false;
    for (size_t c = 0; c < cliques.size(); ++c) {
      if (varset::IsSubset(relation_vars[r], jt.tree.node_vars[c])) {
        jt.assignment[r] = c;
        assigned = true;
        break;
      }
    }
    if (!assigned) {
      return Status::Internal("relation " + std::to_string(r) +
                              " fits no clique (triangulation bug)");
    }
  }
  return jt;
}

}  // namespace mpfdb::graph
