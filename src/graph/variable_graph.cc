#include "graph/variable_graph.h"

#include <algorithm>

namespace mpfdb::graph {

VariableGraph VariableGraph::FromSchema(
    const std::vector<std::vector<std::string>>& relation_vars) {
  VariableGraph g;
  for (const auto& vars : relation_vars) {
    for (const auto& v : vars) g.AddVertex(v);
    for (size_t i = 0; i < vars.size(); ++i) {
      for (size_t j = i + 1; j < vars.size(); ++j) {
        g.AddEdge(vars[i], vars[j]);
      }
    }
  }
  return g;
}

void VariableGraph::AddVertex(const std::string& v) { adjacency_[v]; }

void VariableGraph::AddEdge(const std::string& a, const std::string& b) {
  if (a == b) return;
  adjacency_[a].insert(b);
  adjacency_[b].insert(a);
}

bool VariableGraph::HasEdge(const std::string& a, const std::string& b) const {
  auto it = adjacency_.find(a);
  return it != adjacency_.end() && it->second.count(b) > 0;
}

size_t VariableGraph::NumEdges() const {
  size_t twice = 0;
  for (const auto& [v, nbrs] : adjacency_) twice += nbrs.size();
  return twice / 2;
}

std::vector<std::string> VariableGraph::Vertices() const {
  std::vector<std::string> vertices;
  vertices.reserve(adjacency_.size());
  for (const auto& [v, nbrs] : adjacency_) vertices.push_back(v);
  return vertices;
}

const std::set<std::string>& VariableGraph::Neighbors(
    const std::string& v) const {
  static const std::set<std::string>* empty = new std::set<std::string>();
  auto it = adjacency_.find(v);
  return it == adjacency_.end() ? *empty : it->second;
}

std::vector<std::string> VariableGraph::MaximumCardinalitySearch() const {
  std::vector<std::string> order;
  std::map<std::string, size_t> weight;
  std::set<std::string> visited;
  for (const auto& [v, nbrs] : adjacency_) weight[v] = 0;
  while (order.size() < adjacency_.size()) {
    // Pick the unvisited vertex with the most visited neighbors (ties by
    // name for determinism).
    std::string best;
    size_t best_weight = 0;
    bool found = false;
    for (const auto& [v, w] : weight) {
      if (visited.count(v)) continue;
      if (!found || w > best_weight) {
        best = v;
        best_weight = w;
        found = true;
      }
    }
    visited.insert(best);
    order.push_back(best);
    for (const auto& nbr : Neighbors(best)) {
      if (!visited.count(nbr)) ++weight[nbr];
    }
  }
  return order;
}

bool VariableGraph::IsChordal() const {
  // The reverse of an MCS order must be a perfect elimination ordering: when
  // vertices are eliminated in that order, each vertex's earlier neighbors
  // (w.r.t. MCS positions) must form a clique. Standard check: for vertex v,
  // among its already-numbered neighbors, let u be the latest-numbered; every
  // other already-numbered neighbor of v must be adjacent to u.
  std::vector<std::string> order = MaximumCardinalitySearch();
  std::map<std::string, size_t> position;
  for (size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (size_t i = 0; i < order.size(); ++i) {
    const std::string& v = order[i];
    // Earlier neighbors of v.
    std::string latest;
    size_t latest_pos = 0;
    bool has_earlier = false;
    for (const auto& nbr : Neighbors(v)) {
      size_t p = position[nbr];
      if (p < i && (!has_earlier || p > latest_pos)) {
        latest = nbr;
        latest_pos = p;
        has_earlier = true;
      }
    }
    if (!has_earlier) continue;
    for (const auto& nbr : Neighbors(v)) {
      size_t p = position[nbr];
      if (p < i && nbr != latest && !HasEdge(nbr, latest)) {
        return false;
      }
    }
  }
  return true;
}

StatusOr<VariableGraph> VariableGraph::Triangulate(
    const std::vector<std::string>& order,
    std::vector<std::pair<std::string, std::string>>* fill_edges) const {
  if (order.size() != adjacency_.size()) {
    return Status::InvalidArgument(
        "triangulation order must cover every vertex");
  }
  for (const auto& v : order) {
    if (!HasVertex(v)) {
      return Status::InvalidArgument("unknown vertex in order: " + v);
    }
  }
  VariableGraph chordal = *this;   // result accumulates fill edges
  VariableGraph working = *this;   // vertices removed as eliminated
  for (const auto& v : order) {
    const std::set<std::string> nbrs = working.Neighbors(v);
    for (auto it1 = nbrs.begin(); it1 != nbrs.end(); ++it1) {
      for (auto it2 = std::next(it1); it2 != nbrs.end(); ++it2) {
        if (!working.HasEdge(*it1, *it2)) {
          working.AddEdge(*it1, *it2);
          chordal.AddEdge(*it1, *it2);
          if (fill_edges != nullptr) fill_edges->emplace_back(*it1, *it2);
        }
      }
    }
    // Remove v from the working graph.
    for (const auto& nbr : nbrs) working.adjacency_[nbr].erase(v);
    working.adjacency_.erase(v);
  }
  return chordal;
}

VariableGraph::TriangulationResult VariableGraph::TriangulateMinFill() const {
  TriangulationResult result;
  result.chordal = *this;
  VariableGraph working = *this;
  while (working.NumVertices() > 0) {
    // Greedy min-fill: eliminate the vertex whose elimination adds the
    // fewest edges.
    std::string best;
    size_t best_fill = 0;
    bool found = false;
    for (const auto& v : working.Vertices()) {
      const std::set<std::string>& nbrs = working.Neighbors(v);
      size_t fill = 0;
      for (auto it1 = nbrs.begin(); it1 != nbrs.end(); ++it1) {
        for (auto it2 = std::next(it1); it2 != nbrs.end(); ++it2) {
          if (!working.HasEdge(*it1, *it2)) ++fill;
        }
      }
      if (!found || fill < best_fill) {
        best = v;
        best_fill = fill;
        found = true;
      }
    }
    result.order.push_back(best);
    const std::set<std::string> nbrs = working.Neighbors(best);
    for (auto it1 = nbrs.begin(); it1 != nbrs.end(); ++it1) {
      for (auto it2 = std::next(it1); it2 != nbrs.end(); ++it2) {
        if (!working.HasEdge(*it1, *it2)) {
          working.AddEdge(*it1, *it2);
          result.chordal.AddEdge(*it1, *it2);
          result.fill_edges.emplace_back(*it1, *it2);
        }
      }
    }
    for (const auto& nbr : nbrs) working.adjacency_[nbr].erase(best);
    working.adjacency_.erase(best);
  }
  return result;
}

StatusOr<std::vector<std::vector<std::string>>> VariableGraph::MaximalCliques()
    const {
  if (!IsChordal()) {
    return Status::FailedPrecondition(
        "MaximalCliques requires a chordal graph");
  }
  // Sweep the reverse MCS order: the candidate clique of v is {v} ∪ its
  // later-ordered neighbors; keep candidates not contained in another.
  std::vector<std::string> order = MaximumCardinalitySearch();
  std::map<std::string, size_t> position;
  for (size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  std::vector<std::set<std::string>> candidates;
  for (size_t i = 0; i < order.size(); ++i) {
    const std::string& v = order[i];
    std::set<std::string> clique = {v};
    for (const auto& nbr : Neighbors(v)) {
      if (position[nbr] < i) clique.insert(nbr);
    }
    candidates.push_back(std::move(clique));
  }
  std::vector<std::vector<std::string>> cliques;
  for (size_t i = 0; i < candidates.size(); ++i) {
    bool maximal = true;
    for (size_t j = 0; j < candidates.size(); ++j) {
      if (i == j) continue;
      if (candidates[j].size() >= candidates[i].size() &&
          std::includes(candidates[j].begin(), candidates[j].end(),
                        candidates[i].begin(), candidates[i].end())) {
        if (candidates[j].size() > candidates[i].size() || j < i) {
          maximal = false;
          break;
        }
      }
    }
    if (maximal) {
      cliques.emplace_back(candidates[i].begin(), candidates[i].end());
    }
  }
  return cliques;
}

}  // namespace mpfdb::graph
