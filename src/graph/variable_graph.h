#ifndef MPFDB_GRAPH_VARIABLE_GRAPH_H_
#define MPFDB_GRAPH_VARIABLE_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/status.h"

namespace mpfdb::graph {

// Undirected graph over variable names. Used as the paper's "variable graph"
// (Theorem 8): vertices are the schema's variables and an edge joins two
// variables that co-occur in some relation.
class VariableGraph {
 public:
  VariableGraph() = default;

  // Builds the variable graph of a schema given each relation's variables.
  static VariableGraph FromSchema(
      const std::vector<std::vector<std::string>>& relation_vars);

  void AddVertex(const std::string& v);
  void AddEdge(const std::string& a, const std::string& b);
  bool HasEdge(const std::string& a, const std::string& b) const;
  bool HasVertex(const std::string& v) const { return adjacency_.count(v) > 0; }

  size_t NumVertices() const { return adjacency_.size(); }
  size_t NumEdges() const;
  std::vector<std::string> Vertices() const;
  const std::set<std::string>& Neighbors(const std::string& v) const;

  // True if every cycle of length > 3 has a chord. Uses maximum cardinality
  // search followed by a perfect-elimination-ordering check.
  bool IsChordal() const;

  // A maximum-cardinality-search ordering (reversed it is a perfect
  // elimination ordering iff the graph is chordal).
  std::vector<std::string> MaximumCardinalitySearch() const;

  // The triangulization procedure (Algorithm 6): eliminates vertices in
  // `order` (which must cover all vertices), connecting each vertex's
  // not-yet-eliminated neighbors. Returns the chordal supergraph; if
  // `fill_edges` is non-null, the added edges are appended to it.
  StatusOr<VariableGraph> Triangulate(
      const std::vector<std::string>& order,
      std::vector<std::pair<std::string, std::string>>* fill_edges = nullptr)
      const;

  // Convenience: triangulates with the greedy min-fill heuristic and returns
  // both the chordal graph and the order used. (Defined after the class —
  // the result holds a VariableGraph by value.)
  struct TriangulationResult;
  TriangulationResult TriangulateMinFill() const;

  // Maximal cliques of a *chordal* graph, via the elimination-order sweep.
  // Error if the graph is not chordal.
  StatusOr<std::vector<std::vector<std::string>>> MaximalCliques() const;

 private:
  std::map<std::string, std::set<std::string>> adjacency_;
};

struct VariableGraph::TriangulationResult {
  VariableGraph chordal;
  std::vector<std::string> order;
  std::vector<std::pair<std::string, std::string>> fill_edges;
};

}  // namespace mpfdb::graph

#endif  // MPFDB_GRAPH_VARIABLE_GRAPH_H_
