#include "storage/catalog.h"

#include <limits>

namespace mpfdb {

Status Catalog::RegisterVariable(const std::string& name, int64_t domain_size) {
  if (domain_size <= 0) {
    return Status::InvalidArgument("variable '" + name +
                                   "' must have positive domain size");
  }
  auto it = variable_domains_.find(name);
  if (it != variable_domains_.end()) {
    if (it->second != domain_size) {
      return Status::AlreadyExists("variable '" + name +
                                   "' already registered with different domain");
    }
    return Status::Ok();
  }
  variable_domains_[name] = domain_size;
  return Status::Ok();
}

bool Catalog::HasVariable(const std::string& name) const {
  return variable_domains_.count(name) > 0;
}

StatusOr<int64_t> Catalog::DomainSize(const std::string& name) const {
  auto it = variable_domains_.find(name);
  if (it == variable_domains_.end()) {
    return Status::NotFound("variable '" + name + "' not registered");
  }
  return it->second;
}

Status Catalog::RegisterTable(TablePtr table) {
  if (table == nullptr) {
    return Status::InvalidArgument("null table");
  }
  for (const auto& var : table->schema().variables()) {
    if (!HasVariable(var)) {
      return Status::FailedPrecondition("table '" + table->name() +
                                        "' references unregistered variable '" +
                                        var + "'");
    }
  }
  if (tables_.count(table->name()) > 0) {
    return Status::AlreadyExists("table '" + table->name() + "' already exists");
  }
  tables_[table->name()] = std::move(table);
  return Status::Ok();
}

Status Catalog::ReplaceTable(TablePtr table) {
  if (table == nullptr) {
    return Status::InvalidArgument("null table");
  }
  auto it = tables_.find(table->name());
  if (it == tables_.end()) {
    return Status::NotFound("table '" + table->name() + "' does not exist");
  }
  if (!(it->second->schema() == table->schema())) {
    return Status::InvalidArgument("replacement for table '" + table->name() +
                                   "' changes its schema");
  }
  // Hash indexes map variable values to row ids, so they stay valid across
  // measure-only versions (which share the old table's variable block).
  // Only rebuild them when the variable data actually changed.
  if (!table->SharesVarDataWith(*it->second)) {
    for (auto& [key, index] : indexes_) {
      if (key.first != table->name()) continue;
      MPFDB_ASSIGN_OR_RETURN(std::unique_ptr<HashIndex> rebuilt,
                             HashIndex::Build(*table, key.second));
      index = std::move(rebuilt);
    }
  }
  it->second = std::move(table);
  return Status::Ok();
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  for (auto it = indexes_.begin(); it != indexes_.end();) {
    if (it->first.first == name) {
      it = indexes_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::Ok();
}

Status Catalog::CreateIndex(const std::string& table_name,
                            const std::string& var) {
  MPFDB_ASSIGN_OR_RETURN(TablePtr table, GetTable(table_name));
  MPFDB_ASSIGN_OR_RETURN(std::unique_ptr<HashIndex> index,
                         HashIndex::Build(*table, var));
  indexes_[{table_name, var}] = std::move(index);
  return Status::Ok();
}

const HashIndex* Catalog::GetIndex(const std::string& table_name,
                                   const std::string& var) const {
  auto it = indexes_.find({table_name, var});
  return it == indexes_.end() ? nullptr : it->second.get();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

StatusOr<TablePtr> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

StatusOr<int64_t> Catalog::Cardinality(const std::string& table_name) const {
  MPFDB_ASSIGN_OR_RETURN(TablePtr table, GetTable(table_name));
  return static_cast<int64_t>(table->NumRows());
}

StatusOr<int64_t> Catalog::SmallestRelationWith(
    const std::string& var, const std::vector<std::string>& table_names) const {
  int64_t best = std::numeric_limits<int64_t>::max();
  bool found = false;
  for (const auto& name : table_names) {
    MPFDB_ASSIGN_OR_RETURN(TablePtr table, GetTable(name));
    if (table->schema().HasVariable(var)) {
      best = std::min(best, static_cast<int64_t>(table->NumRows()));
      found = true;
    }
  }
  if (!found) {
    return Status::NotFound("no listed table contains variable '" + var + "'");
  }
  return best;
}

StatusOr<double> Catalog::Density(const std::string& table_name) const {
  MPFDB_ASSIGN_OR_RETURN(TablePtr table, GetTable(table_name));
  double domain_product = 1.0;
  for (const auto& var : table->schema().variables()) {
    MPFDB_ASSIGN_OR_RETURN(int64_t size, DomainSize(var));
    domain_product *= static_cast<double>(size);
  }
  if (domain_product <= 0) return 0.0;
  return static_cast<double>(table->NumRows()) / domain_product;
}

}  // namespace mpfdb
