#ifndef MPFDB_STORAGE_SCHEMA_H_
#define MPFDB_STORAGE_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/status.h"

namespace mpfdb {

// Value of a variable (non-measure) attribute. Variables are categorical:
// each variable has a domain size D registered in the Catalog, and values
// range over [0, D).
using VarValue = int32_t;

// Schema of a functional relation: an ordered list of variable attribute
// names plus one measure attribute. The functional dependency
// vars -> measure (Definition 1 of the paper) is an invariant enforced by
// Table and checked by fr::CheckFunctionalDependency.
class Schema {
 public:
  Schema() = default;
  Schema(std::vector<std::string> variables, std::string measure_name)
      : variables_(std::move(variables)), measure_name_(std::move(measure_name)) {}

  const std::vector<std::string>& variables() const { return variables_; }
  const std::string& measure_name() const { return measure_name_; }
  size_t arity() const { return variables_.size(); }

  // Index of `name` among the variables, or nullopt if absent.
  std::optional<size_t> IndexOf(const std::string& name) const;
  bool HasVariable(const std::string& name) const {
    return IndexOf(name).has_value();
  }

  // "(a, b, c; f)".
  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return variables_ == other.variables_ && measure_name_ == other.measure_name_;
  }

 private:
  std::vector<std::string> variables_;
  std::string measure_name_;
};

// Set-style helpers on variable-name lists (order-preserving where noted).
// Used pervasively by the algebra and the optimizers.
namespace varset {

// Union preserving the order of `a` then new names of `b`.
std::vector<std::string> Union(const std::vector<std::string>& a,
                               const std::vector<std::string>& b);
// Intersection in the order of `a`.
std::vector<std::string> Intersect(const std::vector<std::string>& a,
                                   const std::vector<std::string>& b);
// Elements of `a` not in `b`, in the order of `a`.
std::vector<std::string> Difference(const std::vector<std::string>& a,
                                    const std::vector<std::string>& b);
bool Contains(const std::vector<std::string>& set, const std::string& name);
// True if every element of `sub` appears in `super`.
bool IsSubset(const std::vector<std::string>& sub,
              const std::vector<std::string>& super);
// True if the two lists contain the same names, ignoring order.
bool SetEquals(const std::vector<std::string>& a,
               const std::vector<std::string>& b);

}  // namespace varset

}  // namespace mpfdb

#endif  // MPFDB_STORAGE_SCHEMA_H_
