#include "storage/mvcc.h"

#include <algorithm>

namespace mpfdb::mvcc {

std::atomic<int64_t>& MeasureChunk::LiveCounter() {
  static std::atomic<int64_t> counter{0};
  return counter;
}

VersionedColumn VersionedColumn::FromFlat(const double* data, size_t n) {
  VersionedColumn col;
  col.size_ = n;
  col.chunks_.reserve((n + MeasureChunk::kRows - 1) >> MeasureChunk::kShift);
  for (size_t start = 0; start < n; start += MeasureChunk::kRows) {
    auto chunk = std::make_shared<MeasureChunk>();
    const size_t len = std::min(MeasureChunk::kRows, n - start);
    std::copy(data + start, data + start + len, chunk->data);
    // Zero the tail so chunk contents are deterministic (and comparable).
    std::fill(chunk->data + len, chunk->data + MeasureChunk::kRows, 0.0);
    col.chunks_.push_back(std::move(chunk));
  }
  return col;
}

MeasureChunk& VersionedColumn::MutableChunk(size_t c) {
  if (chunks_[c].use_count() != 1) {
    chunks_[c] = std::make_shared<MeasureChunk>(*chunks_[c]);
  }
  return *chunks_[c];
}

void VersionedColumn::Set(size_t i, double value) {
  MutableChunk(i >> MeasureChunk::kShift).data[i & MeasureChunk::kMask] = value;
}

VersionedColumn VersionedColumn::WithUpdates(
    const std::vector<std::pair<size_t, double>>& updates) const {
  VersionedColumn next = *this;  // shares every chunk
  for (const auto& [i, value] : updates) next.Set(i, value);
  return next;
}

void VersionedColumn::Append(double value) {
  if ((size_ & MeasureChunk::kMask) == 0) {
    auto chunk = std::make_shared<MeasureChunk>();
    std::fill(chunk->data, chunk->data + MeasureChunk::kRows, 0.0);
    chunks_.push_back(std::move(chunk));
  }
  MutableChunk(size_ >> MeasureChunk::kShift)
      .data[size_ & MeasureChunk::kMask] = value;
  ++size_;
}

void VersionedColumn::ReadRange(size_t start, size_t n, double* out) const {
  size_t i = start;
  const size_t end = start + n;
  while (i < end) {
    const size_t c = i >> MeasureChunk::kShift;
    const size_t off = i & MeasureChunk::kMask;
    const size_t len = std::min(MeasureChunk::kRows - off, end - i);
    std::copy(chunks_[c]->data + off, chunks_[c]->data + off + len,
              out + (i - start));
    i += len;
  }
}

std::vector<double> VersionedColumn::ToFlat() const {
  std::vector<double> flat(size_);
  if (size_ > 0) ReadRange(0, size_, flat.data());
  return flat;
}

size_t VersionedColumn::SharedChunksWith(const VersionedColumn& other) const {
  const size_t n = std::min(chunks_.size(), other.chunks_.size());
  size_t shared = 0;
  for (size_t c = 0; c < n; ++c) {
    if (chunks_[c] == other.chunks_[c]) ++shared;
  }
  return shared;
}

}  // namespace mpfdb::mvcc
