#include "storage/table.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace mpfdb {

Status Table::SetKeyVars(std::vector<std::string> key_vars) {
  for (const auto& var : key_vars) {
    if (!schema_.HasVariable(var)) {
      return Status::InvalidArgument("key variable '" + var +
                                     "' not in schema of table " + name_);
    }
  }
  key_vars_ = std::move(key_vars);
  return Status::Ok();
}

std::vector<VarValue>& Table::MutableVars() {
  if (var_data_.use_count() != 1) {
    var_data_ = std::make_shared<std::vector<VarValue>>(*var_data_);
  }
  return *var_data_;
}

void Table::EnsureFlat() {
  if (!chunked_) return;
  measures_ = vmeasures_.ToFlat();
  vmeasures_ = mvcc::VersionedColumn();
  chunked_ = false;
}

void Table::SealChunked() {
  if (chunked_) return;
  vmeasures_ = mvcc::VersionedColumn::FromFlat(measures_.data(),
                                               measures_.size());
  measures_.clear();
  measures_.shrink_to_fit();
  chunked_ = true;
}

void Table::AppendRow(const std::vector<VarValue>& vars, double measure) {
  EnsureFlat();
  auto& vd = MutableVars();
  vd.insert(vd.end(), vars.begin(), vars.end());
  measures_.push_back(measure);
}

void Table::AppendRowRaw(const VarValue* vars, double measure) {
  EnsureFlat();
  auto& vd = MutableVars();
  vd.insert(vd.end(), vars, vars + schema_.arity());
  measures_.push_back(measure);
}

void Table::Reserve(size_t n) {
  MutableVars().reserve(n * schema_.arity());
  if (!chunked_) measures_.reserve(n);
}

void Table::ReadRangeColumnar(size_t start, size_t n, size_t col_stride,
                              VarValue* cols_out,
                              double* measures_out) const {
  const size_t arity = schema_.arity();
  const VarValue* src = var_data_->data() + start * arity;
  for (size_t c = 0; c < arity; ++c) {
    VarValue* out = cols_out + c * col_stride;
    const VarValue* in = src + c;
    for (size_t r = 0; r < n; ++r) out[r] = in[r * arity];
  }
  if (chunked_) {
    vmeasures_.ReadRange(start, n, measures_out);
  } else {
    std::copy(measures_.begin() + static_cast<ptrdiff_t>(start),
              measures_.begin() + static_cast<ptrdiff_t>(start + n),
              measures_out);
  }
}

void Table::SortByVariables(const std::vector<size_t>& key_indices) {
  EnsureFlat();
  const size_t n = NumRows();
  const size_t arity = schema_.arity();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const VarValue* data = var_data_->data();
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const VarValue* ra = data + a * arity;
    const VarValue* rb = data + b * arity;
    for (size_t k : key_indices) {
      if (ra[k] != rb[k]) return ra[k] < rb[k];
    }
    return false;
  });
  std::vector<VarValue> new_vars(var_data_->size());
  std::vector<double> new_measures(n);
  for (size_t i = 0; i < n; ++i) {
    const VarValue* src = data + order[i] * arity;
    std::copy(src, src + arity, new_vars.begin() + i * arity);
    new_measures[i] = measures_[order[i]];
  }
  var_data_ = std::make_shared<std::vector<VarValue>>(std::move(new_vars));
  measures_ = std::move(new_measures);
}

std::unique_ptr<Table> Table::Clone(const std::string& new_name) const {
  auto copy = std::make_unique<Table>(new_name, schema_);
  copy->key_vars_ = key_vars_;
  copy->var_data_ = var_data_;
  copy->measures_ = measures_;
  copy->vmeasures_ = vmeasures_;
  copy->chunked_ = chunked_;
  return copy;
}

std::unique_ptr<Table> Table::CloneRenamed(
    const std::string& new_name, std::vector<std::string> new_vars) const {
  assert(new_vars.size() == schema_.arity());
  auto copy = std::make_unique<Table>(
      new_name, Schema(std::move(new_vars), schema_.measure_name()));
  copy->var_data_ = var_data_;
  copy->measures_ = measures_;
  copy->vmeasures_ = vmeasures_;
  copy->chunked_ = chunked_;
  return copy;
}

std::shared_ptr<Table> Table::WithMeasureUpdates(
    const std::vector<std::pair<size_t, double>>& updates,
    const std::string& new_name) const {
  auto next = std::make_shared<Table>(new_name, schema_);
  next->key_vars_ = key_vars_;
  next->var_data_ = var_data_;
  next->chunked_ = true;
  if (chunked_) {
    next->vmeasures_ = vmeasures_.WithUpdates(updates);
  } else {
    next->vmeasures_ =
        mvcc::VersionedColumn::FromFlat(measures_.data(), measures_.size())
            .WithUpdates(updates);
  }
  return next;
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << name_ << " " << schema_.ToString() << " [" << NumRows() << " rows]\n";
  const size_t shown = std::min(max_rows, NumRows());
  for (size_t i = 0; i < shown; ++i) {
    RowView row = Row(i);
    os << "  (";
    for (size_t j = 0; j < row.arity; ++j) {
      if (j > 0) os << ", ";
      os << row.var(j);
    }
    os << "; " << row.measure << ")\n";
  }
  if (shown < NumRows()) {
    os << "  ... " << (NumRows() - shown) << " more rows\n";
  }
  return os.str();
}

}  // namespace mpfdb
