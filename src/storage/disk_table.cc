#include "storage/disk_table.h"

#include <cstring>
#include <vector>

#include "util/fault_injector.h"

namespace mpfdb {
namespace {

constexpr uint32_t kMagic = 0x4D504644;  // "MPFD"

// Byte cursor over the header page.
class Writer {
 public:
  explicit Writer(std::byte* data) : data_(data) {}

  Status U32(uint32_t v) { return Raw(&v, sizeof(v)); }
  Status U64(uint64_t v) { return Raw(&v, sizeof(v)); }
  Status Str(const std::string& s) {
    MPFDB_RETURN_IF_ERROR(U32(static_cast<uint32_t>(s.size())));
    return Raw(s.data(), s.size());
  }

 private:
  Status Raw(const void* src, size_t n) {
    if (offset_ + n > kPageSize) {
      return Status::InvalidArgument("schema too large for the header page");
    }
    std::memcpy(data_ + offset_, src, n);
    offset_ += n;
    return Status::Ok();
  }

  std::byte* data_;
  size_t offset_ = 0;
};

class Reader {
 public:
  explicit Reader(const std::byte* data) : data_(data) {}

  StatusOr<uint32_t> U32() {
    uint32_t v;
    MPFDB_RETURN_IF_ERROR(Raw(&v, sizeof(v)));
    return v;
  }
  StatusOr<uint64_t> U64() {
    uint64_t v;
    MPFDB_RETURN_IF_ERROR(Raw(&v, sizeof(v)));
    return v;
  }
  StatusOr<std::string> Str() {
    MPFDB_ASSIGN_OR_RETURN(uint32_t size, U32());
    if (size > kPageSize) {
      return Status::InvalidArgument("corrupt header string length");
    }
    std::string s(size, '\0');
    MPFDB_RETURN_IF_ERROR(Raw(s.data(), size));
    return s;
  }

 private:
  Status Raw(void* dst, size_t n) {
    if (offset_ + n > kPageSize) {
      return Status::InvalidArgument("truncated header page");
    }
    std::memcpy(dst, data_ + offset_, n);
    offset_ += n;
    return Status::Ok();
  }

  const std::byte* data_;
  size_t offset_ = 0;
};

std::string BaseName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = name.find_last_of('.');
  return dot == std::string::npos ? name : name.substr(0, dot);
}

}  // namespace

Status DiskTable::Write(const Table& table, const std::string& path) {
  MPFDB_RETURN_IF_ERROR(FaultInjector::MaybeFail("DiskTable::Write"));
  MPFDB_ASSIGN_OR_RETURN(std::unique_ptr<PagedFile> file,
                         PagedFile::Create(path));
  // Header page.
  std::vector<std::byte> buffer(kPageSize, std::byte{0});
  Writer writer(buffer.data());
  MPFDB_RETURN_IF_ERROR(writer.U32(kMagic));
  MPFDB_RETURN_IF_ERROR(
      writer.U32(static_cast<uint32_t>(table.schema().arity())));
  MPFDB_RETURN_IF_ERROR(writer.U64(table.NumRows()));
  MPFDB_RETURN_IF_ERROR(writer.Str(table.schema().measure_name()));
  for (const auto& var : table.schema().variables()) {
    MPFDB_RETURN_IF_ERROR(writer.Str(var));
  }
  MPFDB_RETURN_IF_ERROR(
      writer.U32(static_cast<uint32_t>(table.key_vars().size())));
  for (const auto& var : table.key_vars()) {
    MPFDB_RETURN_IF_ERROR(writer.Str(var));
  }
  MPFDB_ASSIGN_OR_RETURN(uint32_t header_id, file->AllocatePage());
  MPFDB_RETURN_IF_ERROR(file->WritePage(header_id, buffer.data()));

  // Data pages.
  const size_t arity = table.schema().arity();
  const size_t per_page = DataPage::RowCapacity(arity);
  size_t row = 0;
  while (row < table.NumRows()) {
    std::fill(buffer.begin(), buffer.end(), std::byte{0});
    DataPage page(buffer.data());
    size_t in_page = std::min(per_page, table.NumRows() - row);
    page.set_row_count(static_cast<uint32_t>(in_page));
    for (size_t slot = 0; slot < in_page; ++slot) {
      RowView view = table.Row(row + slot);
      page.WriteRow(slot, arity, view.vars, view.measure);
    }
    MPFDB_ASSIGN_OR_RETURN(uint32_t id, file->AllocatePage());
    MPFDB_RETURN_IF_ERROR(file->WritePage(id, buffer.data()));
    row += in_page;
  }
  return Status::Ok();
}

StatusOr<std::unique_ptr<DiskTable>> DiskTable::Open(const std::string& path,
                                                     size_t pool_pages) {
  MPFDB_RETURN_IF_ERROR(FaultInjector::MaybeFail("DiskTable::Open"));
  MPFDB_ASSIGN_OR_RETURN(std::unique_ptr<PagedFile> file, PagedFile::Open(path));
  if (file->page_count() == 0) {
    return Status::InvalidArgument("'" + path + "' has no header page");
  }
  std::vector<std::byte> buffer(kPageSize);
  MPFDB_RETURN_IF_ERROR(file->ReadPage(0, buffer.data()));
  Reader reader(buffer.data());
  MPFDB_ASSIGN_OR_RETURN(uint32_t magic, reader.U32());
  if (magic != kMagic) {
    return Status::InvalidArgument("'" + path + "' is not a DiskTable file");
  }
  MPFDB_ASSIGN_OR_RETURN(uint32_t arity, reader.U32());
  MPFDB_ASSIGN_OR_RETURN(uint64_t row_count, reader.U64());
  MPFDB_ASSIGN_OR_RETURN(std::string measure_name, reader.Str());
  std::vector<std::string> vars;
  for (uint32_t i = 0; i < arity; ++i) {
    MPFDB_ASSIGN_OR_RETURN(std::string var, reader.Str());
    vars.push_back(std::move(var));
  }
  MPFDB_ASSIGN_OR_RETURN(uint32_t num_keys, reader.U32());
  std::vector<std::string> keys;
  for (uint32_t i = 0; i < num_keys; ++i) {
    MPFDB_ASSIGN_OR_RETURN(std::string key, reader.Str());
    keys.push_back(std::move(key));
  }

  std::unique_ptr<DiskTable> table(new DiskTable());
  table->name_ = BaseName(path);
  table->schema_ = Schema(std::move(vars), std::move(measure_name));
  table->key_vars_ = std::move(keys);
  table->row_count_ = row_count;
  table->rows_per_page_ = DataPage::RowCapacity(arity);
  table->file_ = std::move(file);
  table->pool_ = std::make_unique<BufferPool>(table->file_.get(), pool_pages);

  // Sanity: enough data pages for the declared rows.
  uint64_t needed_pages =
      row_count == 0 ? 0
                     : (row_count + table->rows_per_page_ - 1) /
                           table->rows_per_page_;
  if (table->file_->page_count() < needed_pages + 1) {
    return Status::InvalidArgument("'" + path + "' is truncated");
  }
  return table;
}

Status DiskTable::ReadRow(uint64_t index, std::vector<VarValue>* vars,
                          double* measure) {
  if (index >= row_count_) {
    return Status::OutOfRange("row " + std::to_string(index) + " beyond " +
                              std::to_string(row_count_));
  }
  uint32_t page_id = static_cast<uint32_t>(1 + index / rows_per_page_);
  size_t slot = static_cast<size_t>(index % rows_per_page_);
  std::lock_guard<std::mutex> lock(io_mu_);
  auto data_or = pool_->FetchPage(page_id);
  if (!data_or.ok()) {
    return Annotate(data_or.status(), "DiskTable '" + name_ + "': ReadRow");
  }
  std::byte* data = *data_or;
  DataPage page(data);
  vars->resize(schema_.arity());
  page.ReadRow(slot, schema_.arity(), vars->data(), measure);
  return pool_->Unpin(page_id, /*dirty=*/false);
}

Status DiskTable::ReadRange(uint64_t start, size_t n, VarValue* vars_out,
                            double* measures_out) {
  if (start + n > row_count_) {
    return Status::OutOfRange("rows [" + std::to_string(start) + ", " +
                              std::to_string(start + n) + ") beyond " +
                              std::to_string(row_count_));
  }
  const size_t arity = schema_.arity();
  uint64_t row = start;
  size_t done = 0;
  std::lock_guard<std::mutex> lock(io_mu_);
  while (done < n) {
    uint32_t page_id = static_cast<uint32_t>(1 + row / rows_per_page_);
    size_t slot = static_cast<size_t>(row % rows_per_page_);
    size_t in_page = std::min(rows_per_page_ - slot, n - done);
    auto data_or = pool_->FetchPage(page_id);
    if (!data_or.ok()) {
      return Annotate(data_or.status(), "DiskTable '" + name_ + "': ReadRange");
    }
    std::byte* data = *data_or;
    DataPage page(data);
    for (size_t i = 0; i < in_page; ++i) {
      page.ReadRow(slot + i, arity, vars_out + (done + i) * arity,
                   measures_out + done + i);
    }
    MPFDB_RETURN_IF_ERROR(pool_->Unpin(page_id, /*dirty=*/false));
    done += in_page;
    row += in_page;
  }
  return Status::Ok();
}

StatusOr<TablePtr> DiskTable::ReadAll(const std::string& table_name) {
  auto result = std::make_shared<Table>(table_name, schema_);
  if (!key_vars_.empty()) {
    MPFDB_RETURN_IF_ERROR(result->SetKeyVars(key_vars_));
  }
  result->Reserve(static_cast<size_t>(row_count_));
  std::vector<VarValue> vars(schema_.arity());
  double measure = 0;
  uint64_t row = 0;
  std::lock_guard<std::mutex> lock(io_mu_);
  const uint64_t total_pages =
      row_count_ == 0 ? 0 : (row_count_ + rows_per_page_ - 1) / rows_per_page_;
  for (uint64_t p = 0; p < total_pages; ++p) {
    uint32_t page_id = static_cast<uint32_t>(1 + p);
    MPFDB_ASSIGN_OR_RETURN(std::byte * data, pool_->FetchPage(page_id));
    DataPage page(data);
    for (uint32_t slot = 0; slot < page.row_count() && row < row_count_;
         ++slot, ++row) {
      page.ReadRow(slot, schema_.arity(), vars.data(), &measure);
      result->AppendRow(vars, measure);
    }
    MPFDB_RETURN_IF_ERROR(pool_->Unpin(page_id, /*dirty=*/false));
  }
  return result;
}

}  // namespace mpfdb
