#ifndef MPFDB_STORAGE_CSV_H_
#define MPFDB_STORAGE_CSV_H_

#include <memory>
#include <string>

#include "storage/table.h"
#include "util/status.h"

namespace mpfdb {

// Writes `table` to `path` as CSV with a header row naming the variable
// columns followed by the measure column.
Status WriteTableCsv(const Table& table, const std::string& path);

// Reads a table written by WriteTableCsv. The last header column becomes the
// measure; all other columns are variables with integer values.
StatusOr<std::unique_ptr<Table>> ReadTableCsv(const std::string& table_name,
                                              const std::string& path);

}  // namespace mpfdb

#endif  // MPFDB_STORAGE_CSV_H_
