#ifndef MPFDB_STORAGE_INDEX_H_
#define MPFDB_STORAGE_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/hash_table.h"
#include "storage/table.h"
#include "util/status.h"

namespace mpfdb {

// A hash index over one variable column of a table: value -> row indices.
// Built eagerly from a snapshot of the table; like any database index it
// must be rebuilt (or the table re-indexed) after bulk modifications —
// Catalog-registered base tables are immutable during query evaluation.
//
// Storage is two-tier. The build always goes through a Swiss table; when
// `build_mph` is set the distinct values are then frozen into a CHD
// minimal-perfect-hash function over dense payload arrays (one hash, one
// probe, no displacement scan — the value set never changes between catalog
// mutations, which is exactly when the index is rebuilt). If the MPH
// construction fails the Swiss table is kept as the lookup path.
class HashIndex {
 public:
  // Builds an index on `var` of `table`. `epoch` stamps the MPH so stale
  // handles are rejected if callers cache one across rebuilds.
  static StatusOr<std::unique_ptr<HashIndex>> Build(const Table& table,
                                                    const std::string& var,
                                                    bool build_mph = true,
                                                    uint64_t epoch = 0);

  const std::string& var() const { return var_; }
  size_t indexed_rows() const { return indexed_rows_; }

  // Row indices with var == value (empty vector if none).
  const std::vector<size_t>& Lookup(VarValue value) const;

  // The minimal-perfect-hash function backing lookups, or nullptr when the
  // index fell back to (or was asked to keep) the generic Swiss table.
  const exec::PerfectHashIndex* perfect() const {
    return mph_built_ ? &perfect_ : nullptr;
  }

 private:
  HashIndex(std::string var, size_t indexed_rows)
      : var_(std::move(var)), indexed_rows_(indexed_rows) {}

  static uint64_t KeyOf(VarValue value) {
    return static_cast<uint64_t>(static_cast<uint32_t>(value));
  }

  std::string var_;
  size_t indexed_rows_;
  uint64_t epoch_ = 0;
  // Generic path: live when the MPH was not built.
  exec::SwissTable<std::vector<size_t>> buckets_;
  // MPH path: perfect_ maps a value to its position in dense_rows_.
  bool mph_built_ = false;
  exec::PerfectHashIndex perfect_;
  std::vector<std::vector<size_t>> dense_rows_;
};

}  // namespace mpfdb

#endif  // MPFDB_STORAGE_INDEX_H_
