#ifndef MPFDB_STORAGE_INDEX_H_
#define MPFDB_STORAGE_INDEX_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/table.h"
#include "util/status.h"

namespace mpfdb {

// A hash index over one variable column of a table: value -> row indices.
// Built eagerly from a snapshot of the table; like any database index it
// must be rebuilt (or the table re-indexed) after bulk modifications —
// Catalog-registered base tables are immutable during query evaluation.
class HashIndex {
 public:
  // Builds an index on `var` of `table`.
  static StatusOr<std::unique_ptr<HashIndex>> Build(const Table& table,
                                                    const std::string& var);

  const std::string& var() const { return var_; }
  size_t indexed_rows() const { return indexed_rows_; }

  // Row indices with var == value (empty vector if none).
  const std::vector<size_t>& Lookup(VarValue value) const;

 private:
  HashIndex(std::string var, size_t indexed_rows)
      : var_(std::move(var)), indexed_rows_(indexed_rows) {}

  std::string var_;
  size_t indexed_rows_;
  std::unordered_map<VarValue, std::vector<size_t>> buckets_;
};

}  // namespace mpfdb

#endif  // MPFDB_STORAGE_INDEX_H_
