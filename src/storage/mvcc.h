#ifndef MPFDB_STORAGE_MVCC_H_
#define MPFDB_STORAGE_MVCC_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace mpfdb::mvcc {

// One fixed-size block of a persistent measure column. Chunks are immutable
// once published (shared between versions via shared_ptr); a version that
// changes k rows allocates only ceil-per-chunk copies of the touched chunks
// and shares the rest. The global live counter exists so tests can prove
// both structural sharing (a 100-version history allocates ~100 chunks, not
// 100 copies of the table) and garbage collection (releasing the last pin
// returns the count to its baseline).
struct MeasureChunk {
  static constexpr size_t kShift = 10;
  static constexpr size_t kRows = size_t{1} << kShift;  // 1024 doubles, 8 KiB
  static constexpr size_t kMask = kRows - 1;

  double data[kRows];

  MeasureChunk() { LiveCounter().fetch_add(1, std::memory_order_relaxed); }
  MeasureChunk(const MeasureChunk& other) {
    LiveCounter().fetch_add(1, std::memory_order_relaxed);
    for (size_t i = 0; i < kRows; ++i) data[i] = other.data[i];
  }
  MeasureChunk& operator=(const MeasureChunk&) = default;
  ~MeasureChunk() { LiveCounter().fetch_sub(1, std::memory_order_relaxed); }

  // Process-wide count of allocated chunks (the GC observability hook).
  static std::atomic<int64_t>& LiveCounter();
  static int64_t LiveCount() {
    return LiveCounter().load(std::memory_order_relaxed);
  }
};

// A persistent (persistent-vector style) column of doubles: an array of
// shared chunk pointers. Copying a VersionedColumn is O(chunks) pointer
// copies; writing through Set / WithUpdates copies only the chunks it
// touches (copy-on-write against any other version sharing them).
class VersionedColumn {
 public:
  VersionedColumn() = default;

  static VersionedColumn FromFlat(const double* data, size_t n);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t NumChunks() const { return chunks_.size(); }

  double Get(size_t i) const {
    return chunks_[i >> MeasureChunk::kShift]->data[i & MeasureChunk::kMask];
  }

  // In-place copy-on-write store: if the chunk is shared with another
  // version it is cloned first, so no other column ever observes the write.
  // Requires external synchronization on this column (the owning Table's
  // usual single-writer discipline).
  void Set(size_t i, double value);

  // A new column with the given (index, value) stores applied; untouched
  // chunks are shared with this version. `updates` need not be sorted;
  // later entries win on duplicate indices.
  VersionedColumn WithUpdates(
      const std::vector<std::pair<size_t, double>>& updates) const;

  // Appends one value (grows the tail chunk copy-on-write).
  void Append(double value);

  void ReadRange(size_t start, size_t n, double* out) const;
  std::vector<double> ToFlat() const;

  // Number of chunk pointers this column shares with `other` (position-wise
  // pointer equality) — the structural-sharing assertion tests use.
  size_t SharedChunksWith(const VersionedColumn& other) const;

 private:
  using ChunkPtr = std::shared_ptr<MeasureChunk>;
  // Returns a mutable reference to chunk c, cloning it first if shared.
  MeasureChunk& MutableChunk(size_t c);

  size_t size_ = 0;
  std::vector<ChunkPtr> chunks_;
};

}  // namespace mpfdb::mvcc

#endif  // MPFDB_STORAGE_MVCC_H_
