#include "storage/index.h"

namespace mpfdb {

StatusOr<std::unique_ptr<HashIndex>> HashIndex::Build(const Table& table,
                                                      const std::string& var) {
  auto idx = table.schema().IndexOf(var);
  if (!idx) {
    return Status::InvalidArgument("index variable '" + var +
                                   "' not in table " + table.name());
  }
  std::unique_ptr<HashIndex> index(new HashIndex(var, table.NumRows()));
  index->buckets_.reserve(table.NumRows());
  for (size_t i = 0; i < table.NumRows(); ++i) {
    index->buckets_[table.Row(i).var(*idx)].push_back(i);
  }
  return index;
}

const std::vector<size_t>& HashIndex::Lookup(VarValue value) const {
  static const std::vector<size_t>* empty = new std::vector<size_t>();
  auto it = buckets_.find(value);
  return it == buckets_.end() ? *empty : it->second;
}

}  // namespace mpfdb
