#include "storage/index.h"

#include <utility>

namespace mpfdb {

StatusOr<std::unique_ptr<HashIndex>> HashIndex::Build(const Table& table,
                                                      const std::string& var,
                                                      bool build_mph,
                                                      uint64_t epoch) {
  auto idx = table.schema().IndexOf(var);
  if (!idx) {
    return Status::InvalidArgument("index variable '" + var +
                                   "' not in table " + table.name());
  }
  std::unique_ptr<HashIndex> index(new HashIndex(var, table.NumRows()));
  index->epoch_ = epoch;
  index->buckets_.Reserve(table.NumRows());
  for (size_t i = 0; i < table.NumRows(); ++i) {
    index->buckets_.FindOrInsert(KeyOf(table.Row(i).var(*idx)), {})
        .first->push_back(i);
  }
  if (!build_mph) return index;

  // Freeze the distinct value set into a minimal perfect hash. The payload
  // vectors move out of the Swiss table into slots aligned with the build
  // key order (PerfectHashIndex::Lookup returns positions in that order).
  std::vector<uint64_t> keys;
  keys.reserve(index->buckets_.size());
  index->buckets_.ForEach(
      [&](uint64_t key, const std::vector<size_t>&) { keys.push_back(key); });
  if (!exec::PerfectHashIndex::Build(keys, epoch, &index->perfect_)) {
    return index;  // keep the Swiss table as the lookup path
  }
  index->dense_rows_.resize(keys.size());
  for (size_t k = 0; k < keys.size(); ++k) {
    index->dense_rows_[k] = std::move(*index->buckets_.Find(keys[k]));
  }
  index->buckets_ = exec::SwissTable<std::vector<size_t>>();
  index->mph_built_ = true;
  return index;
}

const std::vector<size_t>& HashIndex::Lookup(VarValue value) const {
  static const std::vector<size_t>* empty = new std::vector<size_t>();
  if (mph_built_) {
    const size_t pos = perfect_.Lookup(KeyOf(value), epoch_);
    return pos == exec::PerfectHashIndex::kNotFound ? *empty : dense_rows_[pos];
  }
  const std::vector<size_t>* rows = buckets_.Find(KeyOf(value));
  return rows == nullptr ? *empty : *rows;
}

}  // namespace mpfdb
