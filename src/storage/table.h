#ifndef MPFDB_STORAGE_TABLE_H_
#define MPFDB_STORAGE_TABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/schema.h"
#include "util/status.h"

namespace mpfdb {

// Lightweight view of one row of a Table: `vars` points at `arity`
// consecutive variable values; `measure` is the row's measure value. Valid
// only while the owning Table is alive and unmodified.
struct RowView {
  const VarValue* vars;
  size_t arity;
  double measure;

  VarValue var(size_t i) const { return vars[i]; }
};

// A functional relation instance: a flat row-major store of variable values
// plus a parallel measure column. This layout keeps 10^6-row tables cheap to
// scan and sort, which the experiment workloads need.
//
// Table does not itself enforce the functional dependency vars -> measure;
// operators that construct tables guarantee it, and
// fr::CheckFunctionalDependency verifies it in tests.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }

  // Optional declared primary key: a subset of the variables that
  // functionally determines the whole tuple. Empty means "no key known"
  // (beyond the trivial all-variables key every FR has). Used by
  // Proposition 1 to justify projection-based variable elimination.
  const std::vector<std::string>& key_vars() const { return key_vars_; }
  Status SetKeyVars(std::vector<std::string> key_vars);

  size_t NumRows() const { return measures_.size(); }
  bool Empty() const { return measures_.empty(); }

  // Appends a row; `vars` must have exactly schema().arity() values.
  void AppendRow(const std::vector<VarValue>& vars, double measure);
  // Appends a row from a raw pointer to schema().arity() values (used by
  // operators on flat data). Named distinctly from AppendRow because a
  // braced `{0}` argument would otherwise bind to this overload as a null
  // pointer constant.
  void AppendRowRaw(const VarValue* vars, double measure);

  RowView Row(size_t i) const {
    return RowView{var_data_.data() + i * schema_.arity(), schema_.arity(),
                   measures_[i]};
  }
  double measure(size_t i) const { return measures_[i]; }
  void set_measure(size_t i, double value) { measures_[i] = value; }

  // Pre-allocates storage for `n` rows.
  void Reserve(size_t n);

  // Batch readout for the vectorized executor: copies rows
  // [start, start + n) into caller-provided column buffers. `cols_out` must
  // hold arity() columns of `col_stride` values each (column-major, so
  // column c of row r lands at cols_out[c * col_stride + r - start]);
  // `measures_out` must hold n values. The caller guarantees
  // start + n <= NumRows() and n <= col_stride.
  void ReadRangeColumnar(size_t start, size_t n, size_t col_stride,
                         VarValue* cols_out, double* measures_out) const;

  // Sorts rows lexicographically by the variable columns listed in
  // `key_indices` (indices into the schema's variable list).
  void SortByVariables(const std::vector<size_t>& key_indices);

  // Deep copy with a new name.
  std::unique_ptr<Table> Clone(const std::string& new_name) const;

  // Multi-line human-readable dump (for examples and debugging); prints at
  // most `max_rows` rows.
  std::string ToString(size_t max_rows = 20) const;

  // Raw columns, exposed for the executor's tight loops.
  const std::vector<VarValue>& var_data() const { return var_data_; }
  const std::vector<double>& measures() const { return measures_; }

 private:
  std::string name_;
  Schema schema_;
  std::vector<std::string> key_vars_;
  std::vector<VarValue> var_data_;  // row-major, stride = schema_.arity()
  std::vector<double> measures_;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace mpfdb

#endif  // MPFDB_STORAGE_TABLE_H_
