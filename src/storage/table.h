#ifndef MPFDB_STORAGE_TABLE_H_
#define MPFDB_STORAGE_TABLE_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "storage/mvcc.h"
#include "storage/schema.h"
#include "util/status.h"

namespace mpfdb {

// Lightweight view of one row of a Table: `vars` points at `arity`
// consecutive variable values; `measure` is the row's measure value. Valid
// only while the owning Table is alive and unmodified.
struct RowView {
  const VarValue* vars;
  size_t arity;
  double measure;

  VarValue var(size_t i) const { return vars[i]; }
};

// A functional relation instance: a flat row-major store of variable values
// plus a parallel measure column. This layout keeps 10^6-row tables cheap to
// scan and sort, which the experiment workloads need.
//
// Storage is multi-version-friendly:
//  * The variable block is held behind a shared_ptr and copy-on-write: a
//    Clone shares it, and only mutators (append/sort) that find it shared
//    copy it. Measure updates never touch it, so every version of a table
//    shares one variable block.
//  * The measure column has two modes. Freshly built tables use a flat
//    std::vector<double> (cheapest to append and scan). SealChunked()
//    converts it to an mvcc::VersionedColumn of shared 1 KiB-row chunks;
//    from then on Clone and WithMeasureUpdates are O(touched chunks), which
//    is what makes high-rate measure updates cheap (a new version shares
//    every unchanged chunk with its predecessor).
//
// Table does not itself enforce the functional dependency vars -> measure;
// operators that construct tables guarantee it, and
// fr::CheckFunctionalDependency verifies it in tests.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        var_data_(std::make_shared<std::vector<VarValue>>()) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }

  // Optional declared primary key: a subset of the variables that
  // functionally determines the whole tuple. Empty means "no key known"
  // (beyond the trivial all-variables key every FR has). Used by
  // Proposition 1 to justify projection-based variable elimination.
  const std::vector<std::string>& key_vars() const { return key_vars_; }
  Status SetKeyVars(std::vector<std::string> key_vars);

  size_t NumRows() const {
    return chunked_ ? vmeasures_.size() : measures_.size();
  }
  bool Empty() const { return NumRows() == 0; }

  // Appends a row; `vars` must have exactly schema().arity() values.
  void AppendRow(const std::vector<VarValue>& vars, double measure);
  // Appends a row from a raw pointer to schema().arity() values (used by
  // operators on flat data). Named distinctly from AppendRow because a
  // braced `{0}` argument would otherwise bind to this overload as a null
  // pointer constant.
  void AppendRowRaw(const VarValue* vars, double measure);

  RowView Row(size_t i) const {
    return RowView{var_data_->data() + i * schema_.arity(), schema_.arity(),
                   chunked_ ? vmeasures_.Get(i) : measures_[i]};
  }
  double measure(size_t i) const {
    return chunked_ ? vmeasures_.Get(i) : measures_[i];
  }
  // In-place store. On a chunked table this is copy-on-write at chunk
  // granularity: versions sharing the chunk are unaffected.
  void set_measure(size_t i, double value) {
    if (chunked_) {
      vmeasures_.Set(i, value);
    } else {
      measures_[i] = value;
    }
  }

  // Pre-allocates storage for `n` rows.
  void Reserve(size_t n);

  // Batch readout for the vectorized executor: copies rows
  // [start, start + n) into caller-provided column buffers. `cols_out` must
  // hold arity() columns of `col_stride` values each (column-major, so
  // column c of row r lands at cols_out[c * col_stride + r - start]);
  // `measures_out` must hold n values. The caller guarantees
  // start + n <= NumRows() and n <= col_stride.
  void ReadRangeColumnar(size_t start, size_t n, size_t col_stride,
                         VarValue* cols_out, double* measures_out) const;

  // Sorts rows lexicographically by the variable columns listed in
  // `key_indices` (indices into the schema's variable list).
  void SortByVariables(const std::vector<size_t>& key_indices);

  // Copy with a new name. Shares the variable block always, and the measure
  // chunks when this table is chunked — O(chunks) rather than O(rows). A
  // flat table's measures are deep-copied. Either way the copy has value
  // semantics: writes through it never reach this table.
  std::unique_ptr<Table> Clone(const std::string& new_name) const;

  // Clone with the variable columns renamed positionally (`new_vars` must
  // have schema().arity() names). Same sharing as Clone — the dissociation
  // pass uses this to rebuild a factor over split-variable copies without
  // touching row data. Declared key variables are dropped (their names no
  // longer apply).
  std::unique_ptr<Table> CloneRenamed(const std::string& new_name,
                                      std::vector<std::string> new_vars) const;

  // --- Multi-version measure storage ---

  bool chunked() const { return chunked_; }
  // Converts the flat measure vector into shared chunks (idempotent). Call
  // once a table's row set is final and it is about to be published for
  // versioned updates; afterwards Clone / WithMeasureUpdates share chunks.
  void SealChunked();

  // A new version of this table with the given (row, measure) stores
  // applied: shares the variable block and every untouched measure chunk.
  // Seals a flat table's measures on the way (one O(rows) conversion, after
  // which every version step is O(touched chunks)).
  std::shared_ptr<Table> WithMeasureUpdates(
      const std::vector<std::pair<size_t, double>>& updates,
      const std::string& new_name) const;

  // True if both tables share the same underlying variable block (the
  // measure-update fast path; Catalog::ReplaceTable keeps indexes alive on
  // this evidence).
  bool SharesVarDataWith(const Table& other) const {
    return var_data_ == other.var_data_;
  }
  // Number of measure chunks this table shares with `other` (0 unless both
  // are chunked) — structural-sharing assertions in the MVCC tests.
  size_t SharedMeasureChunksWith(const Table& other) const {
    return (chunked_ && other.chunked_)
               ? vmeasures_.SharedChunksWith(other.vmeasures_)
               : 0;
  }
  size_t NumMeasureChunks() const {
    return chunked_ ? vmeasures_.NumChunks() : 0;
  }

  // Multi-line human-readable dump (for examples and debugging); prints at
  // most `max_rows` rows.
  std::string ToString(size_t max_rows = 20) const;

  // Raw columns, exposed for the executor's tight loops.
  const std::vector<VarValue>& var_data() const { return *var_data_; }
  // Flat measure vector; only valid on a non-chunked table (the executor
  // and tests that use it operate on freshly built results, which are
  // always flat). Use MeasuresFlat() for a mode-independent copy.
  const std::vector<double>& measures() const {
    assert(!chunked_);
    return measures_;
  }
  std::vector<double> MeasuresFlat() const {
    return chunked_ ? vmeasures_.ToFlat() : measures_;
  }

 private:
  // Copy-if-shared accessor for the variable block (callers mutate rows).
  std::vector<VarValue>& MutableVars();
  // Drops chunked mode, restoring the flat vector (used by the rare
  // structural mutators — append/sort — applied to a sealed table).
  void EnsureFlat();

  std::string name_;
  Schema schema_;
  std::vector<std::string> key_vars_;
  // Row-major, stride = schema_.arity(); shared copy-on-write across
  // versions/clones (measure updates never copy it).
  std::shared_ptr<std::vector<VarValue>> var_data_;
  std::vector<double> measures_;      // flat mode (chunked_ == false)
  mvcc::VersionedColumn vmeasures_;   // chunked mode (chunked_ == true)
  bool chunked_ = false;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace mpfdb

#endif  // MPFDB_STORAGE_TABLE_H_
