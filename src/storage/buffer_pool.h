#ifndef MPFDB_STORAGE_BUFFER_POOL_H_
#define MPFDB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/paged_file.h"
#include "util/status.h"

namespace mpfdb {

// An LRU buffer pool over one PagedFile: a fixed number of in-memory frames,
// pin/unpin protocol, dirty-page writeback on eviction. The hit/miss
// statistics are what the ablation bench checks against PageCostModel's
// assumptions.
class BufferPool {
 public:
  // `file` must outlive the pool. capacity_pages >= 1.
  BufferPool(PagedFile* file, size_t capacity_pages);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Returns a pinned pointer to the page's frame. The pointer stays valid
  // until the matching Unpin. Fails if every frame is pinned.
  StatusOr<std::byte*> FetchPage(uint32_t page_id);
  // Releases a pin; `dirty` marks the frame for writeback.
  Status Unpin(uint32_t page_id, bool dirty);

  // Writes back every dirty frame (pages stay cached).
  Status FlushAll();

  size_t capacity() const { return frames_.size(); }

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t writebacks = 0;
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

 private:
  struct Frame {
    std::unique_ptr<std::byte[]> data;
    uint32_t page_id = 0;
    bool occupied = false;
    bool dirty = false;
    int pin_count = 0;
    uint64_t last_used = 0;
  };

  // Picks a victim frame (unoccupied, or LRU among unpinned), writing back
  // if dirty. Returns the frame index or an error if all frames are pinned.
  StatusOr<size_t> FindVictim();

  PagedFile* file_;
  std::vector<Frame> frames_;
  std::unordered_map<uint32_t, size_t> page_to_frame_;
  uint64_t tick_ = 0;
  Stats stats_;
};

}  // namespace mpfdb

#endif  // MPFDB_STORAGE_BUFFER_POOL_H_
