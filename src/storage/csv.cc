#include "storage/csv.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/strings.h"

namespace mpfdb {

namespace {

// Position-stamped parse error, e.g. "line 7 of data.csv: bad measure ...".
Status ParseError(size_t line_number, const std::string& path,
                  const std::string& what) {
  return Status::InvalidArgument("line " + std::to_string(line_number) +
                                 " of " + path + ": " + what);
}

// True if `end` (the strtol/strtod stop position) consumed the whole field
// up to trailing whitespace. Rejects trailing garbage like "12abc".
bool ConsumedField(const std::string& field, const char* end) {
  if (end == field.c_str()) return false;
  for (const char* p = end; *p != '\0'; ++p) {
    if (!std::isspace(static_cast<unsigned char>(*p))) return false;
  }
  return true;
}

}  // namespace

Status WriteTableCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot open '" + path + "' for writing: " +
                            std::strerror(errno));
  }
  // Round-trip-exact doubles.
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  const Schema& schema = table.schema();
  for (size_t i = 0; i < schema.arity(); ++i) {
    out << schema.variables()[i] << ",";
  }
  out << schema.measure_name() << "\n";
  for (size_t i = 0; i < table.NumRows(); ++i) {
    RowView row = table.Row(i);
    for (size_t j = 0; j < row.arity; ++j) {
      out << row.var(j) << ",";
    }
    out << row.measure << "\n";
  }
  if (!out) {
    return Status::Internal("write to '" + path + "' failed");
  }
  return Status::Ok();
}

StatusOr<std::unique_ptr<Table>> ReadTableCsv(const std::string& table_name,
                                              const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "': " +
                            std::strerror(errno));
  }
  std::string header;
  if (!std::getline(in, header)) {
    return Status::InvalidArgument("empty CSV file: " + path);
  }
  std::vector<std::string> columns = Split(header, ',');
  if (columns.empty()) {
    return Status::InvalidArgument("CSV header has no columns: " + path);
  }
  std::string measure_name = columns.back();
  columns.pop_back();
  auto table = std::make_unique<Table>(
      table_name, Schema(columns, std::move(measure_name)));

  std::string line;
  std::vector<VarValue> vars(columns.size());
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (StripWhitespace(line).empty()) continue;
    std::vector<std::string> fields = Split(line, ',');
    if (fields.size() != columns.size() + 1) {
      return ParseError(line_number, path,
                        "expected " + std::to_string(columns.size() + 1) +
                            " fields, got " + std::to_string(fields.size()));
    }
    for (size_t i = 0; i < columns.size(); ++i) {
      errno = 0;
      char* end = nullptr;
      long value = std::strtol(fields[i].c_str(), &end, 10);
      if (errno != 0 || !ConsumedField(fields[i], end)) {
        return ParseError(line_number, path,
                          "bad variable value '" + fields[i] +
                              "' in column '" + columns[i] + "'");
      }
      if (value < std::numeric_limits<VarValue>::min() ||
          value > std::numeric_limits<VarValue>::max()) {
        return ParseError(line_number, path,
                          "variable value '" + fields[i] + "' in column '" +
                              columns[i] + "' overflows 32 bits");
      }
      vars[i] = static_cast<VarValue>(value);
    }
    errno = 0;
    char* end = nullptr;
    double measure = std::strtod(fields.back().c_str(), &end);
    if (errno != 0 || !ConsumedField(fields.back(), end)) {
      return ParseError(line_number, path,
                        "bad measure value '" + fields.back() + "'");
    }
    if (std::isnan(measure)) {
      return ParseError(line_number, path,
                        "measure is NaN; measures must be numeric");
    }
    table->AppendRow(vars, measure);
  }
  return table;
}

}  // namespace mpfdb
