#ifndef MPFDB_STORAGE_PAGED_FILE_H_
#define MPFDB_STORAGE_PAGED_FILE_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>

#include "storage/page.h"
#include "util/status.h"

namespace mpfdb {

// A file of kPageSize pages with page-granular read/write and IO counters.
// Not thread-safe (one owner at a time, like the rest of the engine).
class PagedFile {
 public:
  // Creates (truncating) a new paged file.
  static StatusOr<std::unique_ptr<PagedFile>> Create(const std::string& path);
  // Opens an existing paged file; fails if the size is not page-aligned.
  static StatusOr<std::unique_ptr<PagedFile>> Open(const std::string& path);

  PagedFile(const PagedFile&) = delete;
  PagedFile& operator=(const PagedFile&) = delete;

  // Appends a zeroed page and returns its id.
  StatusOr<uint32_t> AllocatePage();

  // Appends a page with the given contents (kPageSize bytes) in a single
  // write, returning its id. Equivalent to AllocatePage + WritePage but
  // half the IO; used by the spill layer.
  StatusOr<uint32_t> AppendPage(const std::byte* data);

  // Reads page `id` into `out` (kPageSize bytes).
  Status ReadPage(uint32_t id, std::byte* out);
  // Writes kPageSize bytes over page `id`.
  Status WritePage(uint32_t id, const std::byte* data);

  uint32_t page_count() const { return page_count_; }
  const std::string& path() const { return path_; }

  struct Stats {
    uint64_t reads = 0;
    uint64_t writes = 0;
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

 private:
  PagedFile(std::string path, std::fstream stream, uint32_t page_count)
      : path_(std::move(path)),
        stream_(std::move(stream)),
        page_count_(page_count) {}

  std::string path_;
  std::fstream stream_;
  uint32_t page_count_;
  Stats stats_;
};

}  // namespace mpfdb

#endif  // MPFDB_STORAGE_PAGED_FILE_H_
