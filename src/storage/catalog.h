#ifndef MPFDB_STORAGE_CATALOG_H_
#define MPFDB_STORAGE_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/index.h"
#include "storage/table.h"
#include "util/status.h"

namespace mpfdb {

// System catalog: registered variables (with their categorical domain sizes)
// and base tables, plus the statistics the optimizers and the cost model
// read — exactly the statistics the paper notes are "readily available in
// the catalog of RDBMS systems" (Section 5.1).
class Catalog {
 public:
  Catalog() = default;

  // Registers a variable with domain [0, domain_size). Re-registering with
  // the same size is a no-op; with a different size it is an error.
  Status RegisterVariable(const std::string& name, int64_t domain_size);
  bool HasVariable(const std::string& name) const;
  // Domain size of a variable (σ_X in the paper). Error if unregistered.
  StatusOr<int64_t> DomainSize(const std::string& name) const;

  // Registers a table; all its schema variables must be registered first.
  Status RegisterTable(TablePtr table);
  // Swaps a new version of an already-registered table in under the same
  // name (copy-on-write updates: readers holding the old TablePtr keep a
  // consistent snapshot). The schema must be unchanged; any indexes on the
  // table are rebuilt against the new version.
  Status ReplaceTable(TablePtr table);
  Status DropTable(const std::string& name);
  bool HasTable(const std::string& name) const;
  StatusOr<TablePtr> GetTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  // Cardinality of a registered table.
  StatusOr<int64_t> Cardinality(const std::string& table_name) const;

  // Size of the smallest registered table among `table_names` that contains
  // variable `var` (σ̂_X in the linearity test, Eq. 1). Error if no listed
  // table contains the variable.
  StatusOr<int64_t> SmallestRelationWith(
      const std::string& var, const std::vector<std::string>& table_names) const;

  // Fraction of the cross product of variable domains that is populated:
  // |T| / Π σ_X. Complete functional relations have density 1.
  StatusOr<double> Density(const std::string& table_name) const;

  // Builds a hash index on one variable of a registered table, giving
  // equality selections an index-scan access path. Re-creating an existing
  // index rebuilds it. Indexes are dropped with their table.
  Status CreateIndex(const std::string& table_name, const std::string& var);
  // The index on (table, var), or nullptr if none exists.
  const HashIndex* GetIndex(const std::string& table_name,
                            const std::string& var) const;

 private:
  std::map<std::string, int64_t> variable_domains_;
  std::map<std::string, TablePtr> tables_;
  // (table, var) -> index. shared_ptr so copied catalogs (what-if scratch
  // catalogs) share immutable indexes.
  std::map<std::pair<std::string, std::string>, std::shared_ptr<HashIndex>>
      indexes_;
};

}  // namespace mpfdb

#endif  // MPFDB_STORAGE_CATALOG_H_
