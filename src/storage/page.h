#ifndef MPFDB_STORAGE_PAGE_H_
#define MPFDB_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "storage/schema.h"

namespace mpfdb {

// Fixed page size of the paged storage layer. The paper's setting is
// disk-resident functional relations; this layer gives the engine a real
// disk representation with page-granular IO accounting (matching what
// PageCostModel charges).
inline constexpr size_t kPageSize = 8192;

// View over one raw page holding fixed-arity rows:
//   [uint32 row_count][row 0][row 1]...
// where each row is `arity` int32 variable values followed by a double
// measure. The view does not own the buffer.
class DataPage {
 public:
  explicit DataPage(std::byte* data) : data_(data) {}

  static constexpr size_t RowBytes(size_t arity) {
    return arity * sizeof(VarValue) + sizeof(double);
  }
  // Rows that fit a page for the given arity (>= 1 for any sane arity).
  static constexpr size_t RowCapacity(size_t arity) {
    return (kPageSize - sizeof(uint32_t)) / RowBytes(arity);
  }

  uint32_t row_count() const {
    uint32_t count;
    std::memcpy(&count, data_, sizeof(count));
    return count;
  }
  void set_row_count(uint32_t count) {
    std::memcpy(data_, &count, sizeof(count));
  }

  void WriteRow(size_t slot, size_t arity, const VarValue* vars,
                double measure) {
    std::byte* row = RowPtr(slot, arity);
    // Zero-arity rows (scalar tables) may pass vars == nullptr; memcpy
    // forbids null even for size 0.
    if (arity > 0) std::memcpy(row, vars, arity * sizeof(VarValue));
    std::memcpy(row + arity * sizeof(VarValue), &measure, sizeof(measure));
  }

  void ReadRow(size_t slot, size_t arity, VarValue* vars,
               double* measure) const {
    const std::byte* row = RowPtr(slot, arity);
    if (arity > 0) std::memcpy(vars, row, arity * sizeof(VarValue));
    std::memcpy(measure, row + arity * sizeof(VarValue), sizeof(*measure));
  }

 private:
  std::byte* RowPtr(size_t slot, size_t arity) const {
    return data_ + sizeof(uint32_t) + slot * RowBytes(arity);
  }

  std::byte* data_;
};

}  // namespace mpfdb

#endif  // MPFDB_STORAGE_PAGE_H_
