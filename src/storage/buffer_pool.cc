#include "storage/buffer_pool.h"

#include <limits>

#include "util/fault_injector.h"

namespace mpfdb {

BufferPool::BufferPool(PagedFile* file, size_t capacity_pages) : file_(file) {
  frames_.resize(capacity_pages == 0 ? 1 : capacity_pages);
  for (Frame& frame : frames_) {
    frame.data = std::make_unique<std::byte[]>(kPageSize);
  }
}

BufferPool::~BufferPool() {
  // Best-effort writeback; errors surface on explicit FlushAll.
  (void)FlushAll();
}

StatusOr<std::byte*> BufferPool::FetchPage(uint32_t page_id) {
  MPFDB_RETURN_IF_ERROR(FaultInjector::MaybeFail("BufferPool::FetchPage"));
  ++tick_;
  auto it = page_to_frame_.find(page_id);
  if (it != page_to_frame_.end()) {
    Frame& frame = frames_[it->second];
    ++frame.pin_count;
    frame.last_used = tick_;
    ++stats_.hits;
    return frame.data.get();
  }
  ++stats_.misses;
  MPFDB_ASSIGN_OR_RETURN(size_t victim, FindVictim());
  Frame& frame = frames_[victim];
  MPFDB_RETURN_IF_ERROR(file_->ReadPage(page_id, frame.data.get()));
  frame.page_id = page_id;
  frame.occupied = true;
  frame.dirty = false;
  frame.pin_count = 1;
  frame.last_used = tick_;
  page_to_frame_[page_id] = victim;
  return frame.data.get();
}

Status BufferPool::Unpin(uint32_t page_id, bool dirty) {
  auto it = page_to_frame_.find(page_id);
  if (it == page_to_frame_.end()) {
    return Status::InvalidArgument("unpin of uncached page " +
                                   std::to_string(page_id));
  }
  Frame& frame = frames_[it->second];
  if (frame.pin_count <= 0) {
    return Status::FailedPrecondition("unpin of unpinned page " +
                                      std::to_string(page_id));
  }
  --frame.pin_count;
  frame.dirty = frame.dirty || dirty;
  return Status::Ok();
}

Status BufferPool::FlushAll() {
  for (Frame& frame : frames_) {
    if (frame.occupied && frame.dirty) {
      MPFDB_RETURN_IF_ERROR(file_->WritePage(frame.page_id, frame.data.get()));
      frame.dirty = false;
      ++stats_.writebacks;
    }
  }
  return Status::Ok();
}

StatusOr<size_t> BufferPool::FindVictim() {
  size_t victim = frames_.size();
  uint64_t oldest = std::numeric_limits<uint64_t>::max();
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& frame = frames_[i];
    if (!frame.occupied) return i;
    if (frame.pin_count == 0 && frame.last_used < oldest) {
      oldest = frame.last_used;
      victim = i;
    }
  }
  if (victim == frames_.size()) {
    size_t pinned = 0;
    for (const Frame& frame : frames_) {
      if (frame.pin_count > 0) ++pinned;
    }
    return Status::ResourceExhausted(
        "buffer pool exhausted: every frame is pinned (pinned=" +
        std::to_string(pinned) + "/total=" + std::to_string(frames_.size()) +
        "); Unpin a page to recover");
  }
  Frame& frame = frames_[victim];
  if (frame.dirty) {
    MPFDB_RETURN_IF_ERROR(file_->WritePage(frame.page_id, frame.data.get()));
    ++stats_.writebacks;
  }
  page_to_frame_.erase(frame.page_id);
  frame.occupied = false;
  ++stats_.evictions;
  return victim;
}

}  // namespace mpfdb
