#ifndef MPFDB_STORAGE_DISK_TABLE_H_
#define MPFDB_STORAGE_DISK_TABLE_H_

#include <memory>
#include <mutex>
#include <string>

#include "storage/buffer_pool.h"
#include "storage/table.h"
#include "util/status.h"

namespace mpfdb {

// A functional relation stored in a paged file: page 0 holds the schema
// header (magic, arity, row count, measure/variable/key names), data pages
// hold packed rows. Reads go through an LRU buffer pool, so scans and random
// row accesses incur the page IO the paper's disk-resident setting assumes
// (and PageCostModel charges).
class DiskTable {
 public:
  // Serializes `table` into a new paged file at `path`.
  static Status Write(const Table& table, const std::string& path);

  // Opens a paged file written by Write, with a buffer pool of
  // `pool_pages` frames.
  static StatusOr<std::unique_ptr<DiskTable>> Open(const std::string& path,
                                                   size_t pool_pages = 64);

  const Schema& schema() const { return schema_; }
  const std::vector<std::string>& key_vars() const { return key_vars_; }
  uint64_t NumRows() const { return row_count_; }
  const std::string& name() const { return name_; }

  // Random access to row `index` through the buffer pool. ReadRow/ReadRange/
  // ReadAll are safe to call from parallel scan workers: the buffer pool and
  // its LRU bookkeeping are not thread-safe, so each read serializes on an
  // internal mutex (the page decode inside the critical section is cheap
  // relative to the IO it fronts).
  Status ReadRow(uint64_t index, std::vector<VarValue>* vars,
                 double* measure);

  // Batch readout for the vectorized executor: reads rows [start, start + n)
  // page by page through the buffer pool into row-major `vars_out` (n *
  // arity values) and `measures_out` (n values), touching each data page
  // once instead of once per row.
  Status ReadRange(uint64_t start, size_t n, VarValue* vars_out,
                   double* measures_out);

  // Full scan into an in-memory Table.
  StatusOr<TablePtr> ReadAll(const std::string& table_name);

  BufferPool& buffer_pool() { return *pool_; }
  PagedFile& file() { return *file_; }

 private:
  DiskTable() = default;

  std::string name_;
  Schema schema_;
  std::vector<std::string> key_vars_;
  uint64_t row_count_ = 0;
  size_t rows_per_page_ = 0;
  std::unique_ptr<PagedFile> file_;
  std::unique_ptr<BufferPool> pool_;
  std::mutex io_mu_;  // serializes buffer-pool access across scan workers
};

}  // namespace mpfdb

#endif  // MPFDB_STORAGE_DISK_TABLE_H_
