#include "storage/schema.h"

#include <algorithm>

#include "util/strings.h"

namespace mpfdb {

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < variables_.size(); ++i) {
    if (variables_[i] == name) return i;
  }
  return std::nullopt;
}

std::string Schema::ToString() const {
  return "(" + Join(variables_, ", ") + "; " + measure_name_ + ")";
}

namespace varset {

std::vector<std::string> Union(const std::vector<std::string>& a,
                               const std::vector<std::string>& b) {
  std::vector<std::string> result = a;
  for (const auto& name : b) {
    if (!Contains(result, name)) result.push_back(name);
  }
  return result;
}

std::vector<std::string> Intersect(const std::vector<std::string>& a,
                                   const std::vector<std::string>& b) {
  std::vector<std::string> result;
  for (const auto& name : a) {
    if (Contains(b, name)) result.push_back(name);
  }
  return result;
}

std::vector<std::string> Difference(const std::vector<std::string>& a,
                                    const std::vector<std::string>& b) {
  std::vector<std::string> result;
  for (const auto& name : a) {
    if (!Contains(b, name)) result.push_back(name);
  }
  return result;
}

bool Contains(const std::vector<std::string>& set, const std::string& name) {
  return std::find(set.begin(), set.end(), name) != set.end();
}

bool IsSubset(const std::vector<std::string>& sub,
              const std::vector<std::string>& super) {
  for (const auto& name : sub) {
    if (!Contains(super, name)) return false;
  }
  return true;
}

bool SetEquals(const std::vector<std::string>& a,
               const std::vector<std::string>& b) {
  return IsSubset(a, b) && IsSubset(b, a);
}

}  // namespace varset

}  // namespace mpfdb
