#include "storage/paged_file.h"

#include <filesystem>
#include <vector>

#include "util/fault_injector.h"

namespace mpfdb {

StatusOr<std::unique_ptr<PagedFile>> PagedFile::Create(const std::string& path) {
  std::fstream stream(path, std::ios::binary | std::ios::in | std::ios::out |
                                std::ios::trunc);
  if (!stream) {
    return Status::Internal("cannot create paged file '" + path + "'");
  }
  return std::unique_ptr<PagedFile>(
      new PagedFile(path, std::move(stream), 0));
}

StatusOr<std::unique_ptr<PagedFile>> PagedFile::Open(const std::string& path) {
  std::error_code ec;
  auto size = std::filesystem::file_size(path, ec);
  if (ec) {
    return Status::NotFound("cannot stat paged file '" + path +
                            "': " + ec.message());
  }
  if (size % kPageSize != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not page-aligned; not a paged file");
  }
  std::fstream stream(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!stream) {
    return Status::Internal("cannot open paged file '" + path + "'");
  }
  return std::unique_ptr<PagedFile>(new PagedFile(
      path, std::move(stream), static_cast<uint32_t>(size / kPageSize)));
}

StatusOr<uint32_t> PagedFile::AllocatePage() {
  MPFDB_RETURN_IF_ERROR(FaultInjector::MaybeFail("PagedFile::AllocatePage"));
  std::vector<std::byte> zeros(kPageSize, std::byte{0});
  uint32_t id = page_count_;
  stream_.clear();
  stream_.seekp(static_cast<std::streamoff>(id) *
                static_cast<std::streamoff>(kPageSize));
  stream_.write(reinterpret_cast<const char*>(zeros.data()), kPageSize);
  if (!stream_) {
    return Status::Internal("page allocation failed in '" + path_ + "'");
  }
  ++page_count_;
  ++stats_.writes;
  return id;
}

StatusOr<uint32_t> PagedFile::AppendPage(const std::byte* data) {
  MPFDB_RETURN_IF_ERROR(FaultInjector::MaybeFail("PagedFile::AppendPage"));
  uint32_t id = page_count_;
  stream_.clear();
  stream_.seekp(static_cast<std::streamoff>(id) *
                static_cast<std::streamoff>(kPageSize));
  stream_.write(reinterpret_cast<const char*>(data), kPageSize);
  if (!stream_) {
    return Status::Internal("page append failed in '" + path_ + "'");
  }
  ++page_count_;
  ++stats_.writes;
  return id;
}

Status PagedFile::ReadPage(uint32_t id, std::byte* out) {
  MPFDB_RETURN_IF_ERROR(FaultInjector::MaybeFail("PagedFile::ReadPage"));
  if (id >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(id) + " beyond " +
                              std::to_string(page_count_) + " pages");
  }
  stream_.clear();
  stream_.seekg(static_cast<std::streamoff>(id) *
                static_cast<std::streamoff>(kPageSize));
  stream_.read(reinterpret_cast<char*>(out), kPageSize);
  if (!stream_) {
    return Status::Internal("page read failed in '" + path_ + "'");
  }
  ++stats_.reads;
  return Status::Ok();
}

Status PagedFile::WritePage(uint32_t id, const std::byte* data) {
  MPFDB_RETURN_IF_ERROR(FaultInjector::MaybeFail("PagedFile::WritePage"));
  if (id >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(id) + " beyond " +
                              std::to_string(page_count_) + " pages");
  }
  stream_.clear();
  stream_.seekp(static_cast<std::streamoff>(id) *
                static_cast<std::streamoff>(kPageSize));
  stream_.write(reinterpret_cast<const char*>(data), kPageSize);
  if (!stream_) {
    return Status::Internal("page write failed in '" + path_ + "'");
  }
  stream_.flush();
  ++stats_.writes;
  return Status::Ok();
}

}  // namespace mpfdb
