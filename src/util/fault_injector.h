#ifndef MPFDB_UTIL_FAULT_INJECTOR_H_
#define MPFDB_UTIL_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "util/status.h"

namespace mpfdb {

// Deterministic, seedable IO fault injection for robustness tests.
//
// The storage layer (PagedFile, BufferPool, DiskTable) calls
// FaultInjector::MaybeFail("PagedFile::ReadPage") at every IO site. When no
// injector is installed — the production configuration — the call is a null
// pointer check and nothing else. Tests install one with ScopedFaultInjection
// to fail either the Nth counted IO (`fail_nth`) or each IO independently
// with probability `probability` under a fixed seed, so a failing schedule
// can be replayed bit-for-bit from the seed alone.
//
// Injected failures are ordinary kInternal statuses: the point is to prove
// that every operator propagates them cleanly (no crash, no leak, no result
// silently truncated), not to model any particular device error.
//
// The socket layer (server/net) draws from the same injector through
// MaybeSocketFault, which models the failure modes a wire protocol must
// survive rather than a clean Status: short reads/writes, EINTR, connection
// resets, accept failures, and stalls. Socket faults use their own
// probability knob so a chaos soak can hammer the network paths without
// also failing every page read underneath it (or vice versa).
class FaultInjector {
 public:
  struct Config {
    uint64_t seed = 0;
    // Per-IO failure probability in [0, 1).
    double probability = 0.0;
    // If > 0, exactly the Nth IO (1-based) fails and later IOs succeed.
    uint64_t fail_nth = 0;
    // Per-socket-operation fault probability in [0, 1). Draws are
    // deterministic given the seed and the sequence of socket sites reached.
    double socket_probability = 0.0;
  };

  // What a socket operation should pretend happened. The net layer's
  // read/write/accept wrappers consult this before issuing the real syscall
  // and translate the verdict into the corresponding kernel behaviour.
  enum class SocketFault {
    kNone = 0,   // proceed normally
    kShort,      // transfer at most 1 byte this call (short read/write)
    kEintr,      // behave as if the syscall returned EINTR
    kReset,      // behave as if the peer reset the connection (ECONNRESET)
    kStall,      // sleep briefly before proceeding (slow peer / flaky link)
    kAcceptFail  // accept() failure: drop the pending connection
  };

  // Installs a process-global injector (replacing any previous one).
  static void Install(const Config& config);
  static void Uninstall();
  static bool active();

  // Returns an injected kInternal error if this IO should fail, naming the
  // site and the IO's global sequence number.
  static Status MaybeFail(const char* site);

  // Returns the fault (if any) to inject into this socket operation.
  // `site` names the call site ("net::Read", "net::Accept", ...); the
  // verdict is kNone whenever no injector is installed or
  // socket_probability is 0. Accept sites draw kAcceptFail where data sites
  // would draw kReset.
  static SocketFault MaybeSocketFault(const char* site, bool is_accept = false);

  // Total IOs observed since Install (failed or not).
  static uint64_t op_count();

 private:
  FaultInjector() = default;

  Config config_;
  // IOs from parallel workers interleave; the count is atomic and the RNG
  // state is mutex-guarded so every draw consumes exactly one state step.
  // (The op numbering itself then depends on the thread schedule — tests
  // that replay exact sequences run single-threaded.)
  std::atomic<uint64_t> ops_{0};
  std::mutex rng_mu_;
  uint64_t rng_state_ = 0;  // guarded by rng_mu_
};

// Installs a FaultInjector for the current scope; uninstalls on destruction.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultInjector::Config& config) {
    FaultInjector::Install(config);
  }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
  ~ScopedFaultInjection() { FaultInjector::Uninstall(); }
};

}  // namespace mpfdb

#endif  // MPFDB_UTIL_FAULT_INJECTOR_H_
