#ifndef MPFDB_UTIL_FAULT_INJECTOR_H_
#define MPFDB_UTIL_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "util/status.h"

namespace mpfdb {

// Deterministic, seedable IO fault injection for robustness tests.
//
// The storage layer (PagedFile, BufferPool, DiskTable) calls
// FaultInjector::MaybeFail("PagedFile::ReadPage") at every IO site. When no
// injector is installed — the production configuration — the call is a null
// pointer check and nothing else. Tests install one with ScopedFaultInjection
// to fail either the Nth counted IO (`fail_nth`) or each IO independently
// with probability `probability` under a fixed seed, so a failing schedule
// can be replayed bit-for-bit from the seed alone.
//
// Injected failures are ordinary kInternal statuses: the point is to prove
// that every operator propagates them cleanly (no crash, no leak, no result
// silently truncated), not to model any particular device error.
class FaultInjector {
 public:
  struct Config {
    uint64_t seed = 0;
    // Per-IO failure probability in [0, 1).
    double probability = 0.0;
    // If > 0, exactly the Nth IO (1-based) fails and later IOs succeed.
    uint64_t fail_nth = 0;
  };

  // Installs a process-global injector (replacing any previous one).
  static void Install(const Config& config);
  static void Uninstall();
  static bool active();

  // Returns an injected kInternal error if this IO should fail, naming the
  // site and the IO's global sequence number.
  static Status MaybeFail(const char* site);

  // Total IOs observed since Install (failed or not).
  static uint64_t op_count();

 private:
  FaultInjector() = default;

  Config config_;
  // IOs from parallel workers interleave; the count is atomic and the RNG
  // state is mutex-guarded so every draw consumes exactly one state step.
  // (The op numbering itself then depends on the thread schedule — tests
  // that replay exact sequences run single-threaded.)
  std::atomic<uint64_t> ops_{0};
  std::mutex rng_mu_;
  uint64_t rng_state_ = 0;  // guarded by rng_mu_
};

// Installs a FaultInjector for the current scope; uninstalls on destruction.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultInjector::Config& config) {
    FaultInjector::Install(config);
  }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
  ~ScopedFaultInjection() { FaultInjector::Uninstall(); }
};

}  // namespace mpfdb

#endif  // MPFDB_UTIL_FAULT_INJECTOR_H_
