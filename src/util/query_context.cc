#include "util/query_context.h"

#include <unistd.h>

#include <atomic>
#include <filesystem>

namespace mpfdb {

namespace {

uint64_t NextContextId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

QueryContext::QueryContext()
    : cancel_(std::make_shared<CancelToken>()), context_id_(NextContextId()) {
  std::error_code ec;
  auto tmp = std::filesystem::temp_directory_path(ec);
  spill_dir_ = ec ? "." : tmp.string();
}

Status QueryContext::Charge(size_t bytes, const char* who) {
  if (memory_limit_ > 0 && stats_.bytes_in_use + bytes > memory_limit_) {
    return Status::ResourceExhausted(
        std::string(who) + ": memory budget exceeded (requested " +
        std::to_string(bytes) + " bytes, in use " +
        std::to_string(stats_.bytes_in_use) + ", limit " +
        std::to_string(memory_limit_) + ")");
  }
  stats_.bytes_in_use += bytes;
  if (stats_.bytes_in_use > stats_.peak_bytes) {
    stats_.peak_bytes = stats_.bytes_in_use;
  }
  return Status::Ok();
}

void QueryContext::ChargeUnchecked(size_t bytes) {
  stats_.bytes_in_use += bytes;
  if (stats_.bytes_in_use > stats_.peak_bytes) {
    stats_.peak_bytes = stats_.bytes_in_use;
  }
}

void QueryContext::Release(size_t bytes) {
  stats_.bytes_in_use = bytes <= stats_.bytes_in_use
                            ? stats_.bytes_in_use - bytes
                            : 0;
}

std::string QueryContext::NextSpillPath() {
  std::filesystem::path dir(spill_dir_);
  // The PID keeps concurrent processes (parallel ctest, several CLIs over
  // one spill dir) from colliding: context_id_ is only process-unique.
  std::string name = "mpfdb-spill-" + std::to_string(::getpid()) + "-" +
                     std::to_string(context_id_) + "-" +
                     std::to_string(next_spill_id_++) + ".tmp";
  return (dir / name).string();
}

void QueryContext::RecordSpill(uint64_t rows, uint64_t bytes) {
  ++stats_.spill_files;
  stats_.spill_rows += rows;
  stats_.spill_bytes += bytes;
}

Status QueryContext::CheckDeadline() {
  if (std::chrono::steady_clock::now() >= deadline_) {
    sticky_ = Status::DeadlineExceeded("query deadline exceeded");
    return sticky_;
  }
  return Status::Ok();
}

}  // namespace mpfdb
