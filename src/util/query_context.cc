#include "util/query_context.h"

#include <unistd.h>

#include <atomic>
#include <filesystem>

namespace mpfdb {

namespace {

uint64_t NextContextId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

QueryContext::QueryContext()
    : cancel_(std::make_shared<CancelToken>()), context_id_(NextContextId()) {
  std::error_code ec;
  auto tmp = std::filesystem::temp_directory_path(ec);
  spill_dir_ = ec ? "." : tmp.string();
}

Status QueryContext::Charge(size_t bytes, const char* who) {
  // Compare-exchange against the limit so concurrent workers can never
  // jointly overshoot the budget: each reservation either fits at the
  // moment it lands or fails without charging anything.
  size_t in_use = bytes_in_use_.load(std::memory_order_relaxed);
  for (;;) {
    if (memory_limit_ > 0 && in_use + bytes > memory_limit_) {
      return Status::ResourceExhausted(
          std::string(who) + ": memory budget exceeded (requested " +
          std::to_string(bytes) + " bytes, in use " + std::to_string(in_use) +
          ", limit " + std::to_string(memory_limit_) + ")");
    }
    if (bytes_in_use_.compare_exchange_weak(in_use, in_use + bytes,
                                            std::memory_order_relaxed)) {
      break;
    }
  }
  size_t now = in_use + bytes;
  size_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_bytes_.compare_exchange_weak(peak, now,
                                            std::memory_order_relaxed)) {
  }
  return Status::Ok();
}

void QueryContext::ChargeUnchecked(size_t bytes) {
  size_t now =
      bytes_in_use_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  size_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_bytes_.compare_exchange_weak(peak, now,
                                            std::memory_order_relaxed)) {
  }
}

void QueryContext::Release(size_t bytes) {
  // Clamp at zero like the serial engine did: a release can never drive the
  // counter negative even if accounting drifted on an error path.
  size_t in_use = bytes_in_use_.load(std::memory_order_relaxed);
  while (!bytes_in_use_.compare_exchange_weak(
      in_use, bytes <= in_use ? in_use - bytes : 0,
      std::memory_order_relaxed)) {
  }
}

std::string QueryContext::NextSpillPath() {
  std::filesystem::path dir(spill_dir_);
  // The PID keeps concurrent processes (parallel ctest, several CLIs over
  // one spill dir) from colliding: context_id_ is only process-unique.
  std::string name =
      "mpfdb-spill-" + std::to_string(::getpid()) + "-" +
      std::to_string(context_id_) + "-" +
      std::to_string(next_spill_id_.fetch_add(1, std::memory_order_relaxed)) +
      ".tmp";
  return (dir / name).string();
}

void QueryContext::RecordSpill(uint64_t rows, uint64_t bytes) {
  spill_files_.fetch_add(1, std::memory_order_relaxed);
  spill_rows_.fetch_add(rows, std::memory_order_relaxed);
  spill_bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

Status QueryContext::SetSticky(Status s) {
  std::lock_guard<std::mutex> lock(sticky_mu_);
  // First failure wins; a racing worker returns the already-latched status
  // so the whole tree unwinds with one coherent error.
  if (sticky_.ok()) {
    sticky_ = std::move(s);
    doomed_.store(true, std::memory_order_release);
  }
  return sticky_;
}

Status QueryContext::CheckDeadline() {
  if (std::chrono::steady_clock::now() >= deadline_) {
    return SetSticky(Status::DeadlineExceeded("query deadline exceeded"));
  }
  return Status::Ok();
}

}  // namespace mpfdb
