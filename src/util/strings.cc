#include "util/strings.h"

#include <cctype>

namespace mpfdb {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result.append(sep);
    result.append(parts[i]);
  }
  return result;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      break;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string result(text);
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

bool StartsWithIgnoreCase(std::string_view text, std::string_view prefix) {
  if (text.size() < prefix.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(text[i])) !=
        std::tolower(static_cast<unsigned char>(prefix[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace mpfdb
