#ifndef MPFDB_UTIL_RNG_H_
#define MPFDB_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace mpfdb {

// Deterministic random number generator used by the data generators and the
// random elimination heuristic. Every consumer takes an explicit seed so all
// experiments are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  // Bernoulli trial with success probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  // Samples an index from an (unnormalized, non-negative) weight vector.
  // Returns 0 if all weights are zero.
  size_t Categorical(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    if (total <= 0) return 0;
    double u = UniformDouble(0, total);
    double acc = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (u < acc) return i;
    }
    return weights.size() - 1;
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mpfdb

#endif  // MPFDB_UTIL_RNG_H_
