#ifndef MPFDB_UTIL_RNG_H_
#define MPFDB_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace mpfdb {

// Deterministic random number generator used by the data generators and the
// random elimination heuristic. Every consumer takes an explicit seed so all
// experiments are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  // Bernoulli trial with success probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  // Samples an index from an (unnormalized, non-negative) weight vector.
  // Returns 0 if all weights are zero.
  size_t Categorical(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    if (total <= 0) return 0;
    double u = UniformDouble(0, total);
    double acc = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (u < acc) return i;
    }
    return weights.size() - 1;
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

// SplitMix64: the tiny counter-based generator the sampling backend uses.
// Unlike Rng's mt19937_64 (whose distributions — uniform_int_distribution
// in particular — are not pinned down by the standard and may emit different
// streams across libstdc++/libc++), every operation here is defined
// bit-for-bit by this header alone, so a Gibbs chain at a fixed seed is
// reproducible across toolchains — the property the determinism-audit CI leg
// diffs for byte-for-byte.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform double in [0, 1), from the top 53 bits.
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, n) via rejection-free scaling on the high bits;
  // the modulo bias over a 64-bit stream is immaterial for sampling and the
  // mapping is exactly reproducible. n must be > 0.
  uint64_t UniformBelow(uint64_t n) { return Next() % n; }

  // Samples an index from an (unnormalized, non-negative) weight vector.
  // Returns weights.size() when every weight is zero, so callers can tell
  // "no support" apart from "picked index 0".
  size_t Categorical(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    if (!(total > 0)) return weights.size();
    double u = NextDouble() * total;
    double acc = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (u < acc) return i;
    }
    // Float round-off put u at/after the last positive bucket's edge.
    for (size_t i = weights.size(); i-- > 0;) {
      if (weights[i] > 0) return i;
    }
    return weights.size();
  }

 private:
  uint64_t state_;
};

}  // namespace mpfdb

#endif  // MPFDB_UTIL_RNG_H_
