#include "util/status.h"

namespace mpfdb {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace mpfdb
