#ifndef MPFDB_UTIL_STATUS_H_
#define MPFDB_UTIL_STATUS_H_

#include <cstdlib>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace mpfdb {

// Error categories used across the library. The set is intentionally small:
// callers almost always branch only on ok() vs !ok(), and the code exists to
// make test assertions and log lines informative.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnimplemented,
  kCancelled,
  kDeadlineExceeded,
  kResourceExhausted,
};

// Returns a stable human-readable name, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

// A success-or-error result, used instead of exceptions throughout mpfdb.
// A default-constructed Status is OK. Statuses are cheap to copy.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Prefixes an error message with caller context ("HashProductJoin: build
// side: <original message>") so a Status surfaced from deep inside an
// operator tree names every layer it crossed. OK statuses pass through.
inline Status Annotate(const Status& status, const std::string& context) {
  if (status.ok()) return status;
  return Status(status.code(), context + ": " + status.message());
}

// A value-or-error result. Accessing the value of a non-OK StatusOr aborts;
// callers must check ok() (or use CHECK-style test helpers) first.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  StatusOr(T value) : status_(), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed with OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const {
    if (!status_.ok()) {
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK status to the caller.
#define MPFDB_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::mpfdb::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (false)

// Evaluates a StatusOr expression, propagating the error or binding the value.
#define MPFDB_ASSIGN_OR_RETURN(lhs, expr)                 \
  MPFDB_ASSIGN_OR_RETURN_IMPL_(                           \
      MPFDB_STATUS_CONCAT_(_status_or, __LINE__), lhs, expr)

#define MPFDB_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                                 \
  if (!var.ok()) return var.status();                \
  lhs = std::move(var).value()

#define MPFDB_STATUS_CONCAT_(a, b) MPFDB_STATUS_CONCAT_IMPL_(a, b)
#define MPFDB_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace mpfdb

#endif  // MPFDB_UTIL_STATUS_H_
