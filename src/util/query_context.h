#ifndef MPFDB_UTIL_QUERY_CONTEXT_H_
#define MPFDB_UTIL_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace mpfdb {

namespace exec {
class ThreadPool;
}  // namespace exec

// Cooperative cancellation flag for one query. The token is shared so an
// external owner (a serving thread, a test) can request cancellation while
// the executor polls it from operator loops. RequestCancel is safe to call
// from another thread, and the flag is observed by every worker of a
// parallel query.
class CancelToken {
 public:
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

// Per-query resource governor threaded through the executor. It owns:
//
//  * a memory budget, charged by every stateful operator (hash join build
//    sides, hash marginalize tables, sort buffers) via Charge/Release;
//  * a wall-clock deadline plus a cooperative cancellation token, both
//    observed through Poll() from every operator loop;
//  * the spill configuration operators use to degrade gracefully when the
//    budget is hit (Grace-style partitioned spills through paged_file);
//  * an optional exec::ThreadPool enabling intra-query morsel parallelism.
//
// The protocol: operators call Charge(bytes) before growing state. An OK
// means the reservation is recorded; kResourceExhausted means the budget
// would be exceeded and NOTHING was charged — the operator either switches
// to its spill strategy (if spill_enabled()) or propagates the error.
// Poll(rows) is called with the number of rows processed since the last
// call; the cancel flag is checked on every call and the (comparatively
// expensive) clock only every kPollIntervalRows accumulated rows, so a
// deadline or cancel is honored within about one batch of work. A failed
// poll is sticky: every later poll returns the same error immediately, so
// an operator tree unwinds fast once the query is doomed.
//
// Thread safety: the runtime protocol (Poll/Charge/ChargeUnchecked/Release/
// NextSpillPath/RecordSpill/stats) is safe to call from any number of worker
// threads concurrently — charges resolve through compare-exchange against
// the budget, counters are atomic, and the sticky status is guarded by a
// mutex behind an atomic doomed flag. Configuration setters remain
// single-threaded: bind them before the query starts.
//
// A default-constructed context has no limit, no deadline, no cancel
// request, and no thread pool — binding one to a query is then pure
// accounting.
class QueryContext {
 public:
  // Clock checks in Poll happen once per this many accumulated row-units.
  static constexpr size_t kPollIntervalRows = 1024;

  QueryContext();

  // --- configuration -----------------------------------------------------
  // 0 means unlimited (the default).
  void set_memory_limit(size_t bytes) { memory_limit_ = bytes; }
  size_t memory_limit() const { return memory_limit_; }

  // Lowers the memory limit to `bytes` unless an existing limit is already
  // tighter; 0 is ignored. The admission controller uses this to impose its
  // per-slot share of the global serving budget without loosening a stricter
  // limit the caller configured.
  void TightenMemoryLimit(size_t bytes) {
    if (bytes == 0) return;
    if (memory_limit_ == 0 || bytes < memory_limit_) memory_limit_ = bytes;
  }

  // Whether operators may degrade to disk spills instead of failing with
  // kResourceExhausted when the budget is hit. Default true.
  void set_spill_enabled(bool enabled) { spill_enabled_ = enabled; }
  bool spill_enabled() const { return spill_enabled_; }

  // Directory for spill files; defaults to the system temp directory.
  void set_spill_dir(std::string dir) { spill_dir_ = std::move(dir); }
  const std::string& spill_dir() const { return spill_dir_; }

  // Worker pool for intra-query parallelism; null (the default) keeps every
  // operator on the calling thread. The pool must outlive the query. Owned
  // by the caller (normally Database).
  void set_thread_pool(exec::ThreadPool* pool) { thread_pool_ = pool; }
  exec::ThreadPool* thread_pool() const { return thread_pool_; }

  // Absolute wall-clock deadline; queries fail with kDeadlineExceeded once
  // it passes.
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  void set_deadline_after(std::chrono::nanoseconds budget) {
    set_deadline(std::chrono::steady_clock::now() + budget);
  }
  bool has_deadline() const { return has_deadline_; }
  std::chrono::steady_clock::time_point deadline() const { return deadline_; }

  const std::shared_ptr<CancelToken>& cancel_token() const { return cancel_; }
  void RequestCancel() { cancel_->RequestCancel(); }

  // --- runtime protocol ---------------------------------------------------
  // Checks cancellation (every call) and the deadline (every
  // kPollIntervalRows accumulated `rows`). Sticky on failure.
  Status Poll(size_t rows = 1) {
    if (doomed_.load(std::memory_order_acquire)) return sticky();
    if (cancel_->cancelled()) {
      return SetSticky(Status::Cancelled("query cancelled"));
    }
    if (has_deadline_) {
      size_t seen =
          rows_since_clock_check_.fetch_add(rows, std::memory_order_relaxed) +
          rows;
      if (seen >= kPollIntervalRows) {
        rows_since_clock_check_.store(0, std::memory_order_relaxed);
        return CheckDeadline();
      }
    }
    return Status::Ok();
  }

  // Reserves `bytes` against the budget. On kResourceExhausted nothing is
  // charged; `who` names the operator for the error message.
  Status Charge(size_t bytes, const char* who);

  // Records usage without enforcing the limit. Used for state the engine
  // cannot shrink further (e.g. the per-partition table while draining a
  // spill, or the final materialized result), so peak accounting stays
  // honest even in degraded mode.
  void ChargeUnchecked(size_t bytes);

  void Release(size_t bytes);

  // Unique path for a new spill file under spill_dir().
  std::string NextSpillPath();
  void RecordSpill(uint64_t rows, uint64_t bytes);

  struct Stats {
    size_t bytes_in_use = 0;
    size_t peak_bytes = 0;
    uint64_t spill_files = 0;
    uint64_t spill_rows = 0;
    uint64_t spill_bytes = 0;
  };
  // Snapshot by value: individual fields are consistent; the struct as a
  // whole is a best-effort view while workers are running.
  Stats stats() const {
    Stats s;
    s.bytes_in_use = bytes_in_use_.load(std::memory_order_relaxed);
    s.peak_bytes = peak_bytes_.load(std::memory_order_relaxed);
    s.spill_files = spill_files_.load(std::memory_order_relaxed);
    s.spill_rows = spill_rows_.load(std::memory_order_relaxed);
    s.spill_bytes = spill_bytes_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  Status CheckDeadline();
  Status SetSticky(Status s);
  Status sticky() const {
    std::lock_guard<std::mutex> lock(sticky_mu_);
    return sticky_;
  }

  size_t memory_limit_ = 0;
  bool spill_enabled_ = true;
  std::string spill_dir_;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_;
  std::shared_ptr<CancelToken> cancel_;
  exec::ThreadPool* thread_pool_ = nullptr;

  // First failure, latched for every later Poll. The atomic flag keeps the
  // common not-doomed fast path lock-free.
  std::atomic<bool> doomed_{false};
  mutable std::mutex sticky_mu_;
  Status sticky_;  // guarded by sticky_mu_

  std::atomic<size_t> rows_since_clock_check_{0};
  std::atomic<uint64_t> next_spill_id_{0};
  uint64_t context_id_ = 0;

  std::atomic<size_t> bytes_in_use_{0};
  std::atomic<size_t> peak_bytes_{0};
  std::atomic<uint64_t> spill_files_{0};
  std::atomic<uint64_t> spill_rows_{0};
  std::atomic<uint64_t> spill_bytes_{0};
};

// Per-variable trie-iterator counters reported by the LeapFrog TrieJoin:
// total Seek and Next calls across every child iterator's level for this
// variable. EXPLAIN ANALYZE renders one line per variable in join order.
struct TrieVarStats {
  std::string var;
  uint64_t seeks = 0;
  uint64_t nexts = 0;
};

// Runtime counters for one physical operator — the EXPLAIN ANALYZE stats
// spine. The executor's instrumentation decorator fills output_rows /
// batches / wall_nanos (wall time is inclusive of the subtree: it measures
// Open/Next/NextBatch latency at this operator's boundary); the operator's
// own MemoryGuards maintain peak_bytes; the spill degrade paths record
// spill_partitions; the trie join fills trie_vars on Close. Not thread-safe:
// all writers run on the operator's driving thread (parallel phases use
// per-task guards that are not bound to stats and only TransferTo the
// owner's guard at the join point).
struct OperatorStats {
  uint64_t output_rows = 0;
  uint64_t batches = 0;
  size_t peak_bytes = 0;
  uint64_t spill_partitions = 0;
  uint64_t wall_nanos = 0;
  std::vector<TrieVarStats> trie_vars;
};

// RAII bookkeeping for one operator's charges against a QueryContext.
// Everything charged through the guard is released when the guard is
// destroyed or ReleaseAll() is called (operator Close/re-Open), so error
// paths cannot strand accounting. A guard bound to a null context is a
// no-op, which keeps ungoverned execution zero-cost. Each guard instance is
// single-threaded; parallel tasks use one guard per task and fold the
// reservation into their owner with TransferTo.
class MemoryGuard {
 public:
  MemoryGuard() = default;
  explicit MemoryGuard(QueryContext* ctx) : ctx_(ctx) {}
  MemoryGuard(const MemoryGuard&) = delete;
  MemoryGuard& operator=(const MemoryGuard&) = delete;
  ~MemoryGuard() { ReleaseAll(); }

  void Bind(QueryContext* ctx) {
    ReleaseAll();
    ctx_ = ctx;
  }

  Status Charge(size_t bytes, const char* who) {
    if (ctx_ == nullptr || bytes == 0) return Status::Ok();
    MPFDB_RETURN_IF_ERROR(ctx_->Charge(bytes, who));
    charged_ += bytes;
    UpdatePeak();
    return Status::Ok();
  }

  void ChargeUnchecked(size_t bytes) {
    if (ctx_ == nullptr) return;
    ctx_->ChargeUnchecked(bytes);
    charged_ += bytes;
    UpdatePeak();
  }

  void ReleaseAll() {
    if (ctx_ != nullptr && charged_ > 0) ctx_->Release(charged_);
    charged_ = 0;
  }

  // Moves this guard's reservation into `dst` (same context) without
  // touching the context's counters. Used when a per-task guard hands its
  // charges to the owning operator's guard after a parallel phase joins.
  void TransferTo(MemoryGuard& dst) {
    dst.charged_ += charged_;
    charged_ = 0;
    dst.UpdatePeak();
  }

  // Routes this guard's high-water mark into an operator's stats record
  // (EXPLAIN ANALYZE). Null detaches; the guard never owns the record.
  void set_stats(OperatorStats* stats) {
    stats_ = stats;
    UpdatePeak();
  }

  size_t charged() const { return charged_; }
  QueryContext* context() const { return ctx_; }

 private:
  void UpdatePeak() {
    if (stats_ != nullptr && charged_ > stats_->peak_bytes) {
      stats_->peak_bytes = charged_;
    }
  }

  QueryContext* ctx_ = nullptr;
  size_t charged_ = 0;
  OperatorStats* stats_ = nullptr;
};

}  // namespace mpfdb

#endif  // MPFDB_UTIL_QUERY_CONTEXT_H_
