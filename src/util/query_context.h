#ifndef MPFDB_UTIL_QUERY_CONTEXT_H_
#define MPFDB_UTIL_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "util/status.h"

namespace mpfdb {

// Cooperative cancellation flag for one query. The token is shared so an
// external owner (a serving thread, a test) can request cancellation while
// the executor polls it from operator loops. RequestCancel is safe to call
// from another thread; everything else in this layer is single-threaded
// like the rest of the engine.
class CancelToken {
 public:
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

// Per-query resource governor threaded through the executor. It owns:
//
//  * a memory budget, charged by every stateful operator (hash join build
//    sides, hash marginalize tables, sort buffers) via Charge/Release;
//  * a wall-clock deadline plus a cooperative cancellation token, both
//    observed through Poll() from every operator loop;
//  * the spill configuration operators use to degrade gracefully when the
//    budget is hit (Grace-style partitioned spills through paged_file).
//
// The protocol: operators call Charge(bytes) before growing state. An OK
// means the reservation is recorded; kResourceExhausted means the budget
// would be exceeded and NOTHING was charged — the operator either switches
// to its spill strategy (if spill_enabled()) or propagates the error.
// Poll(rows) is called with the number of rows processed since the last
// call; the cancel flag is checked on every call and the (comparatively
// expensive) clock only every kPollIntervalRows accumulated rows, so a
// deadline or cancel is honored within about one batch of work. A failed
// poll is sticky: every later poll returns the same error immediately, so
// an operator tree unwinds fast once the query is doomed.
//
// A default-constructed context has no limit, no deadline, and no cancel
// request — binding one to a query is then pure accounting.
class QueryContext {
 public:
  // Clock checks in Poll happen once per this many accumulated row-units.
  static constexpr size_t kPollIntervalRows = 1024;

  QueryContext();

  // --- configuration -----------------------------------------------------
  // 0 means unlimited (the default).
  void set_memory_limit(size_t bytes) { memory_limit_ = bytes; }
  size_t memory_limit() const { return memory_limit_; }

  // Whether operators may degrade to disk spills instead of failing with
  // kResourceExhausted when the budget is hit. Default true.
  void set_spill_enabled(bool enabled) { spill_enabled_ = enabled; }
  bool spill_enabled() const { return spill_enabled_; }

  // Directory for spill files; defaults to the system temp directory.
  void set_spill_dir(std::string dir) { spill_dir_ = std::move(dir); }
  const std::string& spill_dir() const { return spill_dir_; }

  // Absolute wall-clock deadline; queries fail with kDeadlineExceeded once
  // it passes.
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  void set_deadline_after(std::chrono::nanoseconds budget) {
    set_deadline(std::chrono::steady_clock::now() + budget);
  }

  const std::shared_ptr<CancelToken>& cancel_token() const { return cancel_; }
  void RequestCancel() { cancel_->RequestCancel(); }

  // --- runtime protocol ---------------------------------------------------
  // Checks cancellation (every call) and the deadline (every
  // kPollIntervalRows accumulated `rows`). Sticky on failure.
  Status Poll(size_t rows = 1) {
    if (!sticky_.ok()) return sticky_;
    if (cancel_->cancelled()) {
      sticky_ = Status::Cancelled("query cancelled");
      return sticky_;
    }
    if (has_deadline_) {
      rows_since_clock_check_ += rows;
      if (rows_since_clock_check_ >= kPollIntervalRows) {
        rows_since_clock_check_ = 0;
        return CheckDeadline();
      }
    }
    return Status::Ok();
  }

  // Reserves `bytes` against the budget. On kResourceExhausted nothing is
  // charged; `who` names the operator for the error message.
  Status Charge(size_t bytes, const char* who);

  // Records usage without enforcing the limit. Used for state the engine
  // cannot shrink further (e.g. the per-partition table while draining a
  // spill, or the final materialized result), so peak accounting stays
  // honest even in degraded mode.
  void ChargeUnchecked(size_t bytes);

  void Release(size_t bytes);

  // Unique path for a new spill file under spill_dir().
  std::string NextSpillPath();
  void RecordSpill(uint64_t rows, uint64_t bytes);

  struct Stats {
    size_t bytes_in_use = 0;
    size_t peak_bytes = 0;
    uint64_t spill_files = 0;
    uint64_t spill_rows = 0;
    uint64_t spill_bytes = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  Status CheckDeadline();

  size_t memory_limit_ = 0;
  bool spill_enabled_ = true;
  std::string spill_dir_;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_;
  std::shared_ptr<CancelToken> cancel_;
  Status sticky_;
  size_t rows_since_clock_check_ = 0;
  uint64_t next_spill_id_ = 0;
  uint64_t context_id_ = 0;
  Stats stats_;
};

// RAII bookkeeping for one operator's charges against a QueryContext.
// Everything charged through the guard is released when the guard is
// destroyed or ReleaseAll() is called (operator Close/re-Open), so error
// paths cannot strand accounting. A guard bound to a null context is a
// no-op, which keeps ungoverned execution zero-cost.
class MemoryGuard {
 public:
  MemoryGuard() = default;
  explicit MemoryGuard(QueryContext* ctx) : ctx_(ctx) {}
  MemoryGuard(const MemoryGuard&) = delete;
  MemoryGuard& operator=(const MemoryGuard&) = delete;
  ~MemoryGuard() { ReleaseAll(); }

  void Bind(QueryContext* ctx) {
    ReleaseAll();
    ctx_ = ctx;
  }

  Status Charge(size_t bytes, const char* who) {
    if (ctx_ == nullptr || bytes == 0) return Status::Ok();
    MPFDB_RETURN_IF_ERROR(ctx_->Charge(bytes, who));
    charged_ += bytes;
    return Status::Ok();
  }

  void ChargeUnchecked(size_t bytes) {
    if (ctx_ == nullptr) return;
    ctx_->ChargeUnchecked(bytes);
    charged_ += bytes;
  }

  void ReleaseAll() {
    if (ctx_ != nullptr && charged_ > 0) ctx_->Release(charged_);
    charged_ = 0;
  }

  size_t charged() const { return charged_; }
  QueryContext* context() const { return ctx_; }

 private:
  QueryContext* ctx_ = nullptr;
  size_t charged_ = 0;
};

}  // namespace mpfdb

#endif  // MPFDB_UTIL_QUERY_CONTEXT_H_
