#include "util/fault_injector.h"

#include <shared_mutex>

namespace mpfdb {

namespace {

std::atomic<FaultInjector*> g_injector{nullptr};

// Serializes Install/Uninstall against in-flight MaybeFail/op_count calls
// from concurrently running queries: readers that saw a non-null pointer
// dereference it under a shared lock, and Uninstall deletes only under the
// exclusive lock, so the injector can never be freed mid-use. The inactive
// fast path (the production configuration) stays a lone atomic load.
std::shared_mutex g_injector_mu;

// splitmix64: tiny, deterministic, and good enough for Bernoulli draws.
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void FaultInjector::Install(const Config& config) {
  auto* fi = new FaultInjector();
  fi->config_ = config;
  fi->rng_state_ = config.seed * 0x9e3779b97f4a7c15ULL + 1;
  std::unique_lock<std::shared_mutex> lock(g_injector_mu);
  delete g_injector.exchange(fi, std::memory_order_acq_rel);
}

void FaultInjector::Uninstall() {
  std::unique_lock<std::shared_mutex> lock(g_injector_mu);
  delete g_injector.exchange(nullptr, std::memory_order_acq_rel);
}

bool FaultInjector::active() {
  return g_injector.load(std::memory_order_acquire) != nullptr;
}

Status FaultInjector::MaybeFail(const char* site) {
  if (g_injector.load(std::memory_order_acquire) == nullptr) {
    return Status::Ok();
  }
  // Re-read under the shared lock: the injector seen above may have been
  // uninstalled in the window before the lock was acquired.
  std::shared_lock<std::shared_mutex> lock(g_injector_mu);
  FaultInjector* fi = g_injector.load(std::memory_order_acquire);
  if (fi == nullptr) return Status::Ok();
  uint64_t op = fi->ops_.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fail = false;
  if (fi->config_.fail_nth > 0) {
    fail = op == fi->config_.fail_nth;
  } else if (fi->config_.probability > 0.0) {
    // Map a 53-bit draw to [0, 1); deterministic given the seed and the
    // sequence of IO sites reached.
    std::lock_guard<std::mutex> lock(fi->rng_mu_);
    double u = static_cast<double>(NextRandom(&fi->rng_state_) >> 11) *
               (1.0 / 9007199254740992.0);
    fail = u < fi->config_.probability;
  }
  if (!fail) return Status::Ok();
  return Status::Internal("injected fault #" + std::to_string(op) + " at " +
                          site);
}

FaultInjector::SocketFault FaultInjector::MaybeSocketFault(const char* site,
                                                           bool is_accept) {
  (void)site;
  if (g_injector.load(std::memory_order_acquire) == nullptr) {
    return SocketFault::kNone;
  }
  std::shared_lock<std::shared_mutex> lock(g_injector_mu);
  FaultInjector* fi = g_injector.load(std::memory_order_acquire);
  if (fi == nullptr || fi->config_.socket_probability <= 0.0) {
    return SocketFault::kNone;
  }
  fi->ops_.fetch_add(1, std::memory_order_relaxed);
  uint64_t draw;
  {
    std::lock_guard<std::mutex> rng_lock(fi->rng_mu_);
    draw = NextRandom(&fi->rng_state_);
  }
  double u = static_cast<double>(draw >> 11) * (1.0 / 9007199254740992.0);
  if (u >= fi->config_.socket_probability) return SocketFault::kNone;
  // Faulting: pick the kind from the low bits of the same draw so the whole
  // schedule is a pure function of (seed, site sequence). Accept sites have
  // only one interesting failure; data sites spread across the four modes,
  // weighted toward the recoverable ones (short transfers and EINTR) so a
  // soak exercises the retry paths more often than it kills connections.
  if (is_accept) return SocketFault::kAcceptFail;
  switch (draw & 7) {
    case 0:
    case 1:
    case 2:
      return SocketFault::kShort;
    case 3:
    case 4:
      return SocketFault::kEintr;
    case 5:
      return SocketFault::kStall;
    default:
      return SocketFault::kReset;
  }
}

uint64_t FaultInjector::op_count() {
  std::shared_lock<std::shared_mutex> lock(g_injector_mu);
  FaultInjector* fi = g_injector.load(std::memory_order_acquire);
  return fi == nullptr ? 0 : fi->ops_.load(std::memory_order_relaxed);
}

}  // namespace mpfdb
