#ifndef MPFDB_UTIL_STRINGS_H_
#define MPFDB_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace mpfdb {

// Joins the elements of `parts` with `sep` between them.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Splits `text` at every occurrence of `sep`; empty pieces are kept.
std::vector<std::string> Split(std::string_view text, char sep);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

// ASCII lower-casing (locale independent).
std::string ToLower(std::string_view text);

// True if `text` begins with `prefix`, comparing case-insensitively.
bool StartsWithIgnoreCase(std::string_view text, std::string_view prefix);

}  // namespace mpfdb

#endif  // MPFDB_UTIL_STRINGS_H_
