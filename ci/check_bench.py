#!/usr/bin/env python3
"""Bench regression gate: compare a fresh bench JSON against the committed
baseline.

Usage:
    python3 ci/check_bench.py --baseline BENCH_exec.json --current fresh.json \
        [--fail-pct 25] [--warn-pct 10]

Both files are the flat `[{"name": ..., metric: value, ...}, ...]` arrays the
benches emit via --json. A curated subset of (entry, metric) pairs is gated:
the pipeline throughput numbers and the physical-planner sections, per
direction (higher-is-better throughput/speedups). The gate is one-sided —
only regressions beyond the thresholds matter, so a faster CI machine than
the baseline machine passes trivially, while a >fail-pct slowdown fails the
job and a >warn-pct slowdown prints a warning.

Entries absent from the gated set (serving/*, governed_overhead/*, ...) are
reported informationally. A gated entry missing from the current run is a
hard failure: a regression must not hide behind a renamed or dropped bench.
"""

import argparse
import json
import sys

# (entry name, metric, direction). direction "higher" means a drop is a
# regression; "lower" means a rise is.
GATED = [
    ("pipeline_join_agg/row", "ops_per_sec", "higher"),
    ("pipeline_join_agg/batch", "ops_per_sec", "higher"),
    ("pipeline_join_agg/batch_packed", "ops_per_sec", "higher"),
    ("pipeline_join_agg/batch_packed_swiss", "ops_per_sec", "higher"),
    ("hash_join/batch_packed_swiss", "ops_per_sec", "higher"),
    ("hash_marginalize/batch", "ops_per_sec", "higher"),
    ("hash_table/probe_swiss", "ops_per_sec", "higher"),
    ("hash_table/fold_swiss", "ops_per_sec", "higher"),
    ("mph_probe/probe_mph", "ops_per_sec", "higher"),
    ("physical_planner/mixed_plan", "speedup_vs_forced_hash", "higher"),
    ("physical_planner/order_reuse", "speedup_from_skip", "higher"),
    ("faq_planner/triangle", "speedup_vs_pairwise", "higher"),
    # Network serving (BENCH_serving.json; absent from BENCH_exec.json, so
    # these skip when the gate runs against the exec baseline and vice versa).
    ("net_serving/closed_loop", "queries_per_sec", "higher"),
    ("net_serving/closed_loop", "p50_ms", "lower"),
    ("net_serving/closed_loop", "p99_ms", "lower"),
    ("net_serving/open_loop", "p50_ms", "lower"),
    ("net_serving/open_loop", "p99_ms", "lower"),
    # Mixed readers + writers over the MVCC commit path (serve_loadgen).
    ("mixed_serving/mix95_5", "updates_per_sec", "higher"),
    ("mixed_serving/mix95_5", "read_p50_ms", "lower"),
    ("mixed_serving/mix95_5", "read_p99_ms", "lower"),
    ("mixed_serving/mix50_50", "updates_per_sec", "higher"),
    ("mixed_serving/mix50_50", "read_p50_ms", "lower"),
    ("mixed_serving/mix50_50", "read_p99_ms", "lower"),
    ("mixed_serving/refresh_ablation", "speedup_vs_full_refresh", "higher"),
    # Approximate inference (dissociation bounds + Gibbs anytime sampler).
    ("approx/bounds_cycle", "queries_per_sec", "higher"),
    ("approx/gibbs_cycle", "samples_per_sec", "higher"),
]

# Absolute floors, independent of the baseline: (entry, metric, minimum).
# These encode claims the design depends on — incremental delta refresh must
# beat per-commit full cache rebuild by a wide margin or MVCC serving loses
# its point — so a machine-speed excuse does not apply.
FLOORS = [
    ("mixed_serving/refresh_ablation", "speedup_vs_full_refresh", 5.0),
    # The FAQ planner's reason to exist: on the hub-skewed triangle the
    # worst-case-optimal multiway join must beat the best pairwise-hash plan
    # by a wide margin, or auto-selecting it is a pessimization.
    ("faq_planner/triangle", "speedup_vs_pairwise", 3.0),
]

# Absolute ceilings, independent of the baseline: (entry, metric, maximum).
# Quality metrics where growth is the regression, e.g. the dissociation
# bound gap — loose bounds make the whole approximate path pointless, and
# machine speed cannot excuse them (the gap is deterministic for a fixed
# workload and seed).
CEILINGS = [
    # Relative [lower, upper] spread of the dissociation/conditioning bound
    # pair on the dense small-domain cycle (the large-domain cycle saturates
    # the relative gap at 1.0 and is gated on throughput only). Measured
    # 0.942 raw / 0.903 after Gibbs tightening at the committed seed; both
    # are deterministic, so the margin only has to absorb cross-machine FP
    # fold-order noise. A worse split-var choice or a regressed sampler
    # pushes past these.
    ("approx/bounds_quality", "bound_gap_ratio", 0.96),
    ("approx/bounds_quality", "tightened_gap_ratio", 0.94),
]

# Ungated but reported, so the job log tracks them over time.
INFORMATIONAL = [
    ("serving/plan_cache", "speedup_from_cache"),
    ("serving/plan_cache", "hit_rate"),
    ("serving/concurrent_throughput", "queries_per_sec"),
    ("serving/concurrent_throughput", "plan_cache_hit_rate"),
    ("governed_overhead/batch_packed", "overhead_frac"),
    ("net_serving/open_loop", "achieved_qps"),
    ("net_serving/open_loop", "errors"),
    ("net_serving/closed_loop", "errors"),
    ("net_serving/drain", "drain_ms"),
    ("mixed_serving/mix95_5", "update_p99_ms"),
    ("mixed_serving/mix50_50", "update_p99_ms"),
    ("mixed_serving/mix95_5", "errors"),
    ("mixed_serving/mix50_50", "errors"),
    ("mixed_serving/refresh_ablation", "updates_per_sec_incremental"),
    ("mixed_serving/refresh_ablation", "updates_per_sec_full_rebuild"),
    ("approx/bounds_cycle", "bound_gap_ratio"),
    ("approx/gibbs_cycle", "samples"),
]


def load(path):
    with open(path) as f:
        entries = json.load(f)
    return {e["name"]: e for e in entries}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--fail-pct", type=float, default=25.0)
    parser.add_argument("--warn-pct", type=float, default=10.0)
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    failures = []
    warnings = []
    print(f"{'entry/metric':55s} {'baseline':>14s} {'current':>14s} "
          f"{'delta':>8s}")
    for name, metric, direction in GATED:
        base_entry = baseline.get(name)
        cur_entry = current.get(name)
        if base_entry is None or metric not in base_entry:
            # Nothing to compare against: a new bench primes the baseline on
            # the commit that introduces it.
            print(f"{name}/{metric:s}: no baseline value, skipping")
            continue
        if cur_entry is None or metric not in cur_entry:
            failures.append(f"{name}/{metric}: missing from current run")
            continue
        base = base_entry[metric]
        cur = cur_entry[metric]
        if base == 0:
            print(f"{name}/{metric}: baseline is 0, skipping")
            continue
        # Positive change_pct = improvement under the metric's direction.
        change = (cur - base) / abs(base) * 100.0
        if direction == "lower":
            change = -change
        marker = ""
        if change < -args.fail_pct:
            marker = "  FAIL"
            failures.append(
                f"{name}/{metric}: {change:+.1f}% vs baseline "
                f"(threshold -{args.fail_pct:.0f}%)")
        elif change < -args.warn_pct:
            marker = "  WARN"
            warnings.append(f"{name}/{metric}: {change:+.1f}% vs baseline")
        print(f"{name + '/' + metric:55s} {base:14.6g} {cur:14.6g} "
              f"{change:+7.1f}%{marker}")

    for name, metric, minimum in FLOORS:
        cur_entry = current.get(name)
        if cur_entry is None or metric not in cur_entry:
            # Floors only apply when the bench that emits them ran (the gate
            # also runs against BENCH_exec.json, which has no serving entries).
            continue
        cur = cur_entry[metric]
        marker = ""
        if cur < minimum:
            marker = "  FAIL"
            failures.append(
                f"{name}/{metric}: {cur:.3g} below absolute floor {minimum:g}")
        print(f"{name + '/' + metric:55s} {'floor ' + format(minimum, 'g'):>14s} "
              f"{cur:14.6g}         {marker}")

    for name, metric, maximum in CEILINGS:
        cur_entry = current.get(name)
        if cur_entry is None or metric not in cur_entry:
            # Like floors, ceilings only apply when their bench ran.
            continue
        cur = cur_entry[metric]
        marker = ""
        if cur > maximum:
            marker = "  FAIL"
            failures.append(
                f"{name}/{metric}: {cur:.3g} above absolute ceiling "
                f"{maximum:g}")
        print(f"{name + '/' + metric:55s} "
              f"{'ceiling ' + format(maximum, 'g'):>14s} "
              f"{cur:14.6g}         {marker}")

    print()
    for name, metric in INFORMATIONAL:
        cur_entry = current.get(name)
        if cur_entry is None or metric not in cur_entry:
            continue
        base_entry = baseline.get(name) or {}
        base = base_entry.get(metric)
        base_str = f"{base:14.6g}" if base is not None else f"{'-':>14s}"
        print(f"{name + '/' + metric:55s} {base_str} "
              f"{cur_entry[metric]:14.6g}   (info)")

    if warnings:
        print("\nWarnings (>{:.0f}% regression):".format(args.warn_pct))
        for w in warnings:
            print("  " + w)
    if failures:
        print("\nFailures (>{:.0f}% regression):".format(args.fail_pct))
        for f in failures:
            print("  " + f)
        return 1
    print("\nbench gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
