# Empty compiler generated dependencies file for mpfdb_shell.
# This may be replaced when dependencies are built.
