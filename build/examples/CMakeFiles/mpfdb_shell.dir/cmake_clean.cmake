file(REMOVE_RECURSE
  "CMakeFiles/mpfdb_shell.dir/mpfdb_shell.cc.o"
  "CMakeFiles/mpfdb_shell.dir/mpfdb_shell.cc.o.d"
  "mpfdb_shell"
  "mpfdb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpfdb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
