file(REMOVE_RECURSE
  "CMakeFiles/reachability.dir/reachability.cc.o"
  "CMakeFiles/reachability.dir/reachability.cc.o.d"
  "reachability"
  "reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
