# Empty compiler generated dependencies file for reachability.
# This may be replaced when dependencies are built.
