file(REMOVE_RECURSE
  "CMakeFiles/supply_chain.dir/supply_chain.cc.o"
  "CMakeFiles/supply_chain.dir/supply_chain.cc.o.d"
  "supply_chain"
  "supply_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supply_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
