# Empty compiler generated dependencies file for bayes_inference.
# This may be replaced when dependencies are built.
