file(REMOVE_RECURSE
  "CMakeFiles/bayes_inference.dir/bayes_inference.cc.o"
  "CMakeFiles/bayes_inference.dir/bayes_inference.cc.o.d"
  "bayes_inference"
  "bayes_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bayes_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
