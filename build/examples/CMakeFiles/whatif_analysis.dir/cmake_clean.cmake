file(REMOVE_RECURSE
  "CMakeFiles/whatif_analysis.dir/whatif_analysis.cc.o"
  "CMakeFiles/whatif_analysis.dir/whatif_analysis.cc.o.d"
  "whatif_analysis"
  "whatif_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
