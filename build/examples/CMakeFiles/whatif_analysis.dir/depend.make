# Empty dependencies file for whatif_analysis.
# This may be replaced when dependencies are built.
