# Empty dependencies file for workload_cache.
# This may be replaced when dependencies are built.
