file(REMOVE_RECURSE
  "CMakeFiles/workload_cache.dir/workload_cache.cc.o"
  "CMakeFiles/workload_cache.dir/workload_cache.cc.o.d"
  "workload_cache"
  "workload_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
