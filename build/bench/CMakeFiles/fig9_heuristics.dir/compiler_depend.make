# Empty compiler generated dependencies file for fig9_heuristics.
# This may be replaced when dependencies are built.
