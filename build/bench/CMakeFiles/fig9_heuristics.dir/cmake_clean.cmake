file(REMOVE_RECURSE
  "CMakeFiles/fig9_heuristics.dir/fig9_heuristics.cc.o"
  "CMakeFiles/fig9_heuristics.dir/fig9_heuristics.cc.o.d"
  "fig9_heuristics"
  "fig9_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
