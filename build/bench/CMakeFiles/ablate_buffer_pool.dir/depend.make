# Empty dependencies file for ablate_buffer_pool.
# This may be replaced when dependencies are built.
