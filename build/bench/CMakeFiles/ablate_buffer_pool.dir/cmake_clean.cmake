file(REMOVE_RECURSE
  "CMakeFiles/ablate_buffer_pool.dir/ablate_buffer_pool.cc.o"
  "CMakeFiles/ablate_buffer_pool.dir/ablate_buffer_pool.cc.o.d"
  "ablate_buffer_pool"
  "ablate_buffer_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_buffer_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
