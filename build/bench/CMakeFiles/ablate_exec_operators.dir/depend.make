# Empty dependencies file for ablate_exec_operators.
# This may be replaced when dependencies are built.
