file(REMOVE_RECURSE
  "CMakeFiles/ablate_exec_operators.dir/ablate_exec_operators.cc.o"
  "CMakeFiles/ablate_exec_operators.dir/ablate_exec_operators.cc.o.d"
  "ablate_exec_operators"
  "ablate_exec_operators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_exec_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
