file(REMOVE_RECURSE
  "CMakeFiles/fig7_plan_linearity.dir/fig7_plan_linearity.cc.o"
  "CMakeFiles/fig7_plan_linearity.dir/fig7_plan_linearity.cc.o.d"
  "fig7_plan_linearity"
  "fig7_plan_linearity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_plan_linearity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
