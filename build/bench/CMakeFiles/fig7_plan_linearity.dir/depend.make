# Empty dependencies file for fig7_plan_linearity.
# This may be replaced when dependencies are built.
