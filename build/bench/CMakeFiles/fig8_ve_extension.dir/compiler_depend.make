# Empty compiler generated dependencies file for fig8_ve_extension.
# This may be replaced when dependencies are built.
