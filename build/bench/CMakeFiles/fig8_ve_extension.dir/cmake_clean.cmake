file(REMOVE_RECURSE
  "CMakeFiles/fig8_ve_extension.dir/fig8_ve_extension.cc.o"
  "CMakeFiles/fig8_ve_extension.dir/fig8_ve_extension.cc.o.d"
  "fig8_ve_extension"
  "fig8_ve_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_ve_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
