file(REMOVE_RECURSE
  "CMakeFiles/table3_random_heuristic.dir/table3_random_heuristic.cc.o"
  "CMakeFiles/table3_random_heuristic.dir/table3_random_heuristic.cc.o.d"
  "table3_random_heuristic"
  "table3_random_heuristic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_random_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
