# Empty compiler generated dependencies file for table3_random_heuristic.
# This may be replaced when dependencies are built.
