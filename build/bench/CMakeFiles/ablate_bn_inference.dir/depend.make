# Empty dependencies file for ablate_bn_inference.
# This may be replaced when dependencies are built.
