file(REMOVE_RECURSE
  "CMakeFiles/ablate_bn_inference.dir/ablate_bn_inference.cc.o"
  "CMakeFiles/ablate_bn_inference.dir/ablate_bn_inference.cc.o.d"
  "ablate_bn_inference"
  "ablate_bn_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_bn_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
