# Empty compiler generated dependencies file for fig10_opt_tradeoff.
# This may be replaced when dependencies are built.
