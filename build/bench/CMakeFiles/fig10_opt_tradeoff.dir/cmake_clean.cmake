file(REMOVE_RECURSE
  "CMakeFiles/fig10_opt_tradeoff.dir/fig10_opt_tradeoff.cc.o"
  "CMakeFiles/fig10_opt_tradeoff.dir/fig10_opt_tradeoff.cc.o.d"
  "fig10_opt_tradeoff"
  "fig10_opt_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_opt_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
