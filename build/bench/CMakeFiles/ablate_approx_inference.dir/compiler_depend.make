# Empty compiler generated dependencies file for ablate_approx_inference.
# This may be replaced when dependencies are built.
