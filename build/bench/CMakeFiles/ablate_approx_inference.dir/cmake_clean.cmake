file(REMOVE_RECURSE
  "CMakeFiles/ablate_approx_inference.dir/ablate_approx_inference.cc.o"
  "CMakeFiles/ablate_approx_inference.dir/ablate_approx_inference.cc.o.d"
  "ablate_approx_inference"
  "ablate_approx_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_approx_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
