file(REMOVE_RECURSE
  "CMakeFiles/ablate_vecache.dir/ablate_vecache.cc.o"
  "CMakeFiles/ablate_vecache.dir/ablate_vecache.cc.o.d"
  "ablate_vecache"
  "ablate_vecache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_vecache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
