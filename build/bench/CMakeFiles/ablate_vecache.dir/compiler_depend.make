# Empty compiler generated dependencies file for ablate_vecache.
# This may be replaced when dependencies are built.
