# Empty compiler generated dependencies file for table2_heuristic_schemas.
# This may be replaced when dependencies are built.
