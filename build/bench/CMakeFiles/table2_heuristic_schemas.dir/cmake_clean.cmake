file(REMOVE_RECURSE
  "CMakeFiles/table2_heuristic_schemas.dir/table2_heuristic_schemas.cc.o"
  "CMakeFiles/table2_heuristic_schemas.dir/table2_heuristic_schemas.cc.o.d"
  "table2_heuristic_schemas"
  "table2_heuristic_schemas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_heuristic_schemas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
