# Empty dependencies file for ablate_opt_scaling.
# This may be replaced when dependencies are built.
