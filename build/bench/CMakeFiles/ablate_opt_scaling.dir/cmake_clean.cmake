file(REMOVE_RECURSE
  "CMakeFiles/ablate_opt_scaling.dir/ablate_opt_scaling.cc.o"
  "CMakeFiles/ablate_opt_scaling.dir/ablate_opt_scaling.cc.o.d"
  "ablate_opt_scaling"
  "ablate_opt_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_opt_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
