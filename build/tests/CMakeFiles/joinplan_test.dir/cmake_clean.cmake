file(REMOVE_RECURSE
  "CMakeFiles/joinplan_test.dir/joinplan_test.cc.o"
  "CMakeFiles/joinplan_test.dir/joinplan_test.cc.o.d"
  "joinplan_test"
  "joinplan_test.pdb"
  "joinplan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joinplan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
