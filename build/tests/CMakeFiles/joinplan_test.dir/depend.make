# Empty dependencies file for joinplan_test.
# This may be replaced when dependencies are built.
