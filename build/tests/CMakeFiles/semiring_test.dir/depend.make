# Empty dependencies file for semiring_test.
# This may be replaced when dependencies are built.
