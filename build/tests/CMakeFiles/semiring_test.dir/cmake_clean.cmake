file(REMOVE_RECURSE
  "CMakeFiles/semiring_test.dir/semiring_test.cc.o"
  "CMakeFiles/semiring_test.dir/semiring_test.cc.o.d"
  "semiring_test"
  "semiring_test.pdb"
  "semiring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semiring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
