# Empty dependencies file for plan_cost_test.
# This may be replaced when dependencies are built.
