file(REMOVE_RECURSE
  "CMakeFiles/plan_cost_test.dir/plan_cost_test.cc.o"
  "CMakeFiles/plan_cost_test.dir/plan_cost_test.cc.o.d"
  "plan_cost_test"
  "plan_cost_test.pdb"
  "plan_cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
