# Empty dependencies file for bn_test.
# This may be replaced when dependencies are built.
