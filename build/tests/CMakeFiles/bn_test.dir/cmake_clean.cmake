file(REMOVE_RECURSE
  "CMakeFiles/bn_test.dir/bn_test.cc.o"
  "CMakeFiles/bn_test.dir/bn_test.cc.o.d"
  "bn_test"
  "bn_test.pdb"
  "bn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
