file(REMOVE_RECURSE
  "CMakeFiles/disk_storage_test.dir/disk_storage_test.cc.o"
  "CMakeFiles/disk_storage_test.dir/disk_storage_test.cc.o.d"
  "disk_storage_test"
  "disk_storage_test.pdb"
  "disk_storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
