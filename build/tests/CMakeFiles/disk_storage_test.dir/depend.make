# Empty dependencies file for disk_storage_test.
# This may be replaced when dependencies are built.
