# Empty compiler generated dependencies file for fr_algebra_test.
# This may be replaced when dependencies are built.
