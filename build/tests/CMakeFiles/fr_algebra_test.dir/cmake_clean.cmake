file(REMOVE_RECURSE
  "CMakeFiles/fr_algebra_test.dir/fr_algebra_test.cc.o"
  "CMakeFiles/fr_algebra_test.dir/fr_algebra_test.cc.o.d"
  "fr_algebra_test"
  "fr_algebra_test.pdb"
  "fr_algebra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fr_algebra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
