# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bn_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/disk_storage_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/fr_algebra_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/joinplan_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/plan_cost_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/semiring_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
