file(REMOVE_RECURSE
  "libmpfdb.a"
)
