
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bn/bayes_net.cc" "src/CMakeFiles/mpfdb.dir/bn/bayes_net.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/bn/bayes_net.cc.o.d"
  "/root/repo/src/bn/inference.cc" "src/CMakeFiles/mpfdb.dir/bn/inference.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/bn/inference.cc.o.d"
  "/root/repo/src/core/database.cc" "src/CMakeFiles/mpfdb.dir/core/database.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/core/database.cc.o.d"
  "/root/repo/src/core/persistence.cc" "src/CMakeFiles/mpfdb.dir/core/persistence.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/core/persistence.cc.o.d"
  "/root/repo/src/cost/cost_model.cc" "src/CMakeFiles/mpfdb.dir/cost/cost_model.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/cost/cost_model.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/mpfdb.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/exec/executor.cc.o.d"
  "/root/repo/src/exec/operator.cc" "src/CMakeFiles/mpfdb.dir/exec/operator.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/exec/operator.cc.o.d"
  "/root/repo/src/fr/algebra.cc" "src/CMakeFiles/mpfdb.dir/fr/algebra.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/fr/algebra.cc.o.d"
  "/root/repo/src/graph/junction_tree.cc" "src/CMakeFiles/mpfdb.dir/graph/junction_tree.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/graph/junction_tree.cc.o.d"
  "/root/repo/src/graph/variable_graph.cc" "src/CMakeFiles/mpfdb.dir/graph/variable_graph.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/graph/variable_graph.cc.o.d"
  "/root/repo/src/opt/cs.cc" "src/CMakeFiles/mpfdb.dir/opt/cs.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/opt/cs.cc.o.d"
  "/root/repo/src/opt/joinplan.cc" "src/CMakeFiles/mpfdb.dir/opt/joinplan.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/opt/joinplan.cc.o.d"
  "/root/repo/src/opt/optimizer.cc" "src/CMakeFiles/mpfdb.dir/opt/optimizer.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/opt/optimizer.cc.o.d"
  "/root/repo/src/opt/ve.cc" "src/CMakeFiles/mpfdb.dir/opt/ve.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/opt/ve.cc.o.d"
  "/root/repo/src/parser/sql.cc" "src/CMakeFiles/mpfdb.dir/parser/sql.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/parser/sql.cc.o.d"
  "/root/repo/src/parser/tokenizer.cc" "src/CMakeFiles/mpfdb.dir/parser/tokenizer.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/parser/tokenizer.cc.o.d"
  "/root/repo/src/plan/plan.cc" "src/CMakeFiles/mpfdb.dir/plan/plan.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/plan/plan.cc.o.d"
  "/root/repo/src/semiring/semiring.cc" "src/CMakeFiles/mpfdb.dir/semiring/semiring.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/semiring/semiring.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/mpfdb.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/mpfdb.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/csv.cc" "src/CMakeFiles/mpfdb.dir/storage/csv.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/storage/csv.cc.o.d"
  "/root/repo/src/storage/disk_table.cc" "src/CMakeFiles/mpfdb.dir/storage/disk_table.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/storage/disk_table.cc.o.d"
  "/root/repo/src/storage/index.cc" "src/CMakeFiles/mpfdb.dir/storage/index.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/storage/index.cc.o.d"
  "/root/repo/src/storage/paged_file.cc" "src/CMakeFiles/mpfdb.dir/storage/paged_file.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/storage/paged_file.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/CMakeFiles/mpfdb.dir/storage/schema.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/storage/schema.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/mpfdb.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/storage/table.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/mpfdb.dir/util/status.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/util/status.cc.o.d"
  "/root/repo/src/util/strings.cc" "src/CMakeFiles/mpfdb.dir/util/strings.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/util/strings.cc.o.d"
  "/root/repo/src/workload/bp.cc" "src/CMakeFiles/mpfdb.dir/workload/bp.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/workload/bp.cc.o.d"
  "/root/repo/src/workload/generators.cc" "src/CMakeFiles/mpfdb.dir/workload/generators.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/workload/generators.cc.o.d"
  "/root/repo/src/workload/loopy_bp.cc" "src/CMakeFiles/mpfdb.dir/workload/loopy_bp.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/workload/loopy_bp.cc.o.d"
  "/root/repo/src/workload/vecache.cc" "src/CMakeFiles/mpfdb.dir/workload/vecache.cc.o" "gcc" "src/CMakeFiles/mpfdb.dir/workload/vecache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
