# Empty dependencies file for mpfdb.
# This may be replaced when dependencies are built.
