// Figure 7 — Plan Linearity Experiment.
//
// Paper setup: on the supply-chain schema, run
//   Q1: select cid, SUM(inv) from invest group by cid;
//   Q2: select tid, SUM(inv) from invest group by tid;
// sweeping the density of the CTdeals relation, comparing linear CS+ against
// nonlinear CS+. Paper finding: for Q1 nonlinear plans win increasingly with
// density (Eq. 1 fails for cid: sigma=1000 vs sigma_hat=5000), while for Q2
// linear plans are optimal at every density (Eq. 1 holds: sigma = sigma_hat
// = 500) and the two curves coincide.
//
//   ./build/bench/fig7_plan_linearity [scale]   (default 0.05)

#include <cstdlib>

#include "bench_util.h"
#include "opt/optimizer.h"

using namespace mpfdb;
using bench::RunQuery;

int main(int argc, char** argv) {
  // Scale 0.3 with location shrunk 10x keeps ctdeals the dominant relation
  // (up to ~45K rows vs location's 30K), matching Table 1's regime where the
  // density knob materially changes the work a linear plan must do.
  double scale = argc > 1 ? std::atof(argv[1]) : 0.3;
  std::printf("# Figure 7: plan linearity — evaluation time vs ctdeals "
              "density (scale %.3f)\n", scale);

  for (const auto& [label, var] :
       {std::pair<const char*, const char*>{"Q1", "cid"}, {"Q2", "tid"}}) {
    std::printf("\n%s: select %s, SUM(inv) from invest group by %s\n", label,
                var, var);
    std::printf("%8s %14s %14s %16s %16s\n", "density", "linear_ms",
                "nonlinear_ms", "linear_cost", "nonlinear_cost");
    for (double density : {0.2, 0.4, 0.6, 0.8, 1.0}) {
      Database db;
      workload::SupplyChainParams params;
      params.scale = scale;
      params.ctdeals_density = density;
      params.location_factor = 0.1;
      auto schema = workload::GenerateSupplyChain(params, db.catalog());
      if (!schema.ok() || !db.CreateMpfView(schema->view).ok()) return 1;

      MpfQuerySpec query{{var}, {}};
      // Best of three runs to de-noise wall times.
      auto linear = RunQuery(db, "invest", query, "cs+");
      auto nonlinear = RunQuery(db, "invest", query, "cs+nonlinear");
      for (int rep = 0; rep < 2; ++rep) {
        auto l = RunQuery(db, "invest", query, "cs+");
        auto n = RunQuery(db, "invest", query, "cs+nonlinear");
        linear.execution_ms = std::min(linear.execution_ms, l.execution_ms);
        nonlinear.execution_ms =
            std::min(nonlinear.execution_ms, n.execution_ms);
      }
      std::printf("%8.1f %14.3f %14.3f %16.0f %16.0f\n", density,
                  linear.execution_ms, nonlinear.execution_ms,
                  linear.plan_cost, nonlinear.plan_cost);

      if (density == 1.0) {
        auto admissible =
            opt::LinearPlanAdmissible(schema->view, var, db.catalog());
        std::printf("  Eq.1 linearity test for %s: linear plans %s\n", var,
                    admissible.ok() && *admissible ? "admissible"
                                                   : "NOT admissible");
      }
    }
  }
  std::printf("\n# Expected shape (paper): Q1 nonlinear wins as density "
              "grows; Q2 curves coincide.\n");
  return 0;
}
