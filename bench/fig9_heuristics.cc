// Figure 9 — Ordering Heuristics Experiment.
//
// Paper setup: on the supply-chain schema, run
//   Q1: group by cid;   Q2: group by pid;
// as scale grows, comparing the degree, width and elimination-cost ordering
// heuristics for plain VE. Paper findings: for Q1, width is worse than both
// degree and elimination cost; for Q2 all heuristics derive the same plan.
//
//   ./build/bench/fig9_heuristics [max_scale]   (default 0.08)

#include <cstdlib>
#include <vector>

#include "bench_util.h"

using namespace mpfdb;
using bench::RunQuery;

int main(int argc, char** argv) {
  double max_scale = argc > 1 ? std::atof(argv[1]) : 0.08;
  std::vector<double> scales = {max_scale / 8, max_scale / 4, max_scale / 2,
                                max_scale};
  std::printf("# Figure 9: VE ordering heuristics — runtime vs DB scale\n");

  for (const auto& [label, var] :
       {std::pair<const char*, const char*>{"Q1", "cid"}, {"Q2", "pid"}}) {
    std::printf("\n%s: select %s, SUM(inv) from invest group by %s\n", label,
                var, var);
    std::printf("%8s | %10s %10s %14s | %12s %12s %14s\n", "scale", "deg_ms",
                "width_ms", "elim_cost_ms", "deg_cost", "width_cost",
                "elim_cost_cost");
    for (double scale : scales) {
      Database db;
      workload::SupplyChainParams params;
      params.scale = scale;
      auto schema = workload::GenerateSupplyChain(params, db.catalog());
      if (!schema.ok() || !db.CreateMpfView(schema->view).ok()) return 1;

      MpfQuerySpec query{{var}, {}};
      auto deg = RunQuery(db, "invest", query, "ve(deg)");
      auto width = RunQuery(db, "invest", query, "ve(width)");
      auto elim = RunQuery(db, "invest", query, "ve(elim_cost)");
      std::printf("%8.3f | %10.2f %10.2f %14.2f | %12.0f %12.0f %14.0f\n",
                  scale, deg.execution_ms, width.execution_ms,
                  elim.execution_ms, deg.plan_cost, width.plan_cost,
                  elim.plan_cost);
    }
  }
  std::printf("\n# Expected shape (paper): Q1 width worse than degree and "
              "elim_cost; Q2 all heuristics identical.\n");
  return 0;
}
