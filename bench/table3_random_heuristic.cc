// Table 3 — Random Heuristic Experiment Result.
//
// Paper setup: the Table 2 schemas, eliminating variables in uniformly
// random order, 10 runs, reporting mean plan cost with a 95% confidence
// interval, with and without the space extension. Paper finding: the
// extension helps a lot, but the optimal cost stays outside the confidence
// interval — elimination ordering still matters in the extended space.
//
//   ./build/bench/table3_random_heuristic

#include <cmath>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace mpfdb;

namespace {

struct MeanCi {
  double mean = 0;
  double ci95 = 0;
};

MeanCi Summarize(const std::vector<double>& xs) {
  MeanCi result;
  for (double x : xs) result.mean += x;
  result.mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - result.mean) * (x - result.mean);
  var /= static_cast<double>(xs.size() - 1);
  // t_{0.975, 9} = 2.262 for 10 runs.
  result.ci95 = 2.262 * std::sqrt(var / static_cast<double>(xs.size()));
  return result;
}

}  // namespace

int main() {
  std::printf("# Table 3: VE(random) plan cost, mean ± 95%% CI over 10 runs\n");
  std::printf("# N=5 tables, domain size 10, complete relations; query: "
              "group by v0\n\n");

  const std::vector<workload::SyntheticKind> kinds = {
      workload::SyntheticKind::kStar, workload::SyntheticKind::kMultistar,
      workload::SyntheticKind::kLinear};

  std::printf("%-18s", "Ordering");
  for (auto kind : kinds) {
    std::printf(" %26s", workload::SyntheticKindName(kind).c_str());
  }
  std::printf("\n");

  for (bool extended : {false, true}) {
    std::printf("%-18s", extended ? "VE(random) ext." : "VE(random)");
    for (auto kind : kinds) {
      Database db;
      workload::SyntheticParams params;
      params.kind = kind;
      params.num_tables = 5;
      params.domain_size = 10;
      auto schema = workload::GenerateSynthetic(params, db.catalog());
      if (!schema.ok() || !db.CreateMpfView(schema->view).ok()) return 1;
      MpfQuerySpec query{{schema->linear_vars[0]}, {}};

      std::vector<double> costs;
      for (uint64_t seed = 1; seed <= 10; ++seed) {
        auto optimizer =
            MakeOptimizer(extended ? "ve(random) ext." : "ve(random)", seed);
        if (!optimizer.ok()) return 1;
        auto view = db.GetView(schema->view.name);
        auto plan = (*optimizer)->Optimize(**view, query, db.catalog(),
                                           db.cost_model());
        if (!plan.ok()) return 1;
        costs.push_back((*plan)->est_cost);
      }
      MeanCi stats = Summarize(costs);
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%.2f ± %.2f", stats.mean, stats.ci95);
      std::printf(" %26s", cell);
    }
    std::printf("\n");
  }

  // Reference: the optimum for each schema.
  std::printf("%-18s", "Nonlinear CS+");
  for (auto kind : kinds) {
    Database db;
    workload::SyntheticParams params;
    params.kind = kind;
    params.num_tables = 5;
    params.domain_size = 10;
    auto schema = workload::GenerateSynthetic(params, db.catalog());
    if (!schema.ok() || !db.CreateMpfView(schema->view).ok()) return 1;
    auto stats = mpfdb::bench::RunQuery(
        db, schema->view.name, MpfQuerySpec{{schema->linear_vars[0]}, {}},
        "cs+nonlinear", /*execute=*/false);
    char cell[64];
    std::snprintf(cell, sizeof(cell), "%.2f", stats.plan_cost);
    std::printf(" %26s", cell);
  }
  std::printf("\n\n# Expected shape (paper): ext. means far below plain "
              "means; optimum outside both confidence intervals.\n");
  return 0;
}
