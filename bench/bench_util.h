#ifndef MPFDB_BENCH_BENCH_UTIL_H_
#define MPFDB_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>

#include "core/database.h"
#include "workload/generators.h"

namespace mpfdb::bench {

using Clock = std::chrono::steady_clock;

inline double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Runs `query` against `view` with the given optimizer and fills the
// measured numbers; crashes loudly on error so bench output is trustworthy.
struct RunStats {
  double plan_cost = 0;        // optimizer's estimated cost (model units)
  double planning_ms = 0;      // wall time spent in the optimizer
  double execution_ms = 0;     // wall time spent executing the plan
  bool linear = false;         // plan shape
  int groupbys = 0;
};

inline RunStats RunQuery(Database& db, const std::string& view,
                         const MpfQuerySpec& query,
                         const std::string& optimizer,
                         bool execute = true) {
  RunStats stats;
  if (execute) {
    auto result = db.Query(view, query, optimizer);
    if (!result.ok()) {
      std::fprintf(stderr, "bench query failed (%s): %s\n", optimizer.c_str(),
                   result.status().ToString().c_str());
      std::abort();
    }
    stats.plan_cost = result->plan->est_cost;
    stats.planning_ms = result->planning_seconds * 1e3;
    stats.execution_ms = result->execution_seconds * 1e3;
    stats.linear = result->plan->IsLinear();
    stats.groupbys = result->plan->GroupByCount();
  } else {
    auto start = Clock::now();
    auto optimizer_obj = MakeOptimizer(optimizer);
    if (!optimizer_obj.ok()) std::abort();
    auto view_def = db.GetView(view);
    if (!view_def.ok()) std::abort();
    auto plan = (*optimizer_obj)
                    ->Optimize(**view_def, query, db.catalog(),
                               db.cost_model());
    if (!plan.ok()) {
      std::fprintf(stderr, "bench plan failed (%s): %s\n", optimizer.c_str(),
                   plan.status().ToString().c_str());
      std::abort();
    }
    stats.planning_ms = MsSince(start);
    stats.plan_cost = (*plan)->est_cost;
    stats.linear = (*plan)->IsLinear();
    stats.groupbys = (*plan)->GroupByCount();
  }
  return stats;
}

}  // namespace mpfdb::bench

#endif  // MPFDB_BENCH_BENCH_UTIL_H_
