#ifndef MPFDB_BENCH_BENCH_UTIL_H_
#define MPFDB_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "core/database.h"
#include "workload/generators.h"

namespace mpfdb::bench {

// Machine-readable bench output. Benches accept a shared `--json <path>`
// flag (see JsonPathFromArgs); when set, they append their measurements to a
// BenchJsonWriter and serialize it on exit, so driver scripts can diff runs
// without scraping stdout.
class BenchJsonWriter {
 public:
  void Add(const std::string& name,
           std::initializer_list<std::pair<const char*, double>> metrics) {
    Entry entry;
    entry.name = name;
    for (const auto& [key, value] : metrics) {
      entry.metrics.emplace_back(key, value);
    }
    entries_.push_back(std::move(entry));
  }

  bool empty() const { return entries_.empty(); }

  // Writes the collected entries as a JSON array of flat objects. Returns
  // false (after complaining on stderr) if the file cannot be written.
  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write bench json to '%s'\n", path.c_str());
      return false;
    }
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f, "  {\"name\": \"%s\"", entries_[i].name.c_str());
      for (const auto& [key, value] : entries_[i].metrics) {
        std::fprintf(f, ", \"%s\": %.10g", key.c_str(), value);
      }
      std::fprintf(f, "}%s\n", i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    return true;
  }

 private:
  struct Entry {
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
  };
  std::vector<Entry> entries_;
};

// Extracts the path from a `--json <path>` or `--json=<path>` argument, or
// returns "" when the flag is absent.
inline std::string JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) return argv[i + 1];
    if (arg.rfind("--json=", 0) == 0) return arg.substr(7);
  }
  return "";
}

using Clock = std::chrono::steady_clock;

inline double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Runs `query` against `view` with the given optimizer and fills the
// measured numbers; crashes loudly on error so bench output is trustworthy.
struct RunStats {
  double plan_cost = 0;        // optimizer's estimated cost (model units)
  double planning_ms = 0;      // wall time spent in the optimizer
  double execution_ms = 0;     // wall time spent executing the plan
  bool linear = false;         // plan shape
  int groupbys = 0;
};

inline RunStats RunQuery(Database& db, const std::string& view,
                         const MpfQuerySpec& query,
                         const std::string& optimizer,
                         bool execute = true) {
  RunStats stats;
  if (execute) {
    auto result = db.Query(view, query, optimizer);
    if (!result.ok()) {
      std::fprintf(stderr, "bench query failed (%s): %s\n", optimizer.c_str(),
                   result.status().ToString().c_str());
      std::abort();
    }
    stats.plan_cost = result->plan->est_cost;
    stats.planning_ms = result->planning_seconds * 1e3;
    stats.execution_ms = result->execution_seconds * 1e3;
    stats.linear = result->plan->IsLinear();
    stats.groupbys = result->plan->GroupByCount();
  } else {
    auto start = Clock::now();
    auto optimizer_obj = MakeOptimizer(optimizer);
    if (!optimizer_obj.ok()) std::abort();
    auto view_def = db.GetView(view);
    if (!view_def.ok()) std::abort();
    auto plan = (*optimizer_obj)
                    ->Optimize(**view_def, query, db.catalog(),
                               db.cost_model());
    if (!plan.ok()) {
      std::fprintf(stderr, "bench plan failed (%s): %s\n", optimizer.c_str(),
                   plan.status().ToString().c_str());
      std::abort();
    }
    stats.planning_ms = MsSince(start);
    stats.plan_cost = (*plan)->est_cost;
    stats.linear = (*plan)->IsLinear();
    stats.groupbys = (*plan)->GroupByCount();
  }
  return stats;
}

}  // namespace mpfdb::bench

#endif  // MPFDB_BENCH_BENCH_UTIL_H_
