// Ablation — VE-cache workload optimization (Section 6).
//
// Measures the Section 6 objective C(S) + E[cost(Q)]: cache build cost and
// per-query answer time from the cache, against per-query optimization with
// the best single-query optimizer, over a probability-weighted workload of
// single-variable queries (including restricted-domain queries exercising
// the Theorem 5 protocol).
//
//   ./build/bench/ablate_vecache [scale]   (default 0.02)

#include <cstdlib>

#include "bench_util.h"
#include "fr/algebra.h"
#include "workload/vecache.h"

using namespace mpfdb;
using bench::Clock;
using bench::MsSince;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.02;
  Database db;
  workload::SupplyChainParams params;
  params.scale = scale;
  auto schema = workload::GenerateSupplyChain(params, db.catalog());
  if (!schema.ok() || !db.CreateMpfView(schema->view).ok()) return 1;

  std::printf("# VE-cache ablation (scale %.3f)\n\n", scale);

  auto build_start = Clock::now();
  auto cache = workload::VeCache::Build(schema->view, db.catalog());
  if (!cache.ok()) {
    std::fprintf(stderr, "%s\n", cache.status().ToString().c_str());
    return 1;
  }
  double build_ms = MsSince(build_start);
  std::printf("cache: %zu tables, %lld rows, built in %.2f ms\n",
              cache->caches().size(),
              static_cast<long long>(cache->TotalCacheRows()), build_ms);

  const std::vector<workload::WorkloadQuery> queries = {
      {{{"pid"}, {}}, 0.25}, {{{"sid"}, {}}, 0.15}, {{{"wid"}, {}}, 0.15},
      {{{"cid"}, {}}, 0.15}, {{{"tid"}, {}}, 0.10},
      {{{"cid"}, {{"tid", 0}}}, 0.10}, {{{"wid"}, {{"cid", 1}}}, 0.10},
  };

  std::printf("\n%-52s %12s %12s %8s\n", "query", "cache_ms", "scratch_ms",
              "agree");
  double expected_cache = 0, expected_scratch = 0;
  for (const auto& wq : queries) {
    auto t0 = Clock::now();
    auto from_cache = cache->Answer(wq.spec);
    double cache_ms = MsSince(t0);
    auto t1 = Clock::now();
    auto from_scratch = db.Query("invest", wq.spec, "ve(deg) ext.");
    double scratch_ms = MsSince(t1);
    if (!from_cache.ok() || !from_scratch.ok()) return 1;
    bool agree = fr::TablesEqual(**from_cache, *from_scratch->table, 1e-6);
    std::printf("%-52s %12.3f %12.3f %8s\n",
                wq.spec.ToString(schema->view).c_str(), cache_ms, scratch_ms,
                agree ? "yes" : "NO");
    expected_cache += wq.probability * cache_ms;
    expected_scratch += wq.probability * scratch_ms;
  }
  std::printf("\nexpected per-query cost: cache %.3f ms vs scratch %.3f ms\n",
              expected_cache, expected_scratch);
  std::printf("objective C(S) + k*E[cost]: cache wins for k > %.1f queries\n",
              expected_scratch > expected_cache
                  ? build_ms / (expected_scratch - expected_cache)
                  : -1.0);

  // Heuristic ablation: degree vs width elimination order for the cache.
  workload::VeCacheOptions width_options;
  width_options.use_width_heuristic = true;
  auto t0 = Clock::now();
  auto width_cache =
      workload::VeCache::Build(schema->view, db.catalog(), width_options);
  double width_build_ms = MsSince(t0);
  if (width_cache.ok()) {
    std::printf("\nheuristic ablation: degree cache %lld rows / %.2f ms vs "
                "width cache %lld rows / %.2f ms\n",
                static_cast<long long>(cache->TotalCacheRows()), build_ms,
                static_cast<long long>(width_cache->TotalCacheRows()),
                width_build_ms);
  }
  return 0;
}
