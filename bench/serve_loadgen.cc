// Loopback load generator for the network serving layer.
//
// Drives a NetServer (epoll wire front end over MpfServer admission control)
// on 127.0.0.1 with the supply-chain workload, in two disciplines:
//
//  * closed loop — N clients issue back-to-back queries; measures service
//    latency and saturated throughput;
//  * open loop — arrivals on a fixed schedule at a target rate, latency
//    measured from the scheduled arrival time (not the send time), so
//    queueing delay is charged to the server rather than hidden by a slow
//    client (no coordinated omission).
//
// Reports p50/p99 latency, throughput, and graceful-drain time; with
// --json the numbers land in BENCH_serving.json for the CI bench gate.
//
//   ./build/bench/serve_loadgen [--json BENCH_serving.json] [--scale S]
//       [--clients N] [--ops N] [--rate QPS] [--seconds S]

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "server/net/client.h"
#include "server/net/net_server.h"
#include "server/server.h"

using namespace mpfdb;
using bench::Clock;
using bench::MsSince;
using server::MpfServer;
using server::net::NetClient;
using server::net::NetServer;
using server::net::NetServerOptions;

namespace {

double Percentile(std::vector<double>& sorted_ms, double pct) {
  if (sorted_ms.empty()) return 0;
  size_t idx = static_cast<size_t>(pct / 100.0 *
                                   static_cast<double>(sorted_ms.size() - 1));
  return sorted_ms[idx];
}

double FlagValue(int argc, char** argv, const char* flag, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::JsonPathFromArgs(argc, argv);
  const double scale = FlagValue(argc, argv, "--scale", 0.01);
  const int clients = static_cast<int>(FlagValue(argc, argv, "--clients", 4));
  const int ops = static_cast<int>(FlagValue(argc, argv, "--ops", 400));
  const double rate = FlagValue(argc, argv, "--rate", 300);
  const double seconds = FlagValue(argc, argv, "--seconds", 2.0);

  Database db;
  workload::SupplyChainParams params;
  params.scale = scale;
  auto schema = workload::GenerateSupplyChain(params, db.catalog());
  if (!schema.ok() || !db.CreateMpfView(schema->view).ok()) return 1;

  server::ServerOptions sopts;
  sopts.max_concurrent = 4;
  MpfServer server(db, sopts);
  NetServerOptions nopts;
  nopts.io_threads = 2;
  NetServer net(server, nopts);
  if (!net.Start().ok()) {
    std::fprintf(stderr, "NetServer failed to start\n");
    return 1;
  }
  const uint16_t port = net.port();

  const std::vector<MpfQuerySpec> queries = {
      {{"cid"}, {}}, {{"tid"}, {}}, {{"wid"}, {}}, {{"cid"}, {{"tid", 0}}},
  };
  const std::string view = schema->view.name;

  bench::BenchJsonWriter json;
  std::printf("# Serving loadgen (scale %.3f, port %u)\n\n", scale, port);

  // --- closed loop ---------------------------------------------------------
  {
    std::atomic<uint64_t> errors{0};
    std::vector<std::vector<double>> lat(static_cast<size_t>(clients));
    auto t0 = Clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        auto client = NetClient::Connect(port);
        if (!client.ok()) return;
        (void)(*client)->set_recv_timeout_ms(60000);
        auto& my_lat = lat[static_cast<size_t>(c)];
        my_lat.reserve(static_cast<size_t>(ops));
        for (int op = 0; op < ops; ++op) {
          const MpfQuerySpec& spec =
              queries[static_cast<size_t>(op + c) % queries.size()];
          auto q0 = Clock::now();
          auto result = (*client)->Query(view, spec);
          if (result.ok()) {
            my_lat.push_back(MsSince(q0));
          } else {
            ++errors;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    double wall_ms = MsSince(t0);
    std::vector<double> all;
    for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    double qps = static_cast<double>(all.size()) / (wall_ms / 1e3);
    double p50 = Percentile(all, 50), p99 = Percentile(all, 99);
    std::printf("closed loop: %d clients x %d ops -> %.0f q/s, p50 %.3f ms, "
                "p99 %.3f ms, %llu errors\n",
                clients, ops, qps, p50, p99,
                static_cast<unsigned long long>(errors.load()));
    json.Add("net_serving/closed_loop",
             {{"clients", static_cast<double>(clients)},
              {"queries_per_sec", qps},
              {"p50_ms", p50},
              {"p99_ms", p99},
              {"errors", static_cast<double>(errors.load())}});
  }

  // --- open loop -----------------------------------------------------------
  {
    const double interval_ms = 1e3 / rate;
    const int total = static_cast<int>(rate * seconds);
    std::atomic<uint64_t> errors{0};
    std::vector<std::vector<double>> lat(static_cast<size_t>(clients));
    auto t0 = Clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        auto client = NetClient::Connect(port);
        if (!client.ok()) return;
        (void)(*client)->set_recv_timeout_ms(60000);
        auto& my_lat = lat[static_cast<size_t>(c)];
        // Thread c owns arrivals c, c+clients, c+2*clients, ...
        for (int k = c; k < total; k += clients) {
          auto scheduled =
              t0 + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double, std::milli>(
                           interval_ms * k));
          std::this_thread::sleep_until(scheduled);
          const MpfQuerySpec& spec =
              queries[static_cast<size_t>(k) % queries.size()];
          auto result = (*client)->Query(view, spec);
          if (result.ok()) {
            // Latency from the scheduled arrival: lateness of the sender
            // (a backed-up connection) counts against the server.
            my_lat.push_back(std::chrono::duration<double, std::milli>(
                                 Clock::now() - scheduled)
                                 .count());
          } else {
            ++errors;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    double wall_ms = MsSince(t0);
    std::vector<double> all;
    for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    double achieved = static_cast<double>(all.size()) / (wall_ms / 1e3);
    double p50 = Percentile(all, 50), p99 = Percentile(all, 99);
    std::printf("open loop:   %.0f q/s target for %.1f s -> %.0f q/s "
                "achieved, p50 %.3f ms, p99 %.3f ms, %llu errors\n",
                rate, seconds, achieved, p50, p99,
                static_cast<unsigned long long>(errors.load()));
    json.Add("net_serving/open_loop",
             {{"target_qps", rate},
              {"achieved_qps", achieved},
              {"p50_ms", p50},
              {"p99_ms", p99},
              {"errors", static_cast<double>(errors.load())}});
  }

  // --- graceful drain ------------------------------------------------------
  auto d0 = Clock::now();
  net.Shutdown();
  double drain_ms = MsSince(d0);
  std::printf("drain:       %.2f ms\n", drain_ms);
  json.Add("net_serving/drain", {{"drain_ms", drain_ms}});

  auto stats = net.stats();
  std::printf("\nserver: %llu results, %llu errors, %llu reads paused, "
              "%llu kicks, %llu protocol errors\n",
              static_cast<unsigned long long>(stats.results_sent),
              static_cast<unsigned long long>(stats.errors_sent),
              static_cast<unsigned long long>(stats.reads_paused),
              static_cast<unsigned long long>(stats.slow_reader_kicks),
              static_cast<unsigned long long>(stats.protocol_errors));

  if (!json_path.empty() && !json.WriteTo(json_path)) return 1;
  return 0;
}
