// Loopback load generator for the network serving layer.
//
// Drives a NetServer (epoll wire front end over MpfServer admission control)
// on 127.0.0.1 with the supply-chain workload, in two disciplines:
//
//  * closed loop — N clients issue back-to-back queries; measures service
//    latency and saturated throughput;
//  * open loop — arrivals on a fixed schedule at a target rate, latency
//    measured from the scheduled arrival time (not the send time), so
//    queueing delay is charged to the server rather than hidden by a slow
//    client (no coordinated omission).
//
// A third discipline exercises the MVCC write path: mixed closed-loop
// clients issue cached reads and measure-update commits at a configurable
// write fraction (default: both the 95/5 and 50/50 mixes), against a
// VE-cache kept fresh by incremental delta propagation. An in-process
// ablation then re-runs the 50/50 mix with incremental refresh disabled
// (every commit rebuilds the cache, the pre-MVCC behavior) and reports the
// update-throughput speedup.
//
// Reports p50/p99 latency, throughput, and graceful-drain time; with
// --json the numbers land in BENCH_serving.json for the CI bench gate.
//
//   ./build/bench/serve_loadgen [--json BENCH_serving.json] [--scale S]
//       [--clients N] [--ops N] [--rate QPS] [--seconds S]
//       [--write-frac F]

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "server/net/client.h"
#include "server/net/net_server.h"
#include "server/server.h"

using namespace mpfdb;
using bench::Clock;
using bench::MsSince;
using server::MpfServer;
using server::net::NetClient;
using server::net::NetServer;
using server::net::NetServerOptions;

namespace {

double Percentile(std::vector<double>& sorted_ms, double pct) {
  if (sorted_ms.empty()) return 0;
  size_t idx = static_cast<size_t>(pct / 100.0 *
                                   static_cast<double>(sorted_ms.size() - 1));
  return sorted_ms[idx];
}

double FlagValue(int argc, char** argv, const char* flag, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::JsonPathFromArgs(argc, argv);
  const double scale = FlagValue(argc, argv, "--scale", 0.01);
  const int clients = static_cast<int>(FlagValue(argc, argv, "--clients", 4));
  const int ops = static_cast<int>(FlagValue(argc, argv, "--ops", 400));
  const double rate = FlagValue(argc, argv, "--rate", 300);
  const double seconds = FlagValue(argc, argv, "--seconds", 2.0);
  const double write_frac = FlagValue(argc, argv, "--write-frac", -1);

  Database db;
  workload::SupplyChainParams params;
  params.scale = scale;
  auto schema = workload::GenerateSupplyChain(params, db.catalog());
  if (!schema.ok() || !db.CreateMpfView(schema->view).ok()) return 1;

  server::ServerOptions sopts;
  sopts.max_concurrent = 4;
  MpfServer server(db, sopts);
  NetServerOptions nopts;
  nopts.io_threads = 2;
  NetServer net(server, nopts);
  if (!net.Start().ok()) {
    std::fprintf(stderr, "NetServer failed to start\n");
    return 1;
  }
  const uint16_t port = net.port();

  const std::vector<MpfQuerySpec> queries = {
      {{"cid"}, {}}, {{"tid"}, {}}, {{"wid"}, {}}, {{"cid"}, {{"tid", 0}}},
  };
  const std::string view = schema->view.name;

  bench::BenchJsonWriter json;
  std::printf("# Serving loadgen (scale %.3f, port %u)\n\n", scale, port);

  // Every scheduled request must end in a recorded latency or a counted
  // error. A thread that bails early (e.g. Connect fails) leaves its share
  // of requests with no definite outcome — that is a loadgen failure, not a
  // quiet shrink of the sample set.
  bool outcome_gap = false;
  auto check_outcomes = [&outcome_gap](const char* phase, size_t scheduled,
                                       size_t recorded, uint64_t errors) {
    if (recorded + errors != scheduled) {
      std::fprintf(stderr,
                   "%s: %zu request(s) got no definite outcome "
                   "(%zu scheduled, %zu recorded, %llu errors)\n",
                   phase, scheduled - recorded - static_cast<size_t>(errors),
                   scheduled, recorded,
                   static_cast<unsigned long long>(errors));
      outcome_gap = true;
    }
  };

  // --- closed loop ---------------------------------------------------------
  {
    std::atomic<uint64_t> errors{0};
    std::vector<std::vector<double>> lat(static_cast<size_t>(clients));
    auto t0 = Clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        auto client = NetClient::Connect(port);
        if (!client.ok()) return;
        (void)(*client)->set_recv_timeout_ms(60000);
        auto& my_lat = lat[static_cast<size_t>(c)];
        my_lat.reserve(static_cast<size_t>(ops));
        for (int op = 0; op < ops; ++op) {
          const MpfQuerySpec& spec =
              queries[static_cast<size_t>(op + c) % queries.size()];
          auto q0 = Clock::now();
          auto result = (*client)->Query(view, spec);
          if (result.ok()) {
            my_lat.push_back(MsSince(q0));
          } else {
            ++errors;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    double wall_ms = MsSince(t0);
    std::vector<double> all;
    for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    double qps = static_cast<double>(all.size()) / (wall_ms / 1e3);
    double p50 = Percentile(all, 50), p99 = Percentile(all, 99);
    std::printf("closed loop: %d clients x %d ops -> %.0f q/s, p50 %.3f ms, "
                "p99 %.3f ms, %llu errors\n",
                clients, ops, qps, p50, p99,
                static_cast<unsigned long long>(errors.load()));
    json.Add("net_serving/closed_loop",
             {{"clients", static_cast<double>(clients)},
              {"queries_per_sec", qps},
              {"p50_ms", p50},
              {"p99_ms", p99},
              {"errors", static_cast<double>(errors.load())}});
    check_outcomes("closed loop",
                   static_cast<size_t>(clients) * static_cast<size_t>(ops),
                   all.size(), errors.load());
  }

  // --- open loop -----------------------------------------------------------
  {
    const double interval_ms = 1e3 / rate;
    const int total = static_cast<int>(rate * seconds);
    std::atomic<uint64_t> errors{0};
    std::vector<std::vector<double>> lat(static_cast<size_t>(clients));
    auto t0 = Clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        auto client = NetClient::Connect(port);
        if (!client.ok()) return;
        (void)(*client)->set_recv_timeout_ms(60000);
        auto& my_lat = lat[static_cast<size_t>(c)];
        // Thread c owns arrivals c, c+clients, c+2*clients, ...
        for (int k = c; k < total; k += clients) {
          auto scheduled =
              t0 + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double, std::milli>(
                           interval_ms * k));
          std::this_thread::sleep_until(scheduled);
          const MpfQuerySpec& spec =
              queries[static_cast<size_t>(k) % queries.size()];
          auto result = (*client)->Query(view, spec);
          if (result.ok()) {
            // Latency from the scheduled arrival: lateness of the sender
            // (a backed-up connection) counts against the server.
            my_lat.push_back(std::chrono::duration<double, std::milli>(
                                 Clock::now() - scheduled)
                                 .count());
          } else {
            ++errors;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    double wall_ms = MsSince(t0);
    std::vector<double> all;
    for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    double achieved = static_cast<double>(all.size()) / (wall_ms / 1e3);
    double p50 = Percentile(all, 50), p99 = Percentile(all, 99);
    std::printf("open loop:   %.0f q/s target for %.1f s -> %.0f q/s "
                "achieved, p50 %.3f ms, p99 %.3f ms, %llu errors\n",
                rate, seconds, achieved, p50, p99,
                static_cast<unsigned long long>(errors.load()));
    json.Add("net_serving/open_loop",
             {{"target_qps", rate},
              {"achieved_qps", achieved},
              {"p50_ms", p50},
              {"p99_ms", p99},
              {"errors", static_cast<double>(errors.load())}});
    check_outcomes("open loop", static_cast<size_t>(total), all.size(),
                   errors.load());
  }

  // --- mixed readers + writers ---------------------------------------------
  //
  // Cached reads race measure-update commits: the VE-cache answers reads at
  // the snapshot it was built for while the MVCC group-commit path applies
  // writes and incremental delta propagation keeps the cache fresh. Each
  // client owns one distinct row of the first relation, so concurrent
  // batches never merge on the same key, and values are strictly increasing
  // exact floats so no commit ever degenerates into a no-op.
  if (!db.BuildCache(view).ok()) {
    std::fprintf(stderr, "BuildCache failed\n");
    return 1;
  }
  {
    const std::string upd_table = schema->view.relations[0];
    auto upd = db.snapshot()->catalog.GetTable(upd_table);
    if (!upd.ok() || (*upd)->NumRows() < static_cast<size_t>(clients)) {
      std::fprintf(stderr, "update target too small\n");
      return 1;
    }
    std::vector<std::vector<VarValue>> rows;
    for (int c = 0; c < clients; ++c) {
      RowView r = (*upd)->Row(static_cast<size_t>(c));
      rows.emplace_back(r.vars, r.vars + r.arity);
    }

    struct Mix {
      double frac;
      const char* entry;
      const char* label;
    };
    std::vector<Mix> mixes;
    if (write_frac >= 0) {
      mixes.push_back({write_frac, "mixed_serving/custom", "custom"});
    } else {
      mixes.push_back({0.05, "mixed_serving/mix95_5", "95/5"});
      mixes.push_back({0.5, "mixed_serving/mix50_50", "50/50"});
    }
    for (size_t m = 0; m < mixes.size(); ++m) {
      const Mix& mix = mixes[m];
      std::atomic<uint64_t> errors{0};
      std::vector<std::vector<double>> rlat(static_cast<size_t>(clients));
      std::vector<std::vector<double>> wlat(static_cast<size_t>(clients));
      auto t0 = Clock::now();
      std::vector<std::thread> threads;
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c, m] {
          auto client = NetClient::Connect(port);
          if (!client.ok()) return;
          (void)(*client)->set_recv_timeout_ms(60000);
          auto& my_r = rlat[static_cast<size_t>(c)];
          auto& my_w = wlat[static_cast<size_t>(c)];
          // Values disjoint across clients and mixes, increasing in k; all
          // exact in binary so replay comparisons stay bitwise.
          const double base = 4096.0 + static_cast<double>(m) * 65536.0 +
                              static_cast<double>(c) * 256.0;
          for (int op = 0; op < ops; ++op) {
            // Deterministic interleave hitting the fraction exactly: op k is
            // a write iff floor((k+1)*frac) advances past floor(k*frac).
            bool is_write =
                static_cast<long>((op + 1) * mix.frac) >
                static_cast<long>(op * mix.frac);
            auto q0 = Clock::now();
            if (is_write) {
              auto ack = (*client)->Update(
                  upd_table, rows[static_cast<size_t>(c)],
                  base + static_cast<double>(op) * 0.125);
              if (ack.ok()) {
                my_w.push_back(MsSince(q0));
              } else {
                ++errors;
              }
            } else {
              const MpfQuerySpec& spec =
                  queries[static_cast<size_t>(op + c) % queries.size()];
              auto result = (*client)->Query(view, spec, "", 0,
                                             /*cached=*/true);
              if (result.ok()) {
                my_r.push_back(MsSince(q0));
              } else {
                ++errors;
              }
            }
          }
        });
      }
      for (auto& t : threads) t.join();
      double wall_ms = MsSince(t0);
      std::vector<double> reads, writes;
      for (auto& v : rlat) reads.insert(reads.end(), v.begin(), v.end());
      for (auto& v : wlat) writes.insert(writes.end(), v.begin(), v.end());
      std::sort(reads.begin(), reads.end());
      std::sort(writes.begin(), writes.end());
      double ups = static_cast<double>(writes.size()) / (wall_ms / 1e3);
      double rp50 = Percentile(reads, 50), rp99 = Percentile(reads, 99);
      double wp50 = Percentile(writes, 50), wp99 = Percentile(writes, 99);
      std::printf("mixed %-6s: %zu reads p50 %.3f ms p99 %.3f ms | "
                  "%zu updates %.0f u/s p50 %.3f ms p99 %.3f ms | "
                  "%llu errors\n",
                  mix.label, reads.size(), rp50, rp99, writes.size(), ups,
                  wp50, wp99,
                  static_cast<unsigned long long>(errors.load()));
      json.Add(mix.entry,
               {{"updates_per_sec", ups},
                {"read_p50_ms", rp50},
                {"read_p99_ms", rp99},
                {"update_p50_ms", wp50},
                {"update_p99_ms", wp99},
                {"errors", static_cast<double>(errors.load())}});
    }
  }

  // --- incremental-refresh ablation ----------------------------------------
  //
  // Same 50/50 alternating query/update loop against two fresh in-process
  // databases: one refreshing VE-caches through delta propagation, one with
  // incremental_cache_refresh=false so every commit rebuilds the cache from
  // scratch (the pre-MVCC copy-on-write behavior). The full-rebuild arm
  // runs far fewer iterations because each commit is O(view).
  {
    auto mixed_update_rate = [&](bool incremental, int iters) -> double {
      DatabaseOptions dopts;
      dopts.incremental_cache_refresh = incremental;
      Database adb(dopts);
      auto aschema = workload::GenerateSupplyChain(params, adb.catalog());
      if (!aschema.ok() || !adb.CreateMpfView(aschema->view).ok()) return 0;
      if (!adb.BuildCache(aschema->view.name).ok()) return 0;
      const std::string rel = aschema->view.relations[0];
      auto atable = adb.snapshot()->catalog.GetTable(rel);
      if (!atable.ok() || (*atable)->Empty()) return 0;
      RowView r0 = (*atable)->Row(0);
      std::vector<VarValue> row(r0.vars, r0.vars + r0.arity);
      int updates_done = 0;
      auto t0 = Clock::now();
      for (int k = 0; k < iters; ++k) {
        if (k % 2 == 0) {
          if (!adb.ApplyMeasureUpdate(rel, row,
                                      4096.0 +
                                          static_cast<double>(k) * 0.125)
                   .ok()) {
            return 0;
          }
          ++updates_done;
        } else {
          if (!adb.QueryCached(aschema->view.name, queries[0]).ok()) return 0;
        }
      }
      double secs = MsSince(t0) / 1e3;
      return secs > 0 ? static_cast<double>(updates_done) / secs : 0;
    };
    double inc_rate = mixed_update_rate(/*incremental=*/true, 400);
    double full_rate = mixed_update_rate(/*incremental=*/false, 40);
    double speedup = full_rate > 0 ? inc_rate / full_rate : 0;
    std::printf("ablation:    incremental %.0f u/s vs full rebuild %.0f u/s "
                "-> %.1fx\n",
                inc_rate, full_rate, speedup);
    json.Add("mixed_serving/refresh_ablation",
             {{"updates_per_sec_incremental", inc_rate},
              {"updates_per_sec_full_rebuild", full_rate},
              {"speedup_vs_full_refresh", speedup}});
  }

  // --- graceful drain ------------------------------------------------------
  auto d0 = Clock::now();
  net.Shutdown();
  double drain_ms = MsSince(d0);
  std::printf("drain:       %.2f ms\n", drain_ms);
  json.Add("net_serving/drain", {{"drain_ms", drain_ms}});

  auto stats = net.stats();
  std::printf("\nserver: %llu results, %llu errors, %llu reads paused, "
              "%llu kicks, %llu protocol errors\n",
              static_cast<unsigned long long>(stats.results_sent),
              static_cast<unsigned long long>(stats.errors_sent),
              static_cast<unsigned long long>(stats.reads_paused),
              static_cast<unsigned long long>(stats.slow_reader_kicks),
              static_cast<unsigned long long>(stats.protocol_errors));

  if (!json_path.empty() && !json.WriteTo(json_path)) return 1;
  return outcome_gap ? 1 : 0;
}
