// Table 2 — Ordering Heuristics Experiment Result.
//
// Paper setup: three synthetic views with N = 5 tables, all variables of
// domain size 10, all functional relations complete: (a) the star view of
// Figure 6, (b) the linear view with the common variable removed, (c) a
// multistar view with several common variables each connecting three tables.
// The query groups by the first variable of the linear section. For each of
// the degree / width / elim-cost heuristics (and the deg&width,
// deg&elim_cost combinations) the plan cost of plain VE and extended VE is
// reported, alongside the optimal nonlinear CS+ cost.
//
// Paper findings: on the star schema degree is catastrophic (it eliminates
// the common variable first, joining everything), width is best among plain
// heuristics, combinations repair degree, and every extended variant reaches
// the nonlinear CS+ optimum.
//
//   ./build/bench/table2_heuristic_schemas

#include <string>
#include <vector>

#include "bench_util.h"

using namespace mpfdb;
using bench::RunQuery;

int main() {
  std::printf("# Table 2: plan cost (cost-model units) by ordering heuristic "
              "and schema\n");
  std::printf("# N=5 tables, domain size 10, complete relations; query: "
              "group by v0\n\n");

  const std::vector<std::pair<std::string, std::string>> rows = {
      {"Nonlinear CS+", "cs+nonlinear"},
      {"VE(deg)", "ve(deg)"},
      {"VE(deg) ext.", "ve(deg) ext."},
      {"VE(width)", "ve(width)"},
      {"VE(width) ext.", "ve(width) ext."},
      {"VE(elim_cost)", "ve(elim_cost)"},
      {"VE(elim_cost) ext.", "ve(elim_cost) ext."},
      {"VE(deg&width)", "ve(deg&width)"},
      {"VE(deg&width) ext.", "ve(deg&width) ext."},
      {"VE(deg&elim_cost)", "ve(deg&elim_cost)"},
      {"VE(deg&elim_cost) ext.", "ve(deg&elim_cost) ext."},
      // Extension beyond the paper's evaluated set: the classic min-fill
      // triangulation heuristic.
      {"VE(min_fill) [ext of paper]", "ve(min_fill)"},
      {"VE(min_fill) ext.", "ve(min_fill) ext."},
  };
  const std::vector<workload::SyntheticKind> kinds = {
      workload::SyntheticKind::kStar, workload::SyntheticKind::kMultistar,
      workload::SyntheticKind::kLinear};

  // One database per schema kind, reused across optimizer rows.
  std::vector<Database> dbs(kinds.size());
  std::vector<std::string> query_vars;
  for (size_t k = 0; k < kinds.size(); ++k) {
    workload::SyntheticParams params;
    params.kind = kinds[k];
    params.num_tables = 5;
    params.domain_size = 10;
    auto schema = workload::GenerateSynthetic(params, dbs[k].catalog());
    if (!schema.ok() || !dbs[k].CreateMpfView(schema->view).ok()) return 1;
    if (k == 0) query_vars = {schema->linear_vars[0]};
  }

  std::printf("%-26s %14s %14s %14s\n", "Ordering", "star", "multistar",
              "linear");
  for (const auto& [label, spec] : rows) {
    std::printf("%-26s", label.c_str());
    for (size_t k = 0; k < kinds.size(); ++k) {
      std::string view = workload::SyntheticKindName(kinds[k]);
      auto stats = RunQuery(dbs[k], view, MpfQuerySpec{query_vars, {}}, spec,
                            /*execute=*/false);
      std::printf(" %14.2f", stats.plan_cost);
    }
    std::printf("\n");
  }
  std::printf("\n# Expected shape (paper): VE(deg) blows up on star; "
              "VE(width) best plain heuristic on star; every ext. row equals "
              "the Nonlinear CS+ row.\n");
  return 0;
}
