// Ablation — physical operator selection and execution mode.
//
// The paper's closing point in Section 5: unlike the GDL's memory-resident
// setting, a relational engine has several algorithms for the product join
// and the marginalization, and plan choice must be cost-based. Two layers of
// measurement here:
//
//  1. A hand-rolled execution-mode ablation: the hash-join + hash-marginalize
//     pipeline (and each operator alone) driven row-at-a-time, batch-at-a-time
//     (vectorized), and batch with packed 64-bit keys — the packed mode both
//     on the legacy std::unordered_map build and on the Swiss tables. This
//     quantifies the vectorized engine's speedup and backs the cost model's
//     CPU charges, with raw hash_table/* and mph_probe/* sections isolating
//     the table structures themselves.
//  2. A physical-planner demo: a three-relation chain where the cost-based
//     planner mixes join algorithms within one query (hash inner join,
//     sort-merge top join) and the sort-merge output order lets the final
//     marginalize skip its sort — timed against the forced-hash plan, with
//     the per-operator stats spine and max cardinality q-error recorded.
//  3. google-benchmark microbenches comparing hash vs sort-merge vs
//     nested-loop joins and hash vs sort marginalization (pass any
//     --benchmark* flag to run these instead).
//
//   ./build/bench/ablate_exec_operators [--json BENCH_exec.json] [--threads N]
//   ./build/bench/ablate_exec_operators --benchmark_filter=...
//
// --threads N restricts the parallel-scaling sweep to a single worker count;
// by default the headline pipeline is swept at 1/2/4/8 threads and the
// per-count timings land in BENCH_exec.json under pipeline_scaling/*.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/database.h"
#include "cost/cost_model.h"
#include "exec/executor.h"
#include "server/server.h"
#include "exec/hash_table.h"
#include "exec/operator.h"
#include "exec/thread_pool.h"
#include "fr/algebra.h"
#include "opt/faq.h"
#include "plan/physical.h"
#include "plan/plan.h"
#include "storage/catalog.h"
#include "util/query_context.h"
#include "util/rng.h"
#include "workload/generators.h"

using namespace mpfdb;
using namespace mpfdb::exec;

namespace {

// Two joinable functional relations a(x, y) and b(y, z) with `rows` rows
// each over domains sized so that matches are plentiful but not quadratic.
std::pair<TablePtr, TablePtr> MakeJoinInputs(int64_t rows) {
  Rng rng(42);
  int64_t y_domain = std::max<int64_t>(4, rows / 16);
  auto a = std::make_shared<Table>("a", Schema({"x", "y"}, "f"));
  auto b = std::make_shared<Table>("b", Schema({"y", "z"}, "f"));
  for (int64_t i = 0; i < rows; ++i) {
    a->AppendRow({static_cast<VarValue>(i),
                  static_cast<VarValue>(rng.UniformInt(0, y_domain - 1))},
                 rng.UniformDouble(0.5, 2.0));
    b->AppendRow({static_cast<VarValue>(rng.UniformInt(0, y_domain - 1)),
                  static_cast<VarValue>(i)},
                 rng.UniformDouble(0.5, 2.0));
  }
  return {a, b};
}

TablePtr MakeAggInput(int64_t rows) {
  Rng rng(7);
  int64_t group_domain = std::max<int64_t>(4, rows / 64);
  auto t = std::make_shared<Table>("t", Schema({"g", "u"}, "f"));
  for (int64_t i = 0; i < rows; ++i) {
    t->AppendRow({static_cast<VarValue>(rng.UniformInt(0, group_domain - 1)),
                  static_cast<VarValue>(i)},
                 rng.UniformDouble(0.0, 1.0));
  }
  return t;
}

// --- Execution-mode ablation -------------------------------------------------

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "ablation failed: %s\n", status.ToString().c_str());
    std::abort();
  }
}

// Drains `op` to completion in the given mode without materializing its
// output, so the measurement isolates operator throughput. Returns the
// number of rows the operator emitted.
size_t Drain(PhysicalOperator& op, bool batch_mode) {
  Check(op.Open());
  size_t rows = 0;
  if (batch_mode) {
    RowBatch batch;
    while (true) {
      auto has = op.NextBatch(&batch);
      Check(has.status());
      if (!*has) break;
      rows += batch.num_rows();
      benchmark::DoNotOptimize(batch.measures()[0]);
    }
  } else {
    Row row;
    while (true) {
      auto has = op.Next(&row);
      Check(has.status());
      if (!*has) break;
      ++rows;
      benchmark::DoNotOptimize(row.measure);
    }
  }
  op.Close();
  return rows;
}

struct Mode {
  const char* name;
  bool batch;
  bool packed;
  HashImpl hash;
  bool mph;
};

// `batch_packed` pins the legacy std::unordered_map build (and no perfect
// indexes) so the committed baseline stays comparable across commits;
// `batch_packed_swiss` runs the same pipeline on the Swiss tables with
// dense perfect-index join heads and carries the headline speedup.
constexpr Mode kModes[] = {
    {"row", false, false, HashImpl::kSwiss, false},
    {"batch", true, false, HashImpl::kSwiss, false},
    {"batch_packed", true, true, HashImpl::kStd, false},
    {"batch_packed_swiss", true, true, HashImpl::kSwiss, true},
};

struct ModeResult {
  double seconds = 0;
  size_t out_rows = 0;
};

// Runs `make_tree(catalog_or_null)` `reps` times in the given mode and keeps
// the fastest wall time. With `governed` set, a QueryContext (accounting and
// polling active, no limit or deadline) is bound to the tree, measuring the
// resource governor's steady-state overhead.
template <typename MakeTree>
ModeResult Measure(const MakeTree& make_tree, const Catalog* catalog,
                   const Mode& mode, int reps = 3, bool governed = false) {
  ModeResult best;
  for (int rep = 0; rep < reps; ++rep) {
    OperatorPtr root =
        make_tree(mode.packed ? catalog : nullptr, mode.hash, mode.mph);
    QueryContext ctx;
    if (governed) root->BindContext(&ctx);
    auto start = bench::Clock::now();
    size_t rows = Drain(*root, mode.batch);
    double secs = bench::MsSince(start) / 1e3;
    if (rep == 0 || secs < best.seconds) best = {secs, rows};
  }
  return best;
}

// Measures one tree shape under all four modes, prints the comparison, and
// records input-rows/sec per mode in the json writer.
template <typename MakeTree>
void AblateModes(const std::string& label, int64_t input_rows,
                 const MakeTree& make_tree, const Catalog& catalog,
                 bench::BenchJsonWriter* json) {
  double row_secs = 0;
  std::printf("%s (input %lld rows)\n", label.c_str(),
              static_cast<long long>(input_rows));
  for (const Mode& mode : kModes) {
    ModeResult r = Measure(make_tree, &catalog, mode);
    double ops = static_cast<double>(input_rows) / r.seconds;
    if (!mode.batch) row_secs = r.seconds;
    double speedup = row_secs / r.seconds;
    std::printf("  %-18s %8.1f ms   %12.3e rows/s   %5.2fx  (%zu out)\n",
                mode.name, r.seconds * 1e3, ops, speedup, r.out_rows);
    json->Add(label + "/" + mode.name, {{"input_rows", double(input_rows)},
                                        {"seconds", r.seconds},
                                        {"ops_per_sec", ops},
                                        {"speedup_vs_row", speedup},
                                        {"output_rows", double(r.out_rows)}});
  }
}

int RunModeAblation(const std::string& json_path,
                    const std::vector<size_t>& thread_counts) {
  bench::BenchJsonWriter json;
  Semiring semiring = Semiring::SumProduct();

  // The headline pipeline: a(x,y) join b(y,z), marginalized onto y. Input
  // 2 * 10^6 rows; the join expands to ~16x that before the aggregation
  // collapses it to |dom(y)| groups.
  {
    const int64_t rows = 1000000;
    auto [a, b] = MakeJoinInputs(rows);
    Catalog catalog;
    Check(catalog.RegisterVariable("x", rows));
    Check(catalog.RegisterVariable("y", std::max<int64_t>(4, rows / 16)));
    Check(catalog.RegisterVariable("z", rows));
    auto make_tree = [&](const Catalog* cat, HashImpl hash,
                         bool mph) -> OperatorPtr {
      auto join = std::make_unique<HashProductJoin>(
          std::make_unique<SeqScan>(a), std::make_unique<SeqScan>(b), semiring,
          cat, hash, mph);
      return std::make_unique<HashMarginalize>(std::move(join),
                                               std::vector<std::string>{"y"},
                                               semiring, cat, hash);
    };
    AblateModes("pipeline_join_agg", 2 * rows, make_tree, catalog, &json);
  }

  // Hash join alone.
  {
    const int64_t rows = 1 << 18;
    auto [a, b] = MakeJoinInputs(rows);
    Catalog catalog;
    Check(catalog.RegisterVariable("x", rows));
    Check(catalog.RegisterVariable("y", std::max<int64_t>(4, rows / 16)));
    Check(catalog.RegisterVariable("z", rows));
    auto make_tree = [&](const Catalog* cat, HashImpl hash,
                         bool mph) -> OperatorPtr {
      return std::make_unique<HashProductJoin>(std::make_unique<SeqScan>(a),
                                               std::make_unique<SeqScan>(b),
                                               semiring, cat, hash, mph);
    };
    AblateModes("hash_join", 2 * rows, make_tree, catalog, &json);
  }

  // Hash marginalize alone.
  {
    const int64_t rows = 1 << 20;
    TablePtr t = MakeAggInput(rows);
    Catalog catalog;
    Check(catalog.RegisterVariable("g", std::max<int64_t>(4, rows / 64)));
    Check(catalog.RegisterVariable("u", rows));
    auto make_tree = [&](const Catalog* cat, HashImpl hash,
                         bool /*mph*/) -> OperatorPtr {
      return std::make_unique<HashMarginalize>(std::make_unique<SeqScan>(t),
                                               std::vector<std::string>{"g"},
                                               semiring, cat, hash);
    };
    AblateModes("hash_marginalize", rows, make_tree, catalog, &json);
  }

  // Raw hash-table ablation: the Swiss table against std::unordered_map on
  // the three access patterns the execution layer leans on — build (inserts
  // over a ~4x key domain), probe (point lookups, roughly half hits), and
  // fold (group-and-accumulate into a small domain). Packed 64-bit keys.
  {
    const size_t n = 1 << 20;
    Rng rng(11);
    std::vector<uint64_t> keys(n);
    for (auto& k : keys) {
      k = static_cast<uint64_t>(
          rng.UniformInt(0, static_cast<int64_t>(n) * 4 - 1));
    }
    std::vector<uint64_t> probes(n);
    for (auto& k : probes) {
      k = static_cast<uint64_t>(
          rng.UniformInt(0, static_cast<int64_t>(n) * 8 - 1));
    }
    const uint64_t groups = n / 64;

    auto best_of = [](auto&& fn) {
      double best = 0;
      for (int rep = 0; rep < 5; ++rep) {
        auto start = bench::Clock::now();
        fn();
        double secs = bench::MsSince(start) / 1e3;
        if (rep == 0 || secs < best) best = secs;
      }
      return best;
    };

    std::unordered_map<uint64_t, double> std_map;
    std_map.reserve(n);
    SwissTable<double> swiss_map;
    swiss_map.Reserve(n);
    for (uint64_t k : keys) {
      std_map.emplace(k, 1.0);
      swiss_map.FindOrInsert(k, 1.0);
    }

    struct Pattern {
      const char* name;
      double std_secs;
      double swiss_secs;
    };
    const Pattern patterns[] = {
        {"build",
         best_of([&] {
           std::unordered_map<uint64_t, double> m;
           m.reserve(n);
           for (uint64_t k : keys) m.emplace(k, 1.0);
           benchmark::DoNotOptimize(m.size());
         }),
         best_of([&] {
           SwissTable<double> m;
           m.Reserve(n);
           for (uint64_t k : keys) m.FindOrInsert(k, 1.0);
           benchmark::DoNotOptimize(m.size());
         })},
        {"probe",
         best_of([&] {
           size_t hits = 0;
           for (uint64_t k : probes) hits += std_map.find(k) != std_map.end();
           benchmark::DoNotOptimize(hits);
         }),
         best_of([&] {
           size_t hits = 0;
           for (uint64_t k : probes) hits += swiss_map.Find(k) != nullptr;
           benchmark::DoNotOptimize(hits);
         })},
        {"fold",
         best_of([&] {
           std::unordered_map<uint64_t, double> m;
           m.reserve(groups);
           for (uint64_t k : keys) m[k % groups] += 1.0;
           benchmark::DoNotOptimize(m.size());
         }),
         best_of([&] {
           SwissTable<double> m;
           m.Reserve(groups);
           for (uint64_t k : keys) *m.FindOrInsert(k % groups, 0.0).first += 1.0;
           benchmark::DoNotOptimize(m.size());
         })},
    };
    std::printf("hash_table (%zu keys)\n", n);
    for (const Pattern& p : patterns) {
      double std_ops = static_cast<double>(n) / p.std_secs;
      double swiss_ops = static_cast<double>(n) / p.swiss_secs;
      double speedup = p.std_secs / p.swiss_secs;
      std::printf(
          "  %-6s std %12.3e ops/s   swiss %12.3e ops/s   %5.2fx\n", p.name,
          std_ops, swiss_ops, speedup);
      json.Add("hash_table/" + std::string(p.name) + "_std",
               {{"keys", double(n)},
                {"seconds", p.std_secs},
                {"ops_per_sec", std_ops}});
      json.Add("hash_table/" + std::string(p.name) + "_swiss",
               {{"keys", double(n)},
                {"seconds", p.swiss_secs},
                {"ops_per_sec", swiss_ops},
                {"speedup_vs_std", speedup}});
    }
  }

  // Minimal-perfect-hash probe: distinct keys built once (the epoch-commit
  // pattern behind the VE-cache base-row index), then probed repeatedly.
  // Build throughput is recorded alongside probe speed against both generic
  // tables; every probe hits, matching the maintenance-path access mix.
  {
    const size_t n = 1 << 18;
    std::vector<uint64_t> keys(n);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ull + 7;
    }

    PerfectHashIndex mph;
    auto start = bench::Clock::now();
    if (!PerfectHashIndex::Build(keys, /*epoch=*/1, &mph)) {
      std::fprintf(stderr, "mph_probe: perfect-hash build failed\n");
      std::abort();
    }
    double build_secs = bench::MsSince(start) / 1e3;

    std::unordered_map<uint64_t, size_t> std_map;
    std_map.reserve(n);
    SwissTable<size_t> swiss_map;
    swiss_map.Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      std_map.emplace(keys[i], i);
      swiss_map.FindOrInsert(keys[i], i);
    }

    auto best_of = [&](auto&& fn) {
      double best = 0;
      for (int rep = 0; rep < 5; ++rep) {
        auto t0 = bench::Clock::now();
        fn();
        double secs = bench::MsSince(t0) / 1e3;
        if (rep == 0 || secs < best) best = secs;
      }
      return best;
    };
    double probe_std = best_of([&] {
      size_t sum = 0;
      for (uint64_t k : keys) sum += std_map.find(k)->second;
      benchmark::DoNotOptimize(sum);
    });
    double probe_swiss = best_of([&] {
      size_t sum = 0;
      for (uint64_t k : keys) sum += *swiss_map.Find(k);
      benchmark::DoNotOptimize(sum);
    });
    double probe_mph = best_of([&] {
      size_t sum = 0;
      for (uint64_t k : keys) sum += mph.Lookup(k, /*epoch=*/1);
      benchmark::DoNotOptimize(sum);
    });

    std::printf(
        "mph_probe (%zu keys): build %8.1f ms (%.1f B/key)   std %12.3e "
        "ops/s   swiss %12.3e ops/s   mph %12.3e ops/s\n",
        n, build_secs * 1e3, mph.BytesPerKey(),
        static_cast<double>(n) / probe_std, static_cast<double>(n) / probe_swiss,
        static_cast<double>(n) / probe_mph);
    json.Add("mph_probe/build", {{"keys", double(n)},
                                 {"seconds", build_secs},
                                 {"keys_per_sec", double(n) / build_secs},
                                 {"bytes_per_key", mph.BytesPerKey()}});
    json.Add("mph_probe/probe_std",
             {{"keys", double(n)},
              {"seconds", probe_std},
              {"ops_per_sec", double(n) / probe_std}});
    json.Add("mph_probe/probe_swiss",
             {{"keys", double(n)},
              {"seconds", probe_swiss},
              {"ops_per_sec", double(n) / probe_swiss},
              {"speedup_vs_std", probe_std / probe_swiss}});
    json.Add("mph_probe/probe_mph",
             {{"keys", double(n)},
              {"seconds", probe_mph},
              {"ops_per_sec", double(n) / probe_mph},
              {"speedup_vs_std", probe_std / probe_mph}});
  }

  // Resource-governor overhead: the headline pipeline re-run with a bound
  // QueryContext (memory accounting + cancellation/deadline polling, no
  // limits). The acceptance bar is <= 5% over the ungoverned run per mode.
  {
    const int64_t rows = 1000000;
    auto [a, b] = MakeJoinInputs(rows);
    Catalog catalog;
    Check(catalog.RegisterVariable("x", rows));
    Check(catalog.RegisterVariable("y", std::max<int64_t>(4, rows / 16)));
    Check(catalog.RegisterVariable("z", rows));
    auto make_tree = [&](const Catalog* cat, HashImpl hash,
                         bool mph) -> OperatorPtr {
      auto join = std::make_unique<HashProductJoin>(
          std::make_unique<SeqScan>(a), std::make_unique<SeqScan>(b), semiring,
          cat, hash, mph);
      return std::make_unique<HashMarginalize>(std::move(join),
                                               std::vector<std::string>{"y"},
                                               semiring, cat, hash);
    };
    std::printf("governed_overhead (input %lld rows)\n",
                static_cast<long long>(2 * rows));
    for (const Mode& mode : kModes) {
      // Interleave ungoverned/governed reps so machine-load drift hits both
      // sides equally; best-of over the pairs then cancels it out.
      ModeResult plain, governed;
      for (int rep = 0; rep < 7; ++rep) {
        ModeResult p = Measure(make_tree, &catalog, mode, 1);
        ModeResult g = Measure(make_tree, &catalog, mode, 1, /*governed=*/true);
        if (rep == 0 || p.seconds < plain.seconds) plain = p;
        if (rep == 0 || g.seconds < governed.seconds) governed = g;
      }
      double overhead = governed.seconds / plain.seconds - 1.0;
      std::printf("  %-13s %8.1f ms -> %8.1f ms   %+5.2f%%\n", mode.name,
                  plain.seconds * 1e3, governed.seconds * 1e3,
                  overhead * 100.0);
      json.Add("governed_overhead/" + std::string(mode.name),
               {{"input_rows", double(2 * rows)},
                {"ungoverned_seconds", plain.seconds},
                {"governed_seconds", governed.seconds},
                {"overhead_frac", overhead}});
    }
  }

  // Thread scaling: the headline pipeline in batch+packed mode driven with a
  // worker pool of each requested size. One thread reproduces the serial
  // engine; before timing, each count's materialized result is checked
  // bit-identical against the single-thread output (tolerance 0.0).
  {
    const int64_t rows = 1000000;
    auto [a, b] = MakeJoinInputs(rows);
    Catalog catalog;
    Check(catalog.RegisterVariable("x", rows));
    Check(catalog.RegisterVariable("y", std::max<int64_t>(4, rows / 16)));
    Check(catalog.RegisterVariable("z", rows));
    auto make_tree = [&](const Catalog* cat, HashImpl hash,
                         bool mph) -> OperatorPtr {
      auto join = std::make_unique<HashProductJoin>(
          std::make_unique<SeqScan>(a), std::make_unique<SeqScan>(b), semiring,
          cat, hash, mph);
      return std::make_unique<HashMarginalize>(std::move(join),
                                               std::vector<std::string>{"y"},
                                               semiring, cat, hash);
    };
    std::printf("pipeline_scaling (input %lld rows, batch_packed)\n",
                static_cast<long long>(2 * rows));
    double one_thread_secs = 0;
    TablePtr golden;
    for (size_t threads : thread_counts) {
      ThreadPool pool(threads);
      // Parity check for this worker count.
      {
        OperatorPtr root = make_tree(&catalog, HashImpl::kSwiss, true);
        QueryContext ctx;
        ctx.set_thread_pool(&pool);
        root->BindContext(&ctx);
        auto result = RunBatch(*root, "out", &ctx);
        Check(result.status());
        std::vector<size_t> all((*result)->schema().arity());
        std::iota(all.begin(), all.end(), 0);
        (*result)->SortByVariables(all);
        if (golden == nullptr) {
          golden = *result;
        } else if (!fr::TablesEqual(*golden, **result, /*tolerance=*/0.0)) {
          std::fprintf(stderr,
                       "pipeline_scaling: %zu-thread result differs from the "
                       "baseline\n",
                       threads);
          std::abort();
        }
      }
      ModeResult best;
      for (int rep = 0; rep < 3; ++rep) {
        OperatorPtr root = make_tree(&catalog, HashImpl::kSwiss, true);
        QueryContext ctx;
        ctx.set_thread_pool(&pool);
        root->BindContext(&ctx);
        auto start = bench::Clock::now();
        size_t out = Drain(*root, /*batch_mode=*/true);
        double secs = bench::MsSince(start) / 1e3;
        if (rep == 0 || secs < best.seconds) best = {secs, out};
      }
      if (threads == 1) one_thread_secs = best.seconds;
      double speedup =
          one_thread_secs > 0 ? one_thread_secs / best.seconds : 1.0;
      std::printf("  threads=%-4zu %8.1f ms   %5.2fx vs 1 thread  (%zu out)\n",
                  threads, best.seconds * 1e3, speedup, best.out_rows);
      // hardware_threads keys the interpretation: counts beyond the
      // machine's cores only measure oversubscription.
      json.Add("pipeline_scaling/threads_" + std::to_string(threads),
               {{"input_rows", double(2 * rows)},
                {"threads", double(threads)},
                {"hardware_threads",
                 double(std::thread::hardware_concurrency())},
                {"seconds", best.seconds},
                {"speedup_vs_1thread", speedup},
                {"output_rows", double(best.out_rows)}});
    }
  }

  // Physical planner: a three-relation chain a(x,y) |x| b(y,z) |x| c(z,w)
  // marginalized onto z, with honest catalog estimates. The planner mixes
  // algorithms in this single query — the inner join stays hash, the top
  // join goes sort-merge because its (z) order lets GroupBy{z} stream — and
  // the chosen plan is timed against the forced-hash plan it must match bit
  // for bit.
  {
    Rng rng(3);
    Catalog catalog;
    Check(catalog.RegisterVariable("x", 2000));
    Check(catalog.RegisterVariable("y", 20));
    Check(catalog.RegisterVariable("z", 20));
    Check(catalog.RegisterVariable("w", 2000));
    auto a = std::make_shared<Table>("a", Schema({"x", "y"}, "f"));
    auto c = std::make_shared<Table>("c", Schema({"z", "w"}, "f"));
    for (int64_t i = 0; i < 2000; ++i) {
      a->AppendRow({static_cast<VarValue>(i),
                    static_cast<VarValue>(rng.UniformInt(0, 19))},
                   rng.UniformDouble(0.5, 2.0));
      c->AppendRow({static_cast<VarValue>(rng.UniformInt(0, 19)),
                    static_cast<VarValue>(i)},
                   rng.UniformDouble(0.5, 2.0));
    }
    auto b = std::make_shared<Table>("b", Schema({"y", "z"}, "f"));
    for (VarValue y = 0; y < 20; ++y) {
      for (VarValue z = 0; z < 20; ++z) {
        b->AppendRow({y, z}, rng.UniformDouble(0.5, 2.0));
      }
    }
    Check(catalog.RegisterTable(a));
    Check(catalog.RegisterTable(b));
    Check(catalog.RegisterTable(c));

    PageCostModel cost_model(100.0);
    PlanBuilder builder(catalog, cost_model);
    auto plan = [&]() -> PlanPtr {
      auto sa = builder.Scan("a");
      Check(sa.status());
      auto sb = builder.Scan("b");
      Check(sb.status());
      auto sc = builder.Scan("c");
      Check(sc.status());
      auto inner = builder.Join(*sa, *sb);
      Check(inner.status());
      auto top = builder.Join(*inner, *sc);
      Check(top.status());
      auto root = builder.GroupBy(*top, {"z"});
      Check(root.status());
      return *root;
    }();

    const Semiring semiring = Semiring::SumProduct();
    exec::Executor chosen_exec(catalog, semiring, exec::ExecOptions{});
    exec::Executor hash_exec(
        catalog, semiring,
        exec::ExecOptions{.join = exec::JoinAlgorithm::kHash,
                          .agg = exec::AggAlgorithm::kHash});

    auto physical = chosen_exec.PlanPhysical(*plan);
    Check(physical.status());
    std::printf("physical_planner chosen plan:\n%s",
                ExplainPhysicalPlan(**physical).c_str());
    const PhysicalPlanNode& root = **physical;
    const bool mixed = root.agg == AggAlgorithm::kSort &&
                       root.skip_sort_input &&
                       root.left->join == JoinAlgorithm::kSortMerge &&
                       root.left->left->join == JoinAlgorithm::kHash;
    if (!mixed) {
      std::fprintf(stderr,
                   "physical_planner: expected a mixed-algorithm plan\n");
      std::abort();
    }

    auto time_exec = [&](const exec::Executor& executor) {
      double best = 0;
      TablePtr out;
      for (int rep = 0; rep < 3; ++rep) {
        auto start = bench::Clock::now();
        auto result = executor.Execute(*plan, "out");
        double secs = bench::MsSince(start) / 1e3;
        Check(result.status());
        if (rep == 0 || secs < best) best = secs;
        out = *result;
      }
      return std::make_pair(best, out);
    };
    auto [chosen_secs, chosen_out] = time_exec(chosen_exec);
    auto [hash_secs, hash_out] = time_exec(hash_exec);
    if (!fr::TablesEqual(*chosen_out, *hash_out, /*tolerance=*/0.0)) {
      std::fprintf(stderr,
                   "physical_planner: chosen plan differs from forced-hash\n");
      std::abort();
    }
    std::printf(
        "  chosen (mixed)  %8.1f ms   forced-hash %8.1f ms   %5.2fx\n",
        chosen_secs * 1e3, hash_secs * 1e3, hash_secs / chosen_secs);
    json.Add("physical_planner/mixed_plan",
             {{"chosen_seconds", chosen_secs},
              {"forced_hash_seconds", hash_secs},
              {"speedup_vs_forced_hash", hash_secs / chosen_secs},
              {"output_rows", double(chosen_out->NumRows())},
              {"top_join_sort_merge", 1.0},
              {"inner_join_hash", 1.0},
              {"agg_sort_presorted", 1.0}});

    // Per-operator stats spine + max cardinality q-error over the same
    // query, from EXPLAIN ANALYZE's machinery.
    auto analyzed = chosen_exec.ExecuteAnalyze(*plan, "out");
    Check(analyzed.status());
    double max_q = 0;
    size_t spill_parts = 0, peak_bytes = 0;
    for (const auto& [logical, stats] : analyzed->stats) {
      if (logical->est_card > 0 && stats.output_rows > 0) {
        double actual = static_cast<double>(stats.output_rows);
        max_q = std::max(max_q, std::max(logical->est_card / actual,
                                         actual / logical->est_card));
      }
      spill_parts += stats.spill_partitions;
      peak_bytes = std::max(peak_bytes, stats.peak_bytes);
    }
    std::printf("physical_planner analyze (max q-error %.2f):\n%s", max_q,
                exec::ExplainAnalyzePlan(*analyzed->physical, analyzed->stats)
                    .c_str());
    json.Add("physical_planner/stats",
             {{"operators", double(analyzed->stats.size())},
              {"max_q_error", max_q},
              {"spill_partitions", double(spill_parts)},
              {"max_peak_bytes", double(peak_bytes)}});
  }

  // Interesting-order reuse in isolation: sort-marginalize over input that
  // already arrives sorted by the group key, with and without the planner's
  // skip-sort flag. The gap is the measured win of an avoided re-sort.
  {
    const int64_t rows = 1 << 20;
    Rng rng(17);
    const int64_t group_domain = std::max<int64_t>(4, rows / 64);
    auto t = std::make_shared<Table>("t", Schema({"g", "u"}, "f"));
    const int64_t per_group = rows / group_domain;
    for (int64_t g = 0; g < group_domain; ++g) {
      for (int64_t i = 0; i < per_group; ++i) {
        t->AppendRow({static_cast<VarValue>(g), static_cast<VarValue>(i)},
                     rng.UniformDouble(0.0, 1.0));
      }
    }
    const Semiring semiring = Semiring::SumProduct();
    auto measure_agg = [&](bool presorted) {
      double best = 0;
      for (int rep = 0; rep < 5; ++rep) {
        SortMarginalize agg(std::make_unique<SeqScan>(t),
                            std::vector<std::string>{"g"}, semiring,
                            presorted);
        auto start = bench::Clock::now();
        Drain(agg, /*batch_mode=*/true);
        double secs = bench::MsSince(start) / 1e3;
        if (rep == 0 || secs < best) best = secs;
      }
      return best;
    };
    double resort = measure_agg(false);
    double skip = measure_agg(true);
    std::printf(
        "order_reuse sort_marginalize (input %lld rows): re-sort %8.1f ms, "
        "presorted skip %8.1f ms   %5.2fx\n",
        static_cast<long long>(rows), resort * 1e3, skip * 1e3,
        resort / skip);
    json.Add("physical_planner/order_reuse",
             {{"input_rows", double(rows)},
              {"resort_seconds", resort},
              {"presorted_seconds", skip},
              {"speedup_from_skip", resort / skip}});
  }

  // Concurrent serving: the shared plan cache's win on a repeated workload,
  // and admission-controlled multi-session throughput. The served database
  // is the planner chain a(x,y) |x| b(y,z) |x| c(z,w); the workload cycles
  // a handful of marginal/selection queries, so a cache-enabled server plans
  // each shape once and replays the memoized physical tree thereafter.
  {
    Rng rng(5);
    Database db;
    Check(db.catalog().RegisterVariable("x", 2000));
    Check(db.catalog().RegisterVariable("y", 20));
    Check(db.catalog().RegisterVariable("z", 20));
    Check(db.catalog().RegisterVariable("w", 2000));
    auto a = std::make_shared<Table>("a", Schema({"x", "y"}, "f"));
    auto c = std::make_shared<Table>("c", Schema({"z", "w"}, "f"));
    for (int64_t i = 0; i < 2000; ++i) {
      a->AppendRow({static_cast<VarValue>(i),
                    static_cast<VarValue>(rng.UniformInt(0, 19))},
                   rng.UniformDouble(0.5, 2.0));
      c->AppendRow({static_cast<VarValue>(rng.UniformInt(0, 19)),
                    static_cast<VarValue>(i)},
                   rng.UniformDouble(0.5, 2.0));
    }
    auto b = std::make_shared<Table>("b", Schema({"y", "z"}, "f"));
    for (VarValue y = 0; y < 20; ++y) {
      for (VarValue z = 0; z < 20; ++z) {
        b->AppendRow({y, z}, rng.UniformDouble(0.5, 2.0));
      }
    }
    Check(db.CreateTable(a));
    Check(db.CreateTable(b));
    Check(db.CreateTable(c));
    Check(db.CreateMpfView({"v", {"a", "b", "c"}, Semiring::SumProduct()}));

    const std::vector<MpfQuerySpec> workload = {
        MpfQuerySpec{{"y"}, {}},
        MpfQuerySpec{{"z"}, {}},
        MpfQuerySpec{{"y", "z"}, {}},
        MpfQuerySpec{{"z"}, {{"y", 3}}},
        MpfQuerySpec{{"y"}, {{"z", 5}}},
    };
    auto run_stream = [&](int reps) {
      for (int rep = 0; rep < reps; ++rep) {
        for (const auto& spec : workload) {
          auto result = db.Query("v", spec);
          Check(result.status());
          benchmark::DoNotOptimize(result->table);
        }
      }
    };

    const int kReps = 20;
    const double total_queries = double(kReps) * double(workload.size());
    db.set_plan_cache_enabled(false);
    run_stream(1);  // warm-up: allocators, page cache
    auto start = bench::Clock::now();
    run_stream(kReps);
    double nocache_secs = bench::MsSince(start) / 1e3;

    db.set_plan_cache_enabled(true);
    auto before = db.plan_cache().stats();
    start = bench::Clock::now();
    run_stream(kReps);
    double cache_secs = bench::MsSince(start) / 1e3;
    auto after = db.plan_cache().stats();
    double lookups = double((after.hits - before.hits) +
                            (after.misses - before.misses));
    double hit_rate =
        lookups == 0 ? 0.0 : double(after.hits - before.hits) / lookups;
    std::printf(
        "serving plan_cache (%d x %zu queries): no-cache %8.1f ms, cached "
        "%8.1f ms   %5.2fx   hit rate %.3f\n",
        kReps, workload.size(), nocache_secs * 1e3, cache_secs * 1e3,
        nocache_secs / cache_secs, hit_rate);
    json.Add("serving/plan_cache",
             {{"queries", total_queries},
              {"nocache_seconds", nocache_secs},
              {"cached_seconds", cache_secs},
              {"speedup_from_cache", nocache_secs / cache_secs},
              {"hit_rate", hit_rate}});

    // Multi-session throughput through the admission controller. Bounded by
    // the machine: the per-query work is single-pipeline, so the speedup
    // over serial comes from overlapping whole queries.
    const int kSessions = 4;
    const int kPerSession = 25;
    server::ServerOptions options;
    options.max_concurrent = 4;
    server::MpfServer server(db, options);
    auto sbefore = db.plan_cache().stats();
    start = bench::Clock::now();
    std::vector<std::thread> threads;
    for (int s = 0; s < kSessions; ++s) {
      threads.emplace_back([&, s] {
        auto session = server.CreateSession("bench-" + std::to_string(s));
        for (int i = 0; i < kPerSession; ++i) {
          const auto& spec =
              workload[static_cast<size_t>(s + i) % workload.size()];
          auto result = session->Query("v", spec);
          Check(result.status());
          benchmark::DoNotOptimize(result->table);
        }
      });
    }
    for (auto& t : threads) t.join();
    double concurrent_secs = bench::MsSince(start) / 1e3;
    auto safter = db.plan_cache().stats();
    double slookups = double((safter.hits - sbefore.hits) +
                             (safter.misses - sbefore.misses));
    double shit_rate =
        slookups == 0 ? 0.0 : double(safter.hits - sbefore.hits) / slookups;
    double qps = double(kSessions * kPerSession) / concurrent_secs;
    std::printf(
        "serving concurrent (%d sessions x %d queries): %8.1f ms   %8.1f "
        "q/s   hit rate %.3f\n",
        kSessions, kPerSession, concurrent_secs * 1e3, qps, shit_rate);
    json.Add("serving/concurrent_throughput",
             {{"sessions", double(kSessions)},
              {"queries", double(kSessions * kPerSession)},
              {"seconds", concurrent_secs},
              {"queries_per_sec", qps},
              {"plan_cache_hit_rate", shit_rate},
              {"admitted", double(server.stats().admitted)},
              {"max_queue_depth", double(server.stats().max_queue_depth)}});
  }

  // FAQ planner on the triangle query: the worst-case-optimal multiway join
  // against the best pairwise-hash plan any of the binary optimizers finds.
  // Hub-skewed relations are the canonical pairwise worst case: every
  // binary join order crosses two hub sides and materializes a quadratic
  // intermediate, while the leapfrog join's intersections stay near the
  // (small) true triangle count. Results are cross-checked between the two
  // plan shapes before timing counts.
  {
    Catalog catalog;
    workload::CycleParams params;
    params.num_vars = 3;
    params.domain_size = 5000;
    params.density = 0.002;
    params.hub_fraction = 0.35;
    auto schema = workload::GenerateCycle(params, catalog);
    Check(schema.status());
    const MpfQuerySpec query{{"x0"}, {}};
    SimpleCostModel cost_model;

    opt::FaqOptimizer faq;
    auto faq_plan =
        faq.Optimize(schema->view, query, catalog, cost_model);
    Check(faq_plan.status());
    if (PlanSignature(**faq_plan).find("MultiwayJoin") == std::string::npos) {
      std::fprintf(stderr,
                   "faq_planner: expected a multiway join on the triangle\n");
      std::abort();
    }

    // Best pairwise-hash competitor: every binary optimizer's plan, forced
    // onto the hash operators, fastest wall time wins.
    exec::Executor hash_exec(
        catalog, schema->view.semiring,
        exec::ExecOptions{.join = exec::JoinAlgorithm::kHash,
                          .agg = exec::AggAlgorithm::kHash,
                          .vectorized = true,
                          .packed_keys = true});
    auto time_plan = [&](const exec::Executor& executor, const PlanNode& plan) {
      double best = 0;
      TablePtr out;
      for (int rep = 0; rep < 3; ++rep) {
        auto start = bench::Clock::now();
        auto result = executor.Execute(plan, "out");
        double secs = bench::MsSince(start) / 1e3;
        Check(result.status());
        if (rep == 0 || secs < best) best = secs;
        out = *result;
      }
      return std::make_pair(best, out);
    };

    double pairwise_secs = 0;
    TablePtr pairwise_out;
    std::string pairwise_winner;
    for (const std::string spec : {"cs+", "ve(width)", "ve(deg)"}) {
      auto optimizer = MakeOptimizer(spec);
      Check(optimizer.status());
      auto plan =
          (*optimizer)->Optimize(schema->view, query, catalog, cost_model);
      Check(plan.status());
      auto [secs, out] = time_plan(hash_exec, **plan);
      if (pairwise_out == nullptr || secs < pairwise_secs) {
        pairwise_secs = secs;
        pairwise_out = out;
        pairwise_winner = spec;
      }
    }

    exec::Executor faq_exec(catalog, schema->view.semiring,
                            exec::ExecOptions{});
    auto [faq_secs, faq_out] = time_plan(faq_exec, **faq_plan);
    // Different plan shapes fold FP in different orders; equality up to a
    // tiny tolerance is the cross-shape contract (tol-0.0 is per-shape).
    if (!fr::TablesEqual(*faq_out, *pairwise_out, /*tolerance=*/1e-6)) {
      std::fprintf(stderr,
                   "faq_planner: multiway result differs from pairwise\n");
      std::abort();
    }
    auto e0 = catalog.GetTable("e0");
    Check(e0.status());
    std::printf(
        "faq_planner triangle (3 x %lld rows): leapfrog %8.1f ms   best "
        "pairwise-hash (%s) %8.1f ms   %5.2fx\n",
        static_cast<long long>((*e0)->NumRows()), faq_secs * 1e3,
        pairwise_winner.c_str(), pairwise_secs * 1e3,
        pairwise_secs / faq_secs);
    json.Add("faq_planner/triangle",
             {{"faq_seconds", faq_secs},
              {"pairwise_seconds", pairwise_secs},
              {"speedup_vs_pairwise", pairwise_secs / faq_secs},
              {"output_rows", double(faq_out->NumRows())}});
  }

  // Approximate inference: the dissociation bound pair on a cyclic view
  // (bounds-only: two acyclic exact queries replace one cyclic one), then
  // the Gibbs anytime refinement. queries_per_sec / samples_per_sec are the
  // regression-gated throughputs; the d32 gap ratio is informational only —
  // the relative sum-product gap saturates at 1.0 when a group's lower
  // bound collapses toward zero, so quality is gated on the dense d4
  // workload below instead.
  {
    Database db;
    workload::CycleParams params;
    params.num_vars = 6;
    params.domain_size = 32;
    params.density = 0.5;
    params.seed = 4242;
    auto schema = workload::GenerateCycle(params, db.catalog());
    Check(schema.status());
    Check(db.CreateMpfView(schema->view));
    const MpfQuerySpec query{{schema->vars[0]}, {}};

    ApproxOptions bounds_only;
    bounds_only.eps = 0;
    bounds_only.sampling = false;
    double bounds_secs = 0;
    double gap = 0;
    const int reps = 5;
    for (int rep = 0; rep < reps; ++rep) {
      auto start = bench::Clock::now();
      auto result = db.QueryApprox(schema->view.name, query, bounds_only);
      double secs = bench::MsSince(start) / 1e3;
      Check(result.status());
      gap = result->max_gap;
      if (rep == 0 || secs < bounds_secs) bounds_secs = secs;
    }
    std::printf(
        "approx bounds cycle6/d32: dissociation pair %8.1f ms   "
        "max gap ratio %.4f\n",
        bounds_secs * 1e3, gap);
    json.Add("approx/bounds_cycle",
             {{"queries_per_sec", 1.0 / bounds_secs},
              {"bound_gap_ratio", gap},
              {"seconds", bounds_secs}});

    ApproxOptions sampled;
    sampled.eps = 0;  // unreachable: run the full round budget
    sampled.seed = 7;
    sampled.max_rounds = 8;
    sampled.sweeps_per_round = 256;
    sampled.burn_in_sweeps = 64;
    double gibbs_secs = 0;
    uint64_t samples = 0;
    for (int rep = 0; rep < reps; ++rep) {
      auto start = bench::Clock::now();
      auto result = db.QueryApprox(schema->view.name, query, sampled);
      double secs = bench::MsSince(start) / 1e3;
      Check(result.status());
      samples = result->samples;
      if (rep == 0 || secs < gibbs_secs) gibbs_secs = secs;
    }
    std::printf(
        "approx gibbs cycle6/d32: %llu samples in %8.1f ms   %10.0f "
        "samples/sec\n",
        static_cast<unsigned long long>(samples), gibbs_secs * 1e3,
        double(samples) / gibbs_secs);
    json.Add("approx/gibbs_cycle",
             {{"samples", double(samples)},
              {"samples_per_sec", double(samples) / gibbs_secs},
              {"seconds", gibbs_secs}});
  }

  // Bound-tightness quality gate: a dense small-domain cycle where the
  // dissociation gap is far from the saturation point, so a worse split-var
  // choice or a regressed sampler moves the ratio measurably. Both ratios
  // are deterministic for the fixed workload and seed; check_bench.py holds
  // absolute ceilings on them.
  {
    Database db;
    workload::CycleParams params;
    params.num_vars = 6;
    params.domain_size = 4;
    params.density = 1.0;
    params.seed = 4242;
    auto schema = workload::GenerateCycle(params, db.catalog());
    Check(schema.status());
    Check(db.CreateMpfView(schema->view));
    const MpfQuerySpec query{{schema->vars[0]}, {}};

    ApproxOptions bounds_only;
    bounds_only.eps = 0;
    bounds_only.sampling = false;
    auto raw = db.QueryApprox(schema->view.name, query, bounds_only);
    Check(raw.status());

    ApproxOptions sampled;
    sampled.eps = 0;  // unreachable: run the full round budget
    sampled.seed = 7;
    sampled.max_rounds = 8;
    sampled.sweeps_per_round = 256;
    sampled.burn_in_sweeps = 64;
    auto tightened = db.QueryApprox(schema->view.name, query, sampled);
    Check(tightened.status());

    std::printf(
        "approx quality cycle6/d4 dense: raw gap ratio %.4f   gibbs-tightened "
        "%.4f (%llu samples)\n",
        raw->max_gap, tightened->max_gap,
        static_cast<unsigned long long>(tightened->samples));
    json.Add("approx/bounds_quality",
             {{"bound_gap_ratio", raw->max_gap},
              {"tightened_gap_ratio", tightened->max_gap},
              {"samples", double(tightened->samples)}});
  }

  if (!json_path.empty() && !json.WriteTo(json_path)) return 1;
  return 0;
}

// --- google-benchmark microbenches -------------------------------------------

template <typename JoinOp>
void JoinBench(benchmark::State& state) {
  auto [a, b] = MakeJoinInputs(state.range(0));
  Semiring semiring = Semiring::SumProduct();
  for (auto _ : state) {
    JoinOp join(std::make_unique<SeqScan>(a), std::make_unique<SeqScan>(b),
                semiring);
    auto result = Run(join, "out");
    if (!result.ok()) state.SkipWithError("join failed");
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}

void BM_HashProductJoin(benchmark::State& state) {
  JoinBench<HashProductJoin>(state);
}
void BM_SortMergeProductJoin(benchmark::State& state) {
  JoinBench<SortMergeProductJoin>(state);
}
void BM_NestedLoopProductJoin(benchmark::State& state) {
  JoinBench<NestedLoopProductJoin>(state);
}

template <typename AggOp>
void AggBench(benchmark::State& state) {
  TablePtr t = MakeAggInput(state.range(0));
  Semiring semiring = Semiring::SumProduct();
  for (auto _ : state) {
    AggOp agg(std::make_unique<SeqScan>(t), std::vector<std::string>{"g"},
              semiring);
    auto result = Run(agg, "out");
    if (!result.ok()) state.SkipWithError("agg failed");
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_HashMarginalize(benchmark::State& state) {
  AggBench<HashMarginalize>(state);
}
void BM_SortMarginalize(benchmark::State& state) {
  AggBench<SortMarginalize>(state);
}

BENCHMARK(BM_HashProductJoin)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);
BENCHMARK(BM_SortMergeProductJoin)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);
BENCHMARK(BM_NestedLoopProductJoin)->Arg(1 << 10)->Arg(1 << 12);
BENCHMARK(BM_HashMarginalize)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_SortMarginalize)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace

int main(int argc, char** argv) {
  bool micro = false;
  std::vector<size_t> thread_counts = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark", 0) == 0) micro = true;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      size_t n = static_cast<size_t>(std::strtoull(argv[i + 1], nullptr, 10));
      if (n == 0) {
        std::fprintf(stderr, "--threads wants a positive integer\n");
        return 1;
      }
      thread_counts = {n};
    }
  }
  if (micro) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
  }
  return RunModeAblation(bench::JsonPathFromArgs(argc, argv), thread_counts);
}
