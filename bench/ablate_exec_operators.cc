// Ablation — physical operator selection (google-benchmark microbenches).
//
// The paper's closing point in Section 5: unlike the GDL's memory-resident
// setting, a relational engine has several algorithms for the product join
// and the marginalization, and plan choice must be cost-based. These
// microbenches measure hash vs sort-merge vs nested-loop product joins and
// hash vs sort marginalization across input sizes, justifying the cost
// model's operator charges.
//
//   ./build/bench/ablate_exec_operators [--benchmark_filter=...]

#include <memory>

#include <benchmark/benchmark.h>

#include "exec/operator.h"
#include "util/rng.h"

using namespace mpfdb;
using namespace mpfdb::exec;

namespace {

// Two joinable functional relations a(x, y) and b(y, z) with `rows` rows
// each over domains sized so that matches are plentiful but not quadratic.
std::pair<TablePtr, TablePtr> MakeJoinInputs(int64_t rows) {
  Rng rng(42);
  int64_t y_domain = std::max<int64_t>(4, rows / 16);
  auto a = std::make_shared<Table>("a", Schema({"x", "y"}, "f"));
  auto b = std::make_shared<Table>("b", Schema({"y", "z"}, "f"));
  for (int64_t i = 0; i < rows; ++i) {
    a->AppendRow({static_cast<VarValue>(i),
                  static_cast<VarValue>(rng.UniformInt(0, y_domain - 1))},
                 rng.UniformDouble(0.5, 2.0));
    b->AppendRow({static_cast<VarValue>(rng.UniformInt(0, y_domain - 1)),
                  static_cast<VarValue>(i)},
                 rng.UniformDouble(0.5, 2.0));
  }
  return {a, b};
}

TablePtr MakeAggInput(int64_t rows) {
  Rng rng(7);
  int64_t group_domain = std::max<int64_t>(4, rows / 64);
  auto t = std::make_shared<Table>("t", Schema({"g", "u"}, "f"));
  for (int64_t i = 0; i < rows; ++i) {
    t->AppendRow({static_cast<VarValue>(rng.UniformInt(0, group_domain - 1)),
                  static_cast<VarValue>(i)},
                 rng.UniformDouble(0.0, 1.0));
  }
  return t;
}

template <typename JoinOp>
void JoinBench(benchmark::State& state) {
  auto [a, b] = MakeJoinInputs(state.range(0));
  Semiring semiring = Semiring::SumProduct();
  for (auto _ : state) {
    JoinOp join(std::make_unique<SeqScan>(a), std::make_unique<SeqScan>(b),
                semiring);
    auto result = Run(join, "out");
    if (!result.ok()) state.SkipWithError("join failed");
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}

void BM_HashProductJoin(benchmark::State& state) {
  JoinBench<HashProductJoin>(state);
}
void BM_SortMergeProductJoin(benchmark::State& state) {
  JoinBench<SortMergeProductJoin>(state);
}
void BM_NestedLoopProductJoin(benchmark::State& state) {
  JoinBench<NestedLoopProductJoin>(state);
}

template <typename AggOp>
void AggBench(benchmark::State& state) {
  TablePtr t = MakeAggInput(state.range(0));
  Semiring semiring = Semiring::SumProduct();
  for (auto _ : state) {
    AggOp agg(std::make_unique<SeqScan>(t), std::vector<std::string>{"g"},
              semiring);
    auto result = Run(agg, "out");
    if (!result.ok()) state.SkipWithError("agg failed");
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_HashMarginalize(benchmark::State& state) {
  AggBench<HashMarginalize>(state);
}
void BM_SortMarginalize(benchmark::State& state) {
  AggBench<SortMarginalize>(state);
}

BENCHMARK(BM_HashProductJoin)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);
BENCHMARK(BM_SortMergeProductJoin)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);
BENCHMARK(BM_NestedLoopProductJoin)->Arg(1 << 10)->Arg(1 << 12);
BENCHMARK(BM_HashMarginalize)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_SortMarginalize)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
