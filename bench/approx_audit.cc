// Determinism and soundness audit of the approximate-inference subsystem.
//
// For a seed (--seed N, default 1) this runs QueryApprox over committed
// cyclic workloads across the semirings, verifies lower <= exact <= upper for
// every group, and prints every estimate and bound as a hex float (%a, no
// rounding). The nightly determinism-audit CI leg runs the binary twice per
// seed and diffs the outputs byte-for-byte — any nondeterminism in the
// sampler, the dissociation pass, or the executor shows up as a diff — and a
// bracketing violation exits non-zero.
//
//   ./build/bench/approx_audit [--seed N]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/database.h"
#include "workload/generators.h"

using namespace mpfdb;

namespace {

int failures = 0;

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, st.message().c_str());
    std::exit(2);
  }
}

std::map<std::vector<VarValue>, double> RowsOf(const Table& table) {
  std::map<std::vector<VarValue>, double> out;
  for (size_t i = 0; i < table.NumRows(); ++i) {
    RowView row = table.Row(i);
    out[std::vector<VarValue>(row.vars, row.vars + row.arity)] = row.measure;
  }
  return out;
}

std::string KeyString(const std::vector<VarValue>& key) {
  std::string out;
  for (size_t i = 0; i < key.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(key[i]);
  }
  return out;
}

void AuditView(const char* label, const Semiring& semiring, uint64_t seed) {
  Database db;
  workload::CycleParams params;
  params.num_vars = 5;
  params.domain_size = 8;
  params.density = 0.6;
  params.seed = seed;
  auto schema = workload::GenerateCycle(params, db.catalog());
  Check(schema.status(), "GenerateCycle");
  schema->view.semiring = semiring;
  Check(db.CreateMpfView(schema->view), "CreateMpfView");
  const MpfQuerySpec query{{schema->vars[0]}, {}};

  auto exact = db.Query(schema->view.name, query);
  Check(exact.status(), "exact Query");

  ApproxOptions approx;
  approx.eps = 1e-6;
  approx.seed = seed;
  approx.max_rounds = 8;
  auto result = db.QueryApprox(schema->view.name, query, approx);
  Check(result.status(), "QueryApprox");

  std::printf("== %s seed=%llu semiring=%s approximate=%d samples=%llu "
              "gap=%a\n",
              label, static_cast<unsigned long long>(seed),
              semiring.name().c_str(), result->approximate ? 1 : 0,
              static_cast<unsigned long long>(result->samples),
              result->max_gap);

  auto lower = RowsOf(*result->lower);
  auto upper = RowsOf(*result->upper);
  auto estimate = RowsOf(*result->estimate);
  for (size_t i = 0; i < exact->table->NumRows(); ++i) {
    RowView row = exact->table->Row(i);
    std::vector<VarValue> key(row.vars, row.vars + row.arity);
    auto lo = lower.find(key);
    auto hi = upper.find(key);
    if (lo == lower.end() || hi == upper.end()) {
      std::fprintf(stderr, "VIOLATION %s seed=%llu group=%s missing bound\n",
                   label, static_cast<unsigned long long>(seed),
                   KeyString(key).c_str());
      ++failures;
      continue;
    }
    // Exact float slack: bound queries fold in a different order.
    double slack = 1e-9 * std::max({1.0, std::fabs(lo->second),
                                    std::fabs(row.measure),
                                    std::fabs(hi->second)});
    if (!(lo->second <= row.measure + slack) ||
        !(row.measure <= hi->second + slack)) {
      std::fprintf(stderr,
                   "VIOLATION %s seed=%llu group=%s lower=%a exact=%a "
                   "upper=%a\n",
                   label, static_cast<unsigned long long>(seed),
                   KeyString(key).c_str(), lo->second, row.measure,
                   hi->second);
      ++failures;
    }
    auto est = estimate.find(key);
    std::printf("%s [%s] lower=%a upper=%a estimate=%a\n", label,
                KeyString(key).c_str(), lo->second, hi->second,
                est == estimate.end() ? 0.0 : est->second);
  }
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  if (seed == 0) {
    std::fprintf(stderr, "--seed wants a positive integer\n");
    return 2;
  }

  AuditView("sum_product", Semiring::SumProduct(), seed);
  AuditView("max_product", Semiring::MaxProduct(), seed);
  AuditView("max_sum", Semiring::MaxSum(), seed);
  AuditView("min_sum", Semiring::MinSum(), seed);
  AuditView("bool_or_and", Semiring::BoolOrAnd(), seed);

  if (failures > 0) {
    std::fprintf(stderr, "approx_audit: %d bracketing violation(s)\n",
                 failures);
    return 1;
  }
  std::printf("approx_audit: all bounds bracket exact (seed %llu)\n",
              static_cast<unsigned long long>(seed));
  return 0;
}
