// Ablation — Bayesian-network inference via MPF queries (Section 4).
//
// Exact marginal inference P(x_last | x_0 = 0) on chain, tree and random
// Bayesian networks of growing size, across optimizers. Shows the point of
// the whole exercise: the no-GDL CS baseline scales exponentially with the
// network (it materializes the joint), while VE/CS+ scale with the induced
// width.
//
//   ./build/bench/ablate_bn_inference [max_vars]   (default 14)

#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "bn/bayes_net.h"

using namespace mpfdb;
using bench::RunQuery;

namespace {

void RunFamily(const std::string& family, int num_vars, int64_t domain,
               uint64_t seed) {
  Rng rng(seed);
  StatusOr<bn::BayesNet> net = Status::Internal("unset");
  if (family == "chain") {
    net = bn::ChainBayesNet(num_vars, domain, rng);
  } else if (family == "tree") {
    net = bn::TreeBayesNet(num_vars, domain, rng);
  } else {
    net = bn::RandomBayesNet(num_vars, 2, domain, rng);
  }
  if (!net.ok()) return;
  Database db;
  auto view = net->ToMpfView(db.catalog());
  if (!view.ok() || !db.CreateMpfView(*view).ok()) return;

  std::string last = "x" + std::to_string(num_vars - 1);
  MpfQuerySpec query{{last}, {{"x0", 0}}};
  std::printf("%-8s %6d %8lld |", family.c_str(), num_vars,
              static_cast<long long>(domain));
  for (const std::string spec : {"cs", "cs+nonlinear", "ve(deg)",
                                 "ve(deg) ext."}) {
    auto stats = RunQuery(db, view->name, query, spec);
    std::printf(" %10.2f", stats.execution_ms);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  int max_vars = argc > 1 ? std::atoi(argv[1]) : 14;
  std::printf("# BN exact inference P(x_last | x0=0), execution ms per "
              "optimizer\n");
  std::printf("%-8s %6s %8s | %10s %10s %10s %10s\n", "family", "vars",
              "domain", "cs", "cs+nl", "ve(deg)", "ve_ext");
  for (int n = 6; n <= max_vars; n += 4) {
    RunFamily("chain", n, 4, 11);
    RunFamily("tree", n, 4, 22);
    RunFamily("random", n, 3, 33);
  }
  std::printf("\n# Expected shape: cs grows exponentially with vars (joint "
              "materialization); ve/cs+ stay near-flat on chains/trees.\n");
  return 0;
}
