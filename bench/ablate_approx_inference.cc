// Ablation — exact vs approximate inference (the Section 4.1 discussion).
//
// The paper argues exact inference (what this repo scales) is required when
// results feed non-monotone computations, while approximate procedures
// suffice for relative likelihood. This bench quantifies the tradeoff:
// exact marginals via the optimized MPF pipeline vs loopy belief propagation
// on the same (cyclic) schemas — time and max absolute marginal error.
//
//   ./build/bench/ablate_approx_inference

#include <cmath>

#include "bench_util.h"
#include "fr/algebra.h"
#include "workload/loopy_bp.h"

using namespace mpfdb;
using bench::Clock;
using bench::MsSince;

namespace {

// A cyclic grid-ish schema: variables v0..v{n-1} in a ring with pairwise
// factors, plus chords every 3 hops.
std::vector<TablePtr> MakeRing(Catalog& catalog, int n, int64_t domain,
                               uint64_t seed) {
  Rng rng(seed);
  std::vector<TablePtr> tables;
  for (int i = 0; i < n; ++i) {
    (void)catalog.RegisterVariable("v" + std::to_string(i), domain);
  }
  auto add_factor = [&](int a, int b) {
    auto t = std::make_shared<Table>(
        "f" + std::to_string(tables.size()),
        Schema({"v" + std::to_string(a), "v" + std::to_string(b)}, "f"));
    for (VarValue x = 0; x < domain; ++x) {
      for (VarValue y = 0; y < domain; ++y) {
        t->AppendRow({x, y}, rng.UniformDouble(0.5, 1.5));
      }
    }
    (void)catalog.RegisterTable(t);
    tables.push_back(t);
  };
  for (int i = 0; i < n; ++i) add_factor(i, (i + 1) % n);
  for (int i = 0; i + 3 < n; i += 3) add_factor(i, i + 3);
  return tables;
}

}  // namespace

int main() {
  std::printf("# Exact (VE over MPF) vs approximate (loopy BP) marginals on "
              "cyclic schemas\n");
  std::printf("%6s %8s | %12s %12s | %14s %10s %10s\n", "vars", "domain",
              "exact_ms", "lbp_ms", "max_abs_err", "converged", "iters");
  for (int n : {6, 9, 12}) {
    Catalog catalog;
    auto tables = MakeRing(catalog, n, 3, 99);
    MpfViewDef view{"ring", {}, Semiring::SumProduct()};
    Database db;
    db.catalog() = catalog;
    for (const auto& t : tables) view.relations.push_back(t->name());
    if (auto s = db.CreateMpfView(view); !s.ok()) {
      std::fprintf(stderr, "view: %s\n", s.ToString().c_str());
      return 1;
    }

    // Exact marginals for every variable via the optimized pipeline.
    auto t0 = Clock::now();
    std::vector<TablePtr> exact(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      auto result = db.Query("ring",
                             MpfQuerySpec{{"v" + std::to_string(i)}, {}},
                             "ve(min_fill)");
      if (!result.ok()) {
        std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
        return 1;
      }
      exact[static_cast<size_t>(i)] = result->table;
      (void)fr::NormalizeMeasure(*exact[static_cast<size_t>(i)],
                                 Semiring::SumProduct());
    }
    double exact_ms = MsSince(t0);

    auto t1 = Clock::now();
    workload::LoopyBpOptions options;
    options.damping = 0.2;
    auto lbp = workload::LoopyBeliefPropagation(tables, catalog, options);
    double lbp_ms = MsSince(t1);
    if (!lbp.ok()) return 1;

    double max_err = 0;
    for (int i = 0; i < n; ++i) {
      const Table& e = *exact[static_cast<size_t>(i)];
      const Table& a = *lbp->marginals.at("v" + std::to_string(i));
      for (size_t r = 0; r < e.NumRows(); ++r) {
        max_err = std::max(max_err, std::fabs(e.measure(r) - a.measure(r)));
      }
    }
    std::printf("%6d %8d | %12.2f %12.2f | %14.5f %10s %10d\n", n, 3,
                exact_ms, lbp_ms, max_err, lbp->converged ? "yes" : "no",
                lbp->iterations);
  }
  std::printf("\n# Expected shape: loopy BP is fast and close but not exact "
              "on cyclic schemas; exact costs grow with treewidth.\n");
  return 0;
}
