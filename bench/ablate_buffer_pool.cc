// Ablation — paged storage and the buffer pool.
//
// The paper's operands are disk-resident; PageCostModel charges operators in
// pages. This bench validates those assumptions on the real paged layer:
// sequential scans touch every data page once regardless of pool size, while
// random row access hit rates track pool size / table pages — the locality
// behavior a cost model for disk-resident functional relations presumes.
//
//   ./build/bench/ablate_buffer_pool [rows]   (default 200000)

#include <cstdlib>
#include <filesystem>

#include "bench_util.h"
#include "storage/disk_table.h"
#include "util/rng.h"

using namespace mpfdb;
using bench::Clock;
using bench::MsSince;

int main(int argc, char** argv) {
  int64_t rows = argc > 1 ? std::atoll(argv[1]) : 200000;
  std::string path =
      (std::filesystem::temp_directory_path() / "mpfdb_bench_table.mpft")
          .string();

  // Build a 3-variable table of `rows` rows on disk.
  Rng rng(7);
  Table table("bench", Schema({"a", "b", "c"}, "f"));
  table.Reserve(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    table.AppendRow({static_cast<VarValue>(i % 1000),
                     static_cast<VarValue>(i / 1000),
                     static_cast<VarValue>(i % 7)},
                    rng.UniformDouble(0, 1));
  }
  if (!DiskTable::Write(table, path).ok()) return 1;

  std::printf("# Buffer pool behavior over a %lld-row disk table\n",
              static_cast<long long>(rows));
  {
    auto disk = DiskTable::Open(path, 8);
    if (!disk.ok()) return 1;
    std::printf("table: %u pages of %zu bytes\n\n",
                (*disk)->file().page_count(), kPageSize);
  }

  std::printf("%12s %12s | %10s %10s %12s %10s\n", "pool_pages", "workload",
              "hits", "misses", "hit_rate", "ms");
  for (size_t pool : {4, 16, 64, 256, 1024}) {
    // Sequential scan.
    {
      auto disk = DiskTable::Open(path, pool);
      if (!disk.ok()) return 1;
      auto t0 = Clock::now();
      auto loaded = (*disk)->ReadAll("scan");
      double ms = MsSince(t0);
      if (!loaded.ok()) return 1;
      const auto& stats = (*disk)->buffer_pool().stats();
      std::printf("%12zu %12s | %10llu %10llu %11.1f%% %10.2f\n", pool, "scan",
                  static_cast<unsigned long long>(stats.hits),
                  static_cast<unsigned long long>(stats.misses),
                  100.0 * static_cast<double>(stats.hits) /
                      static_cast<double>(stats.hits + stats.misses),
                  ms);
    }
    // Random point reads (uniform).
    {
      auto disk = DiskTable::Open(path, pool);
      if (!disk.ok()) return 1;
      Rng access(99);
      std::vector<VarValue> vars;
      double measure;
      auto t0 = Clock::now();
      for (int i = 0; i < 20000; ++i) {
        uint64_t row = static_cast<uint64_t>(access.UniformInt(0, rows - 1));
        if (!(*disk)->ReadRow(row, &vars, &measure).ok()) return 1;
      }
      double ms = MsSince(t0);
      const auto& stats = (*disk)->buffer_pool().stats();
      std::printf("%12zu %12s | %10llu %10llu %11.1f%% %10.2f\n", pool,
                  "random",
                  static_cast<unsigned long long>(stats.hits),
                  static_cast<unsigned long long>(stats.misses),
                  100.0 * static_cast<double>(stats.hits) /
                      static_cast<double>(stats.hits + stats.misses),
                  ms);
    }
  }
  std::filesystem::remove(path);
  std::printf("\n# Expected shape: scans miss once per page at any pool size; "
              "random hit rate ~ min(1, pool/pages).\n");
  return 0;
}
