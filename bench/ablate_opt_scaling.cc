// Ablation — optimization-time scaling (Theorem 2).
//
// The paper's complexity claims: Selinger-style CS+ costs O(N 2^N) in the
// number of tables, while VE with a linear-time heuristic costs O(M S 2^S)
// in the number of variables M and average connectivity S — so on the star
// schema (the classic DP worst case, Section 5.3) VE's planning time stays
// near-flat as N grows while CS+ explodes. This bench measures planning time
// only (plans are not executed).
//
//   ./build/bench/ablate_opt_scaling [max_tables]   (default 12)

#include <cstdlib>

#include "bench_util.h"

using namespace mpfdb;
using bench::RunQuery;

int main(int argc, char** argv) {
  int max_tables = argc > 1 ? std::atoi(argv[1]) : 12;
  std::printf("# Optimization-time scaling on the star schema (Theorem 2)\n");
  std::printf("%6s | %16s %16s %16s %16s\n", "N", "cs+_ms", "cs+nl_ms",
              "ve(deg)_ms", "ve(deg)ext_ms");
  for (int n = 4; n <= max_tables; n += 2) {
    Database db;
    workload::SyntheticParams params;
    params.kind = workload::SyntheticKind::kStar;
    params.num_tables = n;
    params.domain_size = 4;  // keep table materialization cheap
    auto schema = workload::GenerateSynthetic(params, db.catalog());
    if (!schema.ok() || !db.CreateMpfView(schema->view).ok()) return 1;

    MpfQuerySpec query{{schema->linear_vars[0]}, {}};
    auto linear = RunQuery(db, schema->view.name, query, "cs+", false);
    auto nonlinear =
        RunQuery(db, schema->view.name, query, "cs+nonlinear", false);
    auto ve = RunQuery(db, schema->view.name, query, "ve(deg)", false);
    auto ve_ext = RunQuery(db, schema->view.name, query, "ve(deg) ext.", false);
    std::printf("%6d | %16.3f %16.3f %16.3f %16.3f\n", n, linear.planning_ms,
                nonlinear.planning_ms, ve.planning_ms, ve_ext.planning_ms);
  }
  std::printf("\n# Expected shape: cs+nl grows ~3^N; ve near-linear in N.\n");
  return 0;
}
