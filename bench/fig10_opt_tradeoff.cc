// Figure 10 — Optimization Time Tradeoff Experiment (and the Section 7.4
// CS-baseline comparison).
//
// Paper setup: the Table 2 schemas with N = 7 tables; every variable in the
// linear section is queried; for each algorithm, the average estimated plan
// cost is plotted against the average time spent deriving the plan. Points
// closer to the origin are best. Paper findings: CS is far worse than
// everything else; nonlinear plans gain about an order of magnitude over
// linear; VE plans faster than nonlinear CS+; degree suffers when maximum
// variable connectivity is high (star) but recovers in the extended space.
//
//   ./build/bench/fig10_opt_tradeoff

#include <string>
#include <vector>

#include "bench_util.h"

using namespace mpfdb;
using bench::RunQuery;

int main() {
  std::printf("# Figure 10: avg plan cost vs avg optimization time, N=7, "
              "query every linear variable\n\n");

  const std::vector<std::pair<std::string, std::string>> algorithms = {
      {"CS", "cs"},
      {"CS+ linear", "cs+"},
      {"CS+ nonlinear", "cs+nonlinear"},
      {"VE(deg)", "ve(deg)"},
      {"VE(deg) ext.", "ve(deg) ext."},
      {"VE(width)", "ve(width)"},
      {"VE(width) ext.", "ve(width) ext."},
      {"VE(elim_cost)", "ve(elim_cost)"},
      {"VE(elim_cost) ext.", "ve(elim_cost) ext."},
  };
  const std::vector<workload::SyntheticKind> kinds = {
      workload::SyntheticKind::kStar, workload::SyntheticKind::kMultistar,
      workload::SyntheticKind::kLinear};

  for (auto kind : kinds) {
    Database db;
    workload::SyntheticParams params;
    params.kind = kind;
    params.num_tables = 7;
    params.domain_size = 10;
    auto schema = workload::GenerateSynthetic(params, db.catalog());
    if (!schema.ok() || !db.CreateMpfView(schema->view).ok()) return 1;

    std::printf("schema: %s (%zu queries)\n",
                workload::SyntheticKindName(kind).c_str(),
                schema->linear_vars.size());
    std::printf("%-20s %16s %18s\n", "algorithm", "avg_plan_cost",
                "avg_plan_time_ms");
    for (const auto& [label, spec] : algorithms) {
      double total_cost = 0, total_ms = 0;
      for (const auto& var : schema->linear_vars) {
        auto stats = RunQuery(db, schema->view.name, MpfQuerySpec{{var}, {}},
                              spec, /*execute=*/false);
        total_cost += stats.plan_cost;
        total_ms += stats.planning_ms;
      }
      double n = static_cast<double>(schema->linear_vars.size());
      std::printf("%-20s %16.2f %18.4f\n", label.c_str(), total_cost / n,
                  total_ms / n);
    }
    std::printf("\n");
  }
  std::printf("# Expected shape (paper): CS worst by far; nonlinear ~1 order "
              "cheaper than linear; VE variants plan faster than nonlinear "
              "CS+ at comparable plan cost when extended.\n");
  return 0;
}
