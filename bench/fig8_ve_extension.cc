// Figure 8 — Extended Variable Elimination Space Experiment.
//
// Paper setup: on the supply-chain schema, run
//   Q1: group by cid;   Q2: group by sid;   Q3: group by wid;
// as total database scale increases, comparing nonlinear CS+, VE with the
// degree heuristic, and VE(degree) with the Section 5.4 space extension.
// Paper findings: for Q1 the degree heuristic already matches CS+; for Q2 it
// is suboptimal but the extension recovers the CS+ plan; for Q3 even the
// extension cannot (the needed order isn't degree's), though it is never
// worse than plain VE.
//
//   ./build/bench/fig8_ve_extension [max_scale]   (default 0.08)

#include <cstdlib>
#include <vector>

#include "bench_util.h"

using namespace mpfdb;
using bench::RunQuery;

int main(int argc, char** argv) {
  double max_scale = argc > 1 ? std::atof(argv[1]) : 0.08;
  std::vector<double> scales = {max_scale / 8, max_scale / 4, max_scale / 2,
                                max_scale};
  std::printf("# Figure 8: plan quality vs DB scale — nonlinear CS+ vs "
              "VE(deg) vs VE(deg) ext.\n");

  for (const auto& [label, var] : {std::pair<const char*, const char*>{
           "Q1", "cid"}, {"Q2", "sid"}, {"Q3", "wid"}}) {
    std::printf("\n%s: select %s, SUM(inv) from invest group by %s\n", label,
                var, var);
    std::printf("%8s | %12s %12s %12s | %14s %14s %14s\n", "scale", "cs+nl_ms",
                "ve_ms", "ve_ext_ms", "cs+nl_cost", "ve_cost", "ve_ext_cost");
    for (double scale : scales) {
      Database db;
      workload::SupplyChainParams params;
      params.scale = scale;
      auto schema = workload::GenerateSupplyChain(params, db.catalog());
      if (!schema.ok() || !db.CreateMpfView(schema->view).ok()) return 1;

      MpfQuerySpec query{{var}, {}};
      auto cs = RunQuery(db, "invest", query, "cs+nonlinear");
      auto ve = RunQuery(db, "invest", query, "ve(deg)");
      auto ve_ext = RunQuery(db, "invest", query, "ve(deg) ext.");
      std::printf("%8.3f | %12.2f %12.2f %12.2f | %14.0f %14.0f %14.0f\n",
                  scale, cs.execution_ms, ve.execution_ms, ve_ext.execution_ms,
                  cs.plan_cost, ve.plan_cost, ve_ext.plan_cost);
    }
  }
  std::printf("\n# Expected shape (paper): ve_ext_cost <= ve_cost always; "
              "ve_ext matches cs+nl for Q1/Q2.\n");
  return 0;
}
